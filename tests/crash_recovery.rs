//! Kill-at-epoch-K crash recovery: the headline test for the
//! epoch-snapshot + event-log persistence layer.
//!
//! The contract under test (DESIGN.md §16): a run killed dead at *any*
//! epoch and resumed from its state directory finishes **byte-identical**
//! to a run that never died — same decision-trace bytes, same final
//! snapshot document, same metrics (modulo the wall-clock histograms and
//! the persistence bookkeeping series, which describe the process, not
//! the run). The sweep kills at every epoch K of the run, for a clean
//! scenario, a churned one (admissions, removals, live policy switches),
//! and a fault-injected one.

use copart_core::policies::PolicyKind;
use copart_faults::{FaultPlan, FaultTrigger};
use copart_persist::{latest_good, SnapshotDoc};
use copart_serve::loadgen;
use copart_serve::{harness_run, ChurnOp, HarnessOutcome, Scenario, ServeConfig};
use copart_telemetry::MetricsSnapshot;
use copart_workloads::MixKind;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the tests that flip the global parallelism knob.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn fast() -> bool {
    std::env::var("REPRO_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A fresh scratch directory (removed by the caller when the test ends).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("copart-crashrec-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("creating scratch dir");
    dir
}

const EPOCHS: u64 = 12;
const SNAP_EVERY: u64 = 3;

fn clean_scenario() -> Scenario {
    Scenario::new(MixKind::HighBoth, 3, PolicyKind::CoPart, 11, None).unwrap()
}

/// Transient fault noise on every site except `vanish` (a vanished group
/// would make the scheduled churn operations seed-dependent).
fn noisy_plan() -> FaultPlan {
    FaultPlan {
        seed: 5,
        counter_dropout: FaultTrigger::Prob { p: 0.05 },
        write_cbm: FaultTrigger::Prob { p: 0.05 },
        write_mba: FaultTrigger::Prob { p: 0.05 },
        vanish: FaultTrigger::Never,
        clock_stall: FaultTrigger::Prob { p: 0.02 },
    }
}

fn faulty_scenario() -> Scenario {
    Scenario::new(
        MixKind::HighBoth,
        3,
        PolicyKind::CoPart,
        11,
        Some(noisy_plan()),
    )
    .unwrap()
}

/// Admissions, a removal, and policy switches spread across the run, so
/// kills land before, between, and after every kind of logged event.
/// Boot groups of a 3-app mix are 1–3; the epoch-3 admission lands on 4.
fn churn_schedule() -> Vec<(u64, ChurnOp)> {
    vec![
        (2, ChurnOp::Policy("cat-only".into())),
        (3, ChurnOp::Admit("SW".into())),
        (5, ChurnOp::Policy("copart".into())),
        (8, ChurnOp::Remove(2)),
        (10, ChurnOp::Admit("EP".into())),
    ]
}

/// Everything a finished run leaves behind that must be reproducible.
struct RunResidue {
    trace: Vec<u8>,
    snapshot: SnapshotDoc,
    outcome: HarnessOutcome,
}

fn residue(trace_path: &Path, state_dir: &Path, outcome: HarnessOutcome) -> RunResidue {
    let trace = fs::read(trace_path).expect("reading trace");
    let (snapshot, _) = latest_good(state_dir)
        .expect("scanning state dir")
        .expect("a completed run leaves a final snapshot");
    RunResidue {
        trace,
        snapshot,
        outcome,
    }
}

/// Counters that legitimately differ between a resumed and an
/// uninterrupted run: they count the *persistence process* itself.
const PROCESS_COUNTERS: &[&str] = &["snapshots_written", "recoveries"];
const PROCESS_GAUGES: &[&str] = &["snapshot_bytes"];

/// Counters and debug-formatted gauges, as comparable lists.
type MetricLists = (Vec<(&'static str, u64)>, Vec<(&'static str, String)>);

/// The run-describing metrics: counters and gauges minus the process
/// series, histograms dropped entirely (every histogram is wall-clock).
fn run_metrics(m: &MetricsSnapshot) -> MetricLists {
    let counters = m
        .counters
        .iter()
        .filter(|(name, _)| !PROCESS_COUNTERS.contains(name))
        .copied()
        .collect();
    let gauges = m
        .gauges
        .iter()
        .filter(|(name, _)| !PROCESS_GAUGES.contains(name))
        .map(|(name, v)| (*name, format!("{v:?}")))
        .collect();
    (counters, gauges)
}

fn assert_same_residue(reference: &RunResidue, resumed: &RunResidue, label: &str) {
    assert!(
        !reference.trace.is_empty(),
        "{label}: the reference run must trace"
    );
    assert_eq!(
        reference.trace, resumed.trace,
        "{label}: resumed trace must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        format!("{:?}", reference.snapshot.runtime),
        format!("{:?}", resumed.snapshot.runtime),
        "{label}: final runtime snapshots diverge"
    );
    assert_eq!(
        format!("{:?}", reference.snapshot.backend),
        format!("{:?}", resumed.snapshot.backend),
        "{label}: final backend snapshots diverge"
    );
    assert_eq!(
        format!("{:?}", reference.snapshot.meta),
        format!("{:?}", resumed.snapshot.meta),
        "{label}: final snapshot metadata diverges"
    );
    assert_eq!(
        reference.outcome.epochs_done, resumed.outcome.epochs_done,
        "{label}: epoch counts diverge"
    );
    assert_eq!(
        run_metrics(&reference.outcome.metrics),
        run_metrics(&resumed.outcome.metrics),
        "{label}: run metrics diverge"
    );
}

/// The uninterrupted run of a scenario, used as the expected value.
fn reference(scenario: &Scenario, schedule: &[(u64, ChurnOp)], tag: &str) -> RunResidue {
    let dir = scratch(tag);
    let state = dir.join("state");
    let trace = dir.join("trace.jsonl");
    let outcome = harness_run(
        scenario, EPOCHS, None, &state, SNAP_EVERY, &trace, false, schedule,
    )
    .expect("reference run");
    assert!(!outcome.killed);
    let r = residue(&trace, &state, outcome);
    let _ = fs::remove_dir_all(&dir);
    r
}

/// Kill at epoch `k`, resume, and return what the resumed run left.
fn kill_and_resume(
    scenario: &Scenario,
    schedule: &[(u64, ChurnOp)],
    k: u64,
    tag: &str,
) -> RunResidue {
    let dir = scratch(tag);
    let state = dir.join("state");
    let trace = dir.join("trace.jsonl");
    let killed = harness_run(
        scenario,
        EPOCHS,
        Some(k),
        &state,
        SNAP_EVERY,
        &trace,
        false,
        schedule,
    )
    .expect("killed run");
    assert!(killed.killed, "kill at {k} should stop the run");
    assert_eq!(killed.epochs_done, k);
    let outcome = harness_run(
        scenario, EPOCHS, None, &state, SNAP_EVERY, &trace, true, schedule,
    )
    .expect("resumed run");
    assert!(!outcome.killed);
    let r = residue(&trace, &state, outcome);
    let _ = fs::remove_dir_all(&dir);
    r
}

fn sweep(scenario: &Scenario, schedule: &[(u64, ChurnOp)], tag: &str) {
    let expected = reference(scenario, schedule, &format!("{tag}-ref"));
    assert_eq!(expected.outcome.epochs_done, EPOCHS);
    let kills: Vec<u64> = if fast() {
        vec![0, 1, SNAP_EVERY, SNAP_EVERY + 1, 7, EPOCHS - 1]
    } else {
        (0..EPOCHS).collect()
    };
    for k in kills {
        let resumed = kill_and_resume(scenario, schedule, k, &format!("{tag}-k{k}"));
        assert_same_residue(&expected, &resumed, &format!("{tag} kill@{k}"));
        assert_eq!(
            resumed.outcome.metrics.counter("recoveries"),
            1,
            "{tag} kill@{k}: exactly one recovery"
        );
    }
}

#[test]
fn clean_run_survives_a_kill_at_every_epoch() {
    sweep(&clean_scenario(), &[], "clean");
}

#[test]
fn churned_run_survives_a_kill_at_every_epoch() {
    sweep(&clean_scenario(), &churn_schedule(), "churn");
}

#[test]
fn fault_injected_run_survives_a_kill_at_every_epoch() {
    sweep(&faulty_scenario(), &[], "faults");
}

#[test]
fn fault_injected_churned_run_survives_a_kill_at_every_epoch() {
    sweep(&faulty_scenario(), &churn_schedule(), "faults-churn");
}

/// Two kills in one run: the second incarnation is itself killed, so the
/// third recovers from a snapshot the *first recovery* wrote.
#[test]
fn double_kill_recovers_twice() {
    let scenario = clean_scenario();
    let schedule = churn_schedule();
    let expected = reference(&scenario, &schedule, "double-ref");
    let dir = scratch("double");
    let state = dir.join("state");
    let trace = dir.join("trace.jsonl");
    let run = |kill_at: Option<u64>, resume: bool| {
        harness_run(
            &scenario, EPOCHS, kill_at, &state, SNAP_EVERY, &trace, resume, &schedule,
        )
        .expect("double-kill run")
    };
    assert!(run(Some(4), false).killed);
    assert!(run(Some(9), true).killed);
    let outcome = run(None, true);
    assert!(!outcome.killed);
    assert_eq!(outcome.metrics.counter("recoveries"), 2);
    let resumed = residue(&trace, &state, outcome);
    let _ = fs::remove_dir_all(&dir);
    assert_same_residue(&expected, &resumed, "double kill");
}

/// Resuming a state directory under the wrong scenario must be refused,
/// not silently continued.
#[test]
fn resume_rejects_a_foreign_state_directory() {
    let dir = scratch("foreign");
    let state = dir.join("state");
    let trace = dir.join("trace.jsonl");
    let killed = harness_run(
        &clean_scenario(),
        EPOCHS,
        Some(4),
        &state,
        SNAP_EVERY,
        &trace,
        false,
        &[],
    )
    .expect("killed run");
    assert!(killed.killed);
    let other = Scenario::new(MixKind::HighBoth, 3, PolicyKind::CoPart, 12, None).unwrap();
    let err = harness_run(&other, EPOCHS, None, &state, SNAP_EVERY, &trace, true, &[])
        .expect_err("a different seed is a different run");
    assert!(
        err.contains("different run"),
        "unexpected error text: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Boots a free-running daemon over `scenario` with persistence and a
/// rotating on-disk trace, waits until the runtime's epoch counter
/// reaches `target_periods`, and drains it cleanly.
fn daemon_run(
    scenario: &Scenario,
    max_epochs: u64,
    target_periods: u64,
    state: &Path,
    trace: &Path,
) -> copart_serve::ServeReport {
    let cfg = ServeConfig {
        tick: Duration::ZERO,
        max_epochs: Some(max_epochs),
        snapshot_every: 4,
        state_dir: Some(state.to_path_buf()),
        trace_dir: Some(trace.to_path_buf()),
        trace_file_events: 6,
        ..ServeConfig::default()
    };
    let handle = copart_serve::serve_scenario(scenario, cfg).expect("daemon boots");
    let addr = handle.addr().to_string();
    wait_for_periods(&addr, target_periods);
    handle.shutdown();
    handle.join()
}

/// Polls `/metrics` until `copart_epochs_total` (control periods run,
/// including periods a recovered daemon restored) reaches `target`.
fn wait_for_periods(addr: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = loadgen::fetch(addr, "GET", "/metrics", "").expect("GET /metrics");
        assert_eq!(status, 200);
        let done = body
            .lines()
            .find_map(|l| l.strip_prefix("copart_epochs_total "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .is_some_and(|n| n >= target);
        if done {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not reach {target} periods in time"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Concatenates a rotating trace directory's files in order: the
/// logical trace, independent of where rotation happened to cut it.
fn read_rotated(dir: &Path) -> Vec<u8> {
    let mut out = Vec::new();
    for idx in 0.. {
        match fs::read(dir.join(format!("trace-{idx:04}.jsonl"))) {
            Ok(bytes) => out.extend(bytes),
            Err(_) => break,
        }
    }
    out
}

/// A daemon shut down cleanly and rebooted over the same state directory
/// continues the run: the two incarnations' rotating traces concatenate
/// to exactly the bytes one uninterrupted daemon writes.
#[test]
fn daemon_restart_continues_the_run() {
    let scenario = Scenario::new(MixKind::HighBoth, 4, PolicyKind::CoPart, 21, None).unwrap();
    let dir = scratch("daemon-restart");
    let (ref_state, ref_trace) = (dir.join("ref-state"), dir.join("ref-trace"));
    let (state, trace) = (dir.join("state"), dir.join("trace"));

    let reference = daemon_run(&scenario, 12, 12, &ref_state, &ref_trace);
    assert_eq!(reference.epochs, 12);

    let first = daemon_run(&scenario, 6, 6, &state, &trace);
    assert_eq!(first.epochs, 6);
    // The reboot resumes from the clean-shutdown snapshot: the epoch cap
    // keeps counting from 6, and `copart_epochs_total` reboots at 6.
    let second = daemon_run(&scenario, 12, 12, &state, &trace);
    assert_eq!(second.epochs, 12);
    assert_eq!(second.snapshot.counter("recoveries"), 1);

    let expected = read_rotated(&ref_trace);
    let restarted = read_rotated(&trace);
    let _ = fs::remove_dir_all(&dir);
    assert!(!expected.is_empty());
    assert_eq!(
        expected, restarted,
        "restarted daemon's trace must be byte-identical to an uninterrupted daemon's"
    );
}

/// `POST /snapshot` cuts a snapshot on demand when persistence is on and
/// answers 409 when the daemon was started without a state directory.
#[test]
fn snapshot_endpoint_cuts_on_demand() {
    let scenario = Scenario::new(MixKind::HighBoth, 4, PolicyKind::CoPart, 23, None).unwrap();
    let dir = scratch("daemon-snapshot");

    let without = copart_serve::serve_scenario(
        &scenario,
        ServeConfig {
            tick: Duration::ZERO,
            max_epochs: Some(4),
            ..ServeConfig::default()
        },
    )
    .expect("daemon boots");
    let addr = without.addr().to_string();
    let (status, body) = loadgen::fetch(&addr, "POST", "/snapshot", "").expect("POST /snapshot");
    assert_eq!(status, 409, "no state dir: {body}");
    without.shutdown();
    without.join();

    let state = dir.join("state");
    let with = copart_serve::serve_scenario(
        &scenario,
        ServeConfig {
            tick: Duration::ZERO,
            max_epochs: Some(6),
            state_dir: Some(state.clone()),
            snapshot_every: 0, // explicit snapshots only
            ..ServeConfig::default()
        },
    )
    .expect("daemon boots");
    let addr = with.addr().to_string();
    wait_for_periods(&addr, 6);
    let (status, body) = loadgen::fetch(&addr, "GET", "/snapshot", "").expect("GET /snapshot");
    assert_eq!(status, 405, "{body}");
    let (status, body) = loadgen::fetch(&addr, "POST", "/snapshot", "").expect("POST /snapshot");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"snapshot\"") && body.contains("\"bytes\""));
    let (doc, path) = latest_good(&state)
        .expect("scanning state dir")
        .expect("the endpoint left a snapshot");
    assert!(path.exists());
    assert!(doc.meta.daemon_epochs >= 6);
    with.shutdown();
    with.join();
    let _ = fs::remove_dir_all(&dir);
}

/// The recovery contract cannot depend on the parallelism knob: a run
/// killed and resumed under `--jobs 8` reproduces the uninterrupted
/// `--jobs 1` run byte for byte.
#[test]
fn recovery_is_jobs_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scenario = clean_scenario();
    let schedule = churn_schedule();
    copart_parallel::set_jobs(Some(1));
    let serial = reference(&scenario, &schedule, "jobs1-ref");
    copart_parallel::set_jobs(Some(8));
    let parallel = reference(&scenario, &schedule, "jobs8-ref");
    let resumed = kill_and_resume(&scenario, &schedule, 5, "jobs8-kill");
    copart_parallel::set_jobs(None);
    assert_same_residue(&serial, &parallel, "jobs 1 vs jobs 8");
    assert_same_residue(&serial, &resumed, "jobs 1 reference vs jobs 8 kill/resume");
}
