//! The CoPart controller driving a *resctrl filesystem* instead of the
//! simulator: a mock `/sys/fs/resctrl` tree plus a synthetic counter
//! source whose rates respond to the programmed schemata, so the full
//! profile → explore → idle loop runs through real file I/O.

use std::path::{Path, PathBuf};
use std::time::Duration;

use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::{AllocationState, SystemState, WaysBudget};
use copart_core::{CoPartParams, Phase};
use copart_rdt::resctrl::{CounterSource, Schemata};
use copart_rdt::{
    CbmMask, FileCounterSource, MbaLevel, RdtBackend, RdtCapabilities, RdtError, ResctrlBackend,
};
use copart_telemetry::CounterSnapshot;

fn caps() -> RdtCapabilities {
    RdtCapabilities {
        llc_ways: 11,
        num_clos: 16,
        mba_min_percent: 10,
        mba_step_percent: 10,
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("copart-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A counter source that *reads back the group's schemata* and advances a
/// per-group instruction counter at a rate proportional to the granted
/// ways and MBA level — a crude machine living in the filesystem, enough
/// to close the control loop.
struct SchemataDrivenCounters {
    state: std::collections::HashMap<PathBuf, CounterSnapshot>,
    /// Per-group LLC appetite: ways needed for full speed.
    ways_needed: std::collections::HashMap<String, f64>,
    calls: u64,
}

impl SchemataDrivenCounters {
    fn new(ways_needed: &[(&str, f64)]) -> Self {
        SchemataDrivenCounters {
            state: Default::default(),
            ways_needed: ways_needed
                .iter()
                .map(|(n, w)| (n.to_string(), *w))
                .collect(),
            calls: 0,
        }
    }
}

impl CounterSource for SchemataDrivenCounters {
    fn read(&mut self, group_dir: &Path) -> Result<CounterSnapshot, RdtError> {
        self.calls += 1;
        let text =
            std::fs::read_to_string(group_dir.join("schemata")).map_err(|e| RdtError::Io {
                path: group_dir.display().to_string(),
                source: e,
            })?;
        let schemata = Schemata::parse(&text).map_err(|message| RdtError::Parse {
            path: group_dir.display().to_string(),
            message,
        })?;
        let ways = f64::from(schemata.l3.get(&0).copied().unwrap_or(0).count_ones());
        let mba = f64::from(schemata.mb.get(&0).copied().unwrap_or(100)) / 100.0;
        let name = group_dir
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("")
            .to_string();
        let needed = self.ways_needed.get(&name).copied().unwrap_or(1.0);

        // IPS saturates once the group holds `needed` ways; MBA throttling
        // shaves off a little.
        let ips = 1.0e9 * (ways / needed).min(1.0) * (0.8 + 0.2 * mba);
        let entry = self.state.entry(group_dir.to_path_buf()).or_default();
        // One sampling period is ~1 ms in this test.
        entry.instructions += (ips / 1000.0) as u64;
        entry.cycles += 2_100_000;
        entry.llc_accesses += (ips / 100.0 / 1000.0) as u64;
        entry.llc_misses +=
            ((ways / needed).min(1.0).mul_add(-0.04, 0.05) * ips / 100.0 / 1000.0).max(0.0) as u64;
        Ok(*entry)
    }
}

#[test]
fn system_states_program_schemata_files() {
    let root = temp_root("apply");
    ResctrlBackend::<FileCounterSource>::create_mock_tree(&root, caps()).unwrap();
    let mut backend = ResctrlBackend::mount(&root, FileCounterSource).unwrap();
    let g0 = backend.create_group("app0").unwrap();
    let g1 = backend.create_group("app1").unwrap();
    let g2 = backend.create_group("app2").unwrap();

    let state = SystemState {
        allocs: vec![
            AllocationState {
                ways: 5,
                mba: MbaLevel::new(100),
            },
            AllocationState {
                ways: 4,
                mba: MbaLevel::new(30),
            },
            AllocationState {
                ways: 2,
                mba: MbaLevel::new(60),
            },
        ],
    };
    let budget = WaysBudget::full_machine(11);
    state.apply(&mut backend, &[g0, g1, g2], &budget).unwrap();

    assert_eq!(
        std::fs::read_to_string(root.join("app0/schemata")).unwrap(),
        "L3:0=1f\nMB:0=100\n"
    );
    assert_eq!(
        std::fs::read_to_string(root.join("app1/schemata")).unwrap(),
        "L3:0=1e0\nMB:0=30\n"
    );
    assert_eq!(
        std::fs::read_to_string(root.join("app2/schemata")).unwrap(),
        "L3:0=600\nMB:0=60\n"
    );

    // Round-trip through the backend's parser too.
    let (mask, level) = backend.clos_config(g1).unwrap();
    assert_eq!(mask, CbmMask::contiguous(5, 4, 11).unwrap());
    assert_eq!(level.percent(), 30);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn full_control_loop_over_the_filesystem() {
    let root = temp_root("loop");
    ResctrlBackend::<SchemataDrivenCounters>::create_mock_tree(&root, caps()).unwrap();
    // "hungry" saturates at 6 ways, "modest" at 2, "tiny" at 1.
    let counters = SchemataDrivenCounters::new(&[("hungry", 6.0), ("modest", 2.0), ("tiny", 1.0)]);
    let mut backend = ResctrlBackend::mount(&root, counters).unwrap();
    let hungry = backend.create_group("hungry").unwrap();
    let modest = backend.create_group("modest").unwrap();
    let tiny = backend.create_group("tiny").unwrap();

    let stream = copart_workloads::stream::StreamReference::from_table([
        1e7, 2e7, 3e7, 4e7, 5e7, 6e7, 7e7, 8e7, 9e7, 1e8,
    ]);
    let cfg = RuntimeConfig {
        params: CoPartParams {
            period: Duration::from_millis(1),
            ..CoPartParams::default()
        },
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(11),
        stream,
        resilience: Default::default(),
        planner: Default::default(),
    };
    let mut rt = ConsolidationRuntime::new(
        backend,
        vec![
            (hungry, "hungry".into()),
            (modest, "modest".into()),
            (tiny, "tiny".into()),
        ],
        cfg,
    )
    .unwrap();
    rt.profile().unwrap();
    for _ in 0..40 {
        rt.run_period().unwrap();
        if rt.phase() == Phase::Idle {
            break;
        }
    }

    // The way-hungry group must have ended up with the most ways, and the
    // final masks must partition the cache — all read back from disk.
    let (hungry_mask, _) = rt.backend().clos_config(hungry).unwrap();
    let (modest_mask, _) = rt.backend().clos_config(modest).unwrap();
    let (tiny_mask, _) = rt.backend().clos_config(tiny).unwrap();
    assert!(
        hungry_mask.way_count() >= modest_mask.way_count(),
        "hungry {} vs modest {}",
        hungry_mask,
        modest_mask
    );
    assert!(hungry_mask.way_count() >= tiny_mask.way_count());
    assert!(!hungry_mask.overlaps(modest_mask));
    assert!(!hungry_mask.overlaps(tiny_mask));
    assert!(!modest_mask.overlaps(tiny_mask));
    let union = hungry_mask.bits() | modest_mask.bits() | tiny_mask.bits();
    assert_eq!(union, 0x7ff, "masks cover the whole LLC");
    let _ = std::fs::remove_dir_all(&root);
}
