//! Cross-crate observability integration: a short sim-backend run must
//! emit exactly one trace event per control epoch, with monotone epoch
//! numbers and the controller phases appearing in Figure 10 order
//! (Profiling → Exploring → Idle).

use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::CoPartParams;
use copart_rdt::{ClosId, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_telemetry::{
    read_trace_file, JsonlRecorder, NullRecorder, TraceDecision, TraceEvent, TracePhase,
};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};

const PERIODS: u32 = 80;

/// Runs CoPart on the paper-default H-LLC mix with a JSONL recorder and
/// returns the parsed trace plus the app count.
fn traced_run() -> (Vec<TraceEvent>, usize) {
    let cfg = MachineConfig::xeon_gold_6130();
    let stream = StreamReference::compute(&cfg, 4);
    let mut backend = SimBackend::new(Machine::new(cfg.clone()));
    let mut groups: Vec<(ClosId, String)> = Vec::new();
    for spec in WorkloadMix::paper_default(MixKind::HighLlc).specs() {
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    let n_apps = groups.len();
    let rcfg = RuntimeConfig {
        params: CoPartParams {
            seed: 7,
            ..CoPartParams::default()
        },
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(cfg.llc_ways),
        stream,
        resilience: Default::default(),
        planner: Default::default(),
    };
    let path =
        std::env::temp_dir().join(format!("copart-observability-{}.jsonl", std::process::id()));
    let mut rt = ConsolidationRuntime::new(backend, groups, rcfg).unwrap();
    rt.set_recorder(Box::new(JsonlRecorder::create(&path).unwrap()));
    rt.profile().unwrap();
    rt.run_periods(PERIODS).unwrap();
    rt.set_recorder(Box::new(NullRecorder))
        .flush()
        .expect("trace flushes");
    let events = read_trace_file(&path).expect("trace parses back");
    let _ = std::fs::remove_file(&path);
    (events, n_apps)
}

#[test]
fn one_event_per_epoch_with_fig10_phase_order() {
    let (events, n_apps) = traced_run();

    // One event per control epoch: one per profiling probe, one per
    // period, with epoch numbers monotone from 0 with no gaps.
    assert_eq!(events.len(), n_apps + PERIODS as usize);
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.epoch, i as u64, "epoch numbers must be gapless");
    }
    for pair in events.windows(2) {
        assert!(pair[1].time_ns >= pair[0].time_ns, "time must not rewind");
    }

    // Phases in Figure 10 order: collapse consecutive repeats and check
    // the run starts Profiling → Exploring and reaches Idle; later
    // re-explorations may only alternate Exploring ↔ Idle.
    let mut order: Vec<TracePhase> = Vec::new();
    for e in &events {
        if order.last() != Some(&e.phase) {
            order.push(e.phase);
        }
    }
    assert!(
        order.len() >= 3 && order[0] == TracePhase::Profiling,
        "run must start in Profiling: {order:?}"
    );
    assert_eq!(
        order[1],
        TracePhase::Exploring,
        "profiling hands off to Exploring"
    );
    assert_eq!(
        order[2],
        TracePhase::Idle,
        "exploration must converge to Idle"
    );
    assert!(
        order[3..]
            .iter()
            .all(|p| matches!(p, TracePhase::Exploring | TracePhase::Idle)),
        "Profiling never recurs: {order:?}"
    );

    // Per-event shape: profiling events carry exactly the probed app;
    // control events carry every app and a full applied partition.
    let budget = WaysBudget::full_machine(11);
    for e in &events {
        if e.phase == TracePhase::Profiling {
            assert_eq!(e.decision, TraceDecision::Profiled);
            assert_eq!(e.apps.len(), 1);
        } else {
            assert_eq!(e.apps.len(), n_apps);
            assert_eq!(e.applied.len(), n_apps);
            let ways: u32 = e.applied.iter().map(|a| a.ways).sum();
            assert_eq!(
                ways, budget.total_ways,
                "applied partition uses the full budget"
            );
            for app in &e.apps {
                assert!(app.slowdown.is_finite() && app.slowdown > 0.0);
            }
        }
    }
}
