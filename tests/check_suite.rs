//! Tier-1 gate for the `copart-check` differential-oracle suite.
//!
//! Three contracts: the whole suite is green at the configured fuzz
//! budget (`COPART_CHECK_CASES`, default 64); the report is a pure
//! function of the configuration — byte-identical at any worker count;
//! and every blessed regression fixture in `tests/corpus/` still
//! replays (same decoded input, passing verdict). The last one is what
//! turns each fixed bug into a permanent test: if a generator change
//! silently re-decodes a blessed tape, the witness digest trips here.

use copart_check::{oracles, run_suite, CheckConfig};

#[test]
fn suite_is_green_at_the_configured_budget() {
    let config = CheckConfig::from_env();
    let report = run_suite(&oracles::all(), &config);
    assert!(report.ok(), "suite failed:\n{}", report.render());
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    // A moderate budget keeps this affordable even when the full gate
    // raises COPART_CHECK_CASES; determinism does not depend on volume.
    let base = CheckConfig::from_env();
    let at = |jobs| {
        let config = CheckConfig {
            jobs,
            cases: base.cases.min(64),
            ..base.clone()
        };
        run_suite(&oracles::all(), &config).render()
    };
    assert_eq!(
        at(1),
        at(8),
        "report bytes must not depend on the worker count"
    );
}

#[test]
fn corpus_replays_every_blessed_regression() {
    let config = CheckConfig {
        cases: 0,
        ..CheckConfig::from_env()
    };
    let report = run_suite(&oracles::all(), &config);
    assert!(report.ok(), "corpus replay failed:\n{}", report.render());
    let replayed = |name: &str| {
        report
            .properties
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.corpus_entries)
            .unwrap_or(0)
    };
    // The fixtures behind this PR's bug fixes must actually be there —
    // an accidentally deleted or mis-named .case file would otherwise
    // pass by replaying nothing.
    assert!(
        replayed("json-depth-limit") >= 1,
        "depth-limit bomb missing"
    );
    assert!(
        replayed("ewma-reference") >= 1,
        "EWMA dropout fixture missing"
    );
    assert!(
        replayed("schemata-validation") >= 2,
        "schemata fixtures missing"
    );
    assert!(
        replayed("matching-allocate-stable") >= 1,
        "matching fixture missing"
    );
    assert!(
        replayed("snapshot-restore-replay") >= 2,
        "crash-recovery fixtures missing (clean + faulted)"
    );
}
