//! Integration tests for the `copart serve` daemon: every wire endpoint,
//! the Prometheus exposition, determinism of daemon traces against
//! one-shot runs (fault-free and fault-injected, under concurrent read
//! load), wall-clock pacing, and the drain-at-epoch-boundary shutdown.

use copart_core::policies::PolicyKind;
use copart_faults::FaultPlan;
use copart_serve::loadgen::{self, LoadConfig};
use copart_serve::{Scenario, ServeConfig, ServerHandle};
use copart_telemetry::Json;
use copart_workloads::MixKind;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A free-running daemon over the standard 4-app scenario.
fn boot_free(scenario: &Scenario, max_epochs: u64) -> ServerHandle {
    let cfg = ServeConfig {
        tick: Duration::ZERO,
        max_epochs: Some(max_epochs),
        ..ServeConfig::default()
    };
    copart_serve::serve_scenario(scenario, cfg).expect("daemon boots")
}

fn scenario(seed: u64) -> Scenario {
    Scenario::new(MixKind::HighBoth, 4, PolicyKind::CoPart, seed, None).expect("valid scenario")
}

fn get(addr: &str, path: &str) -> (u16, String) {
    loadgen::fetch(addr, "GET", path, "").expect("GET succeeds at the transport layer")
}

/// Polls `/metrics` until the epoch counter reaches `target`.
fn wait_for_epochs(addr: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let done = body
            .lines()
            .find_map(|l| l.strip_prefix("copart_epochs_total "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .is_some_and(|n| n >= target);
        if done {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not reach {target} epochs in time"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One exposition sample: `name{labels} value`.
struct Sample {
    name: String,
    labels: String,
    value: f64,
}

/// A tiny Prometheus text-format (0.0.4) parser: enough to reject
/// malformed exposition and hand back the samples. Every sample must be
/// preceded by a `# TYPE` for its metric (histograms via their base
/// name), which is what real scrapers rely on.
fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    if parts.next().is_none() {
                        return Err(err("HELP without a metric name"));
                    }
                }
                Some("TYPE") => {
                    let name = parts.next().ok_or_else(|| err("TYPE without a name"))?;
                    let kind = parts.next().ok_or_else(|| err("TYPE without a kind"))?;
                    if !["counter", "gauge", "histogram"].contains(&kind) {
                        return Err(err("unknown metric kind"));
                    }
                    typed.insert(name.to_string(), kind.to_string());
                }
                _ => return Err(err("unknown comment form")),
            }
            continue;
        }
        let (name_labels, value) = line.rsplit_once(' ').ok_or_else(|| err("no value"))?;
        let value: f64 = value.parse().map_err(|_| err("unparseable value"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, l)) => (
                n.to_string(),
                l.strip_suffix('}')
                    .ok_or_else(|| err("unclosed labels"))?
                    .to_string(),
            ),
            None => (name_labels.to_string(), String::new()),
        };
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(&name);
        if !typed.contains_key(&name) && !typed.contains_key(base) {
            return Err(err("sample without a preceding TYPE"));
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[test]
fn every_endpoint_round_trips() {
    let handle = boot_free(&scenario(7), 2_000);
    let addr = handle.addr().to_string();

    // GET /status: a JSON document with the live consolidation picture.
    let (status, body) = get(&addr, "/status");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("/status is JSON");
    assert!(doc.get("epoch").is_some());
    assert!(doc
        .get("schemata")
        .and_then(Json::as_str)
        .unwrap()
        .contains("L3:"));

    // GET /healthz: the daemon just booted and is live.
    assert_eq!(get(&addr, "/healthz").0, 200);

    // GET /metrics: valid Prometheus text carrying the advertised series.
    // The epoch-derived series (epochs, unfairness, epoch_ns) appear
    // once the first epoch lands, so let a few run first.
    wait_for_epochs(&addr, 5);
    let (status, text) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let samples = parse_prometheus(&text).expect("/metrics parses as Prometheus 0.0.4");
    for required in [
        "copart_epochs_total",
        "copart_http_requests_total",
        "copart_http_responses_2xx_total",
        "copart_worker_runs_total",
        "copart_unfairness",
        "copart_healthy",
        "copart_epoch_ns_sum",
    ] {
        assert!(
            samples.iter().any(|s| s.name == required),
            "/metrics is missing {required}"
        );
    }
    // Histogram buckets are cumulative and end at +Inf == _count.
    let buckets: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "copart_epoch_ns_bucket")
        .collect();
    assert!(!buckets.is_empty());
    assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
    let inf = buckets.last().unwrap();
    assert!(inf.labels.contains("le=\"+Inf\""));
    let count = samples
        .iter()
        .find(|s| s.name == "copart_epoch_ns_count")
        .unwrap();
    assert_eq!(inf.value, count.value);

    // GET /trace?tail=N: at most N JSONL events, each parseable.
    let (status, tail) = get(&addr, "/trace?tail=3");
    assert_eq!(status, 200);
    let lines: Vec<&str> = tail.lines().collect();
    assert!(!lines.is_empty() && lines.len() <= 3);
    for line in &lines {
        Json::parse(line).expect("trace line is JSON");
    }

    // Mutations: remove an app, admit a replacement, switch the policy.
    let (status, body) = loadgen::fetch(&addr, "DELETE", "/apps/2", "").unwrap();
    assert_eq!(status, 200, "remove: {body}");
    let (status, body) = loadgen::fetch(&addr, "POST", "/apps", "{\"bench\":\"EP\"}").unwrap();
    assert_eq!(status, 201, "admit into the freed slot: {body}");
    assert!(body.contains("\"group\""));
    let (status, body) =
        loadgen::fetch(&addr, "POST", "/policy", "{\"policy\":\"mba-only\"}").unwrap();
    assert_eq!(status, 200, "policy switch: {body}");
    assert!(body.contains("MBA-only"));

    // Malformed and refused requests map onto the right 4xx.
    let cases: [(&str, &str, &str, u16); 8] = [
        ("POST", "/apps", "not json", 400),
        ("POST", "/apps", "{\"bench\":\"NOPE\"}", 400),
        ("POST", "/apps", "{\"wrong\":\"field\"}", 400),
        ("POST", "/policy", "{\"policy\":\"st\"}", 400),
        ("DELETE", "/apps/99", "", 404),
        ("DELETE", "/apps/abc", "", 400),
        ("GET", "/no-such-endpoint", "", 404),
        ("PUT", "/status", "", 405),
    ];
    for (method, path, body, expected) in cases {
        let (status, reply) = loadgen::fetch(&addr, method, path, body).unwrap();
        assert_eq!(status, expected, "{method} {path} with {body:?}: {reply}");
        assert!(Json::parse(&reply)
            .expect("error body is JSON")
            .get("error")
            .is_some());
    }
    let (status, _) = get(&addr, "/trace?tail=abc");
    assert_eq!(status, 400);

    // An oversize body is rejected before it is read.
    let oversize = "x".repeat(65 * 1024 + 1);
    let (status, _) = loadgen::fetch(&addr, "POST", "/apps", &oversize).unwrap();
    assert_eq!(status, 413);

    // POST /shutdown drains the daemon.
    let (status, body) = loadgen::fetch(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("draining"));
    let report = handle.join();
    assert!(report.epochs > 0);
    assert!(
        loadgen::fetch(&addr, "GET", "/status", "").is_err(),
        "the port is closed"
    );
}

#[test]
fn fault_free_daemon_trace_matches_oneshot_under_load() {
    const EPOCHS: u64 = 30;
    let scenario = scenario(42);
    let expected = scenario
        .reference_trace(EPOCHS)
        .expect("one-shot reference runs");

    let handle = boot_free(&scenario, EPOCHS);
    let addr = handle.addr().to_string();
    // Concurrent read load while the epochs run: GETs must not perturb
    // the control loop's decisions.
    let load_addr = addr.clone();
    let load = std::thread::spawn(move || {
        loadgen::run(
            &load_addr,
            &LoadConfig {
                requests: 400,
                concurrency: 4,
            },
        )
        .expect("load generator runs")
    });
    wait_for_epochs(&addr, EPOCHS);
    let report = load.join().expect("load thread joins");
    assert_eq!(report.failures, 0, "every request under load answered 2xx");

    let (status, trace) = get(&addr, "/trace?tail=4096");
    assert_eq!(status, 200);
    let got: Vec<&str> = trace.lines().collect();
    assert_eq!(
        got, expected,
        "daemon trace diverged from the one-shot reference"
    );

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.epochs, EPOCHS);
}

#[test]
fn fault_injected_daemon_trace_matches_oneshot() {
    const EPOCHS: u64 = 25;
    let plan = FaultPlan::parse("seed=9,write=0.08,dropout=0.06").expect("valid fault spec");
    let scenario = Scenario::new(MixKind::HighBoth, 4, PolicyKind::CoPart, 42, Some(plan)).unwrap();
    let expected = scenario
        .reference_trace(EPOCHS)
        .expect("faulty reference runs");

    let handle = boot_free(&scenario, EPOCHS);
    let addr = handle.addr().to_string();
    wait_for_epochs(&addr, EPOCHS);
    let (status, trace) = get(&addr, "/trace?tail=4096");
    assert_eq!(status, 200);
    let got: Vec<&str> = trace.lines().collect();
    assert_eq!(
        got, expected,
        "fault-injected daemon trace diverged from the one-shot reference"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn reference_trace_is_jobs_invariant() {
    let scenario = scenario(13);
    copart_parallel::set_jobs(Some(1));
    let jobs1 = scenario.reference_trace(12).unwrap();
    copart_parallel::set_jobs(Some(4));
    let jobs4 = scenario.reference_trace(12).unwrap();
    copart_parallel::set_jobs(None);
    assert_eq!(jobs1, jobs4, "worker count must not leak into the trace");
}

#[test]
fn wall_clock_pacing_holds_deadlines_under_load() {
    // A deliberately generous tick for CI machines: a miss means the
    // control thread lagged by more than one full tick (100 ms).
    let cfg = ServeConfig {
        tick: Duration::from_millis(100),
        max_epochs: None,
        ..ServeConfig::default()
    };
    let handle = copart_serve::serve_scenario(&scenario(3), cfg).expect("daemon boots");
    let addr = handle.addr().to_string();
    let report = loadgen::run(
        &addr,
        &LoadConfig {
            requests: 2_000,
            concurrency: 8,
        },
    )
    .expect("load generator runs");
    assert_eq!(report.failures, 0);
    assert_eq!(report.ok2xx, 2_000);
    // The load can finish inside the first 100 ms tick; make sure the
    // pacer has actually ticked before reading its counters.
    wait_for_epochs(&addr, 3);

    handle.shutdown();
    let report = handle.join();
    assert!(report.snapshot.counter("ticks") > 0, "the pacer ticked");
    assert_eq!(
        report.snapshot.counter("epoch_deadline_misses"),
        0,
        "the control loop held every epoch deadline under load"
    );
}

#[test]
fn shutdown_drains_at_an_epoch_boundary() {
    let cfg = ServeConfig {
        tick: Duration::from_millis(20),
        max_epochs: None,
        ..ServeConfig::default()
    };
    let handle = copart_serve::serve_scenario(&scenario(5), cfg).expect("daemon boots");
    let addr = handle.addr().to_string();
    wait_for_epochs(&addr, 3);
    // The wire-level kill: POST /shutdown, then drain.
    let (status, _) = loadgen::fetch(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    let report = handle.join();
    // Every epoch the daemon *started* also finished and was recorded:
    // the attempt count equals the runtime's completed-epoch counter, so
    // the drain happened on an epoch boundary, never mid-epoch.
    assert!(report.epochs >= 3);
    assert_eq!(report.epochs, report.snapshot.counter("epochs"));
}
