//! Property-style fault soak: sweep seeds over a hostile deterministic
//! fault plan and assert the hardened runtime's resilience invariants on
//! every epoch — no panic, the applied partition stays valid, unfairness
//! stays finite, and every failed partition apply rolled back.
//!
//! The plans are deterministic (`copart-faults` derives one private RNG
//! stream per fault site from the plan seed), so a seed that passes here
//! passes forever: there is no flakiness to tolerate, only regressions.

use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::CoPartParams;
use copart_faults::{FaultPlan, FaultTrigger, FaultyBackend};
use copart_rdt::{ClosId, RdtError, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};
use std::sync::OnceLock;

fn stream() -> &'static StreamReference {
    static S: OnceLock<StreamReference> = OnceLock::new();
    S.get_or_init(|| StreamReference::compute(&MachineConfig::xeon_gold_6130(), 4))
}

fn fast() -> bool {
    std::env::var("REPRO_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn build(kind: MixKind) -> (SimBackend, Vec<(ClosId, String)>) {
    let mut backend = SimBackend::new(Machine::new(MachineConfig::xeon_gold_6130()));
    let mut groups = Vec::new();
    for spec in WorkloadMix::paper_default(kind).specs() {
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    (backend, groups)
}

fn runtime_cfg() -> RuntimeConfig {
    RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(11),
        stream: stream().clone(),
        resilience: Default::default(),
        planner: Default::default(),
    }
}

/// Every fault site armed at once: transient schemata writes, counter
/// dropouts, clock stalls, and the occasional vanished group (the one
/// persistent fault, which forces the transactional-apply rollback path).
fn hostile_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        counter_dropout: FaultTrigger::Prob { p: 0.05 },
        write_cbm: FaultTrigger::Prob { p: 0.08 },
        write_mba: FaultTrigger::Prob { p: 0.08 },
        vanish: FaultTrigger::Prob { p: 0.003 },
        clock_stall: FaultTrigger::Prob { p: 0.02 },
    }
}

/// Runs one seed end to end. Returns `false` when the plan vanished a
/// group during the *initial* partition apply — construction then fails
/// cleanly with `UnknownGroup` (the correct propagation: a deployment
/// retries group creation), which is an acceptable, deterministic
/// outcome but yields no soak coverage for that seed.
fn soak_one(seed: u64, epochs: u32) -> bool {
    let (backend, groups) = build(MixKind::HighBoth);
    let faulty = FaultyBackend::new(backend, hostile_plan(seed));
    let mut rt = match ConsolidationRuntime::new(faulty, groups, runtime_cfg()) {
        Ok(rt) => rt,
        Err(RdtError::UnknownGroup(_)) => return false,
        Err(e) => panic!("seed {seed}: construction failed with a non-vanish error: {e}"),
    };
    // A vanished group aborts a whole profiling pass (persistent errors
    // are not retried in place); passes are cheap, so take a few.
    let mut profiled = false;
    for _ in 0..10 {
        if rt.profile().is_ok() {
            profiled = true;
            break;
        }
    }
    assert!(profiled, "seed {seed}: profiling should survive 10 passes");

    let budget = WaysBudget::full_machine(11);
    for k in 0..epochs {
        let r = rt
            .run_period()
            .unwrap_or_else(|e| panic!("seed {seed} epoch {k}: period failed: {e}"));
        assert!(
            r.state.is_valid(&budget),
            "seed {seed} epoch {k}: invalid state {:?}",
            r.state
        );
        assert!(
            r.unfairness.is_finite(),
            "seed {seed} epoch {k}: unfairness is not finite"
        );
    }

    let m = rt.metrics_snapshot();
    assert_eq!(
        m.counter("partition_rollbacks"),
        m.counter("partition_apply_failures"),
        "seed {seed}: every failed partition apply must roll back"
    );
    let stats = rt.backend().stats();
    assert!(stats.total() > 0, "seed {seed}: the plan never fired");
    // Unless a rollback write itself was lost, the masks programmed into
    // the (real, undecorated) machine stay inside the granted way range.
    if m.counter("rollback_write_failures") == 0 {
        for app in rt.apps() {
            let (mask, _) = rt
                .backend()
                .inner()
                .machine()
                .clos_config(app.group)
                .unwrap();
            assert!(
                mask.ways().all(|w| w < 11),
                "seed {seed}: mask {mask} escapes the budget"
            );
        }
    }
    true
}

#[test]
fn seed_sweep_soak() {
    let seeds: &[u64] = if fast() {
        &[17, 42]
    } else {
        &[3, 17, 42, 9001, 987654321]
    };
    let epochs = if fast() { 60 } else { 200 };
    let soaked = seeds.iter().filter(|&&s| soak_one(s, epochs)).count();
    assert!(
        soaked * 2 >= seeds.len(),
        "only {soaked}/{} seeds survived construction — the vanish rate \
         is too hot for real soak coverage",
        seeds.len()
    );
}

/// The hostile plan with the vanish site disarmed: membership churn is
/// driven by the test itself, so groups must not also disappear under it.
fn churn_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        vanish: FaultTrigger::Never,
        ..hostile_plan(seed)
    }
}

/// Membership churn while every transient fault site fires: an
/// application departs mid-run and a new one is admitted, each followed
/// by more faulted epochs. The runtime's bookkeeping (apps, cached
/// groups, partition state) must stay consistent through both
/// transitions, and the standing resilience invariants must keep holding.
fn churn_one(seed: u64, epochs: u32) {
    let (backend, groups) = build(MixKind::HighBoth);
    let n0 = groups.len();
    let faulty = FaultyBackend::new(backend, churn_plan(seed));
    let mut rt = ConsolidationRuntime::new(faulty, groups, runtime_cfg())
        .unwrap_or_else(|e| panic!("seed {seed}: construction failed: {e}"));
    let mut profiled = false;
    for _ in 0..10 {
        if rt.profile().is_ok() {
            profiled = true;
            break;
        }
    }
    assert!(profiled, "seed {seed}: profiling should survive 10 passes");

    let budget = WaysBudget::full_machine(11);
    let check_epochs = |rt: &mut ConsolidationRuntime<FaultyBackend<SimBackend>>, stage: &str| {
        for k in 0..epochs {
            let r = rt
                .run_period()
                .unwrap_or_else(|e| panic!("seed {seed} {stage} epoch {k}: period failed: {e}"));
            assert!(
                r.state.is_valid(&budget),
                "seed {seed} {stage} epoch {k}: invalid state {:?}",
                r.state
            );
            assert_eq!(
                r.apps.len(),
                rt.apps().len(),
                "seed {seed} {stage} epoch {k}: period/app bookkeeping diverged"
            );
            assert!(
                r.unfairness.is_finite(),
                "seed {seed} {stage} epoch {k}: unfairness is not finite"
            );
        }
    };
    check_epochs(&mut rt, "pre-churn");

    // Departure. A persistent write fault can abort the shrunken-state
    // apply; the membership change itself must stick either way, and the
    // next successful apply re-synchronizes the backend.
    let victim = rt.apps()[0].group;
    let _ = rt.remove_app(victim);
    assert_eq!(rt.apps().len(), n0 - 1, "seed {seed}: departure lost");
    assert!(
        rt.apps().iter().all(|a| a.group != victim),
        "seed {seed}: victim still managed"
    );
    rt.backend_mut()
        .inner_mut()
        .remove_workload(victim)
        .unwrap_or_else(|e| panic!("seed {seed}: sim removal failed: {e}"));
    check_epochs(&mut rt, "post-remove");

    // Admission: a new workload joins and the whole consolidation is
    // re-profiled. A persistent fault can abort the profiling pass
    // mid-way; the app stays admitted, so re-profile until it sticks.
    let mut spec = copart_workloads::Benchmark::Swaptions.spec();
    spec.name = "late_joiner".to_string();
    let joiner = rt
        .backend_mut()
        .inner_mut()
        .add_workload(spec)
        .unwrap_or_else(|e| panic!("seed {seed}: sim admission failed: {e}"));
    if rt.add_app(joiner, "late_joiner".to_string()).is_err() {
        let mut reprofiled = false;
        for _ in 0..10 {
            if rt.profile().is_ok() {
                reprofiled = true;
                break;
            }
        }
        assert!(
            reprofiled,
            "seed {seed}: re-profiling after admission should survive 10 passes"
        );
    }
    assert_eq!(rt.apps().len(), n0, "seed {seed}: admission lost");
    let late = rt
        .apps()
        .iter()
        .find(|a| a.group == joiner)
        .unwrap_or_else(|| panic!("seed {seed}: late joiner not managed"));
    assert_eq!(late.name, "late_joiner");
    assert!(
        late.ips_full > 0.0,
        "seed {seed}: late joiner was never profiled"
    );
    check_epochs(&mut rt, "post-add");

    let m = rt.metrics_snapshot();
    assert_eq!(
        m.counter("partition_rollbacks"),
        m.counter("partition_apply_failures"),
        "seed {seed}: every failed partition apply must roll back"
    );
    assert_eq!(
        rt.state().allocs.len(),
        rt.apps().len(),
        "seed {seed}: state/app bookkeeping diverged"
    );
}

#[test]
fn app_churn_under_faults() {
    let seeds: &[u64] = if fast() { &[7, 23] } else { &[7, 23, 1117] };
    let epochs = if fast() { 20 } else { 60 };
    for &seed in seeds {
        churn_one(seed, epochs);
    }
}

/// A dropout-heavy, vanish-free plan: hot enough that the runtime is in
/// and out of degraded mode (held FSMs, EWMA'd rates) on any stretch of
/// epochs, so a mid-run kill lands with degraded-mode state in flight.
fn degraded_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        counter_dropout: FaultTrigger::Prob { p: 0.25 },
        vanish: FaultTrigger::Never,
        ..hostile_plan(seed)
    }
}

/// Crash-recovery meets the fault soak: kill the persisted harness run
/// in the middle of a degraded-mode stretch and resume it. Degraded
/// mode is pure runtime state (frozen classifier FSMs, EWMA holds,
/// per-site fault-stream positions), so the resumed continuation must
/// be byte-identical to the run that was never interrupted — the same
/// contract `tests/crash_recovery.rs` proves for clean runs, here under
/// a plan hot enough that the kill point is *inside* the degradation.
#[test]
fn kill_and_resume_mid_degraded_mode() {
    use copart_serve::{harness_run, Scenario};

    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("copart-soak-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    };
    let scenario = Scenario::new(
        MixKind::HighBoth,
        3,
        copart_core::policies::PolicyKind::CoPart,
        17,
        Some(degraded_plan(17)),
    )
    .unwrap();
    let total: u64 = if fast() { 24 } else { 48 };
    let kill = total / 2;

    let ref_dir = scratch("degraded-ref");
    let ref_trace = ref_dir.join("trace.jsonl");
    let reference = harness_run(&scenario, total, None, &ref_dir, 5, &ref_trace, false, &[])
        .unwrap_or_else(|e| panic!("reference run failed: {e}"));
    assert!(
        reference.metrics.counter("degraded_epochs") > 0,
        "the plan never degraded the run; this test is not testing anything"
    );

    let kr_dir = scratch("degraded-kr");
    let kr_trace = kr_dir.join("trace.jsonl");
    let killed = harness_run(
        &scenario,
        total,
        Some(kill),
        &kr_dir,
        5,
        &kr_trace,
        false,
        &[],
    )
    .unwrap_or_else(|e| panic!("killed run failed: {e}"));
    assert!(killed.killed, "the run should have died at epoch {kill}");
    assert_eq!(killed.epochs_done, kill);
    assert!(
        killed.metrics.counter("degraded_epochs") > 0,
        "the kill point must land after degraded-mode epochs"
    );

    let resumed = harness_run(&scenario, total, None, &kr_dir, 5, &kr_trace, true, &[])
        .unwrap_or_else(|e| panic!("resume failed: {e}"));
    assert_eq!(resumed.epochs_done, total);
    assert_eq!(
        resumed.metrics.counter("recoveries"),
        1,
        "exactly one recovery should have happened"
    );
    assert_eq!(
        resumed.metrics.counter("degraded_epochs"),
        reference.metrics.counter("degraded_epochs"),
        "the resumed run must re-live the same degraded epochs"
    );

    let want = std::fs::read(&ref_trace).unwrap();
    let got = std::fs::read(&kr_trace).unwrap();
    assert!(!want.is_empty(), "the reference run should have traced");
    assert_eq!(
        got, want,
        "kill/resume mid-degraded-mode must reproduce the uninterrupted trace byte-for-byte"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&kr_dir);
}

/// `FaultPlan::none()` must be a true no-op: a run through the decorator
/// with no site armed produces a byte-identical JSONL trace to a run on
/// the bare backend.
#[test]
fn none_plan_is_byte_transparent() {
    let dir = std::env::temp_dir();
    let bare_path = dir.join(format!("copart-soak-bare-{}.jsonl", std::process::id()));
    let none_path = dir.join(format!("copart-soak-none-{}.jsonl", std::process::id()));

    let run_bare = || {
        let (backend, groups) = build(MixKind::HighLlc);
        let mut rt = ConsolidationRuntime::new(backend, groups, runtime_cfg()).unwrap();
        rt.set_recorder(Box::new(
            copart_telemetry::JsonlRecorder::create(&bare_path).unwrap(),
        ));
        rt.profile().unwrap();
        rt.run_periods(40).unwrap();
        rt.set_recorder(Box::new(copart_telemetry::NullRecorder))
            .flush()
            .unwrap();
    };
    let run_none = || {
        let (backend, groups) = build(MixKind::HighLlc);
        let faulty = FaultyBackend::new(backend, FaultPlan::none());
        let mut rt = ConsolidationRuntime::new(faulty, groups, runtime_cfg()).unwrap();
        rt.set_recorder(Box::new(
            copart_telemetry::JsonlRecorder::create(&none_path).unwrap(),
        ));
        rt.profile().unwrap();
        rt.run_periods(40).unwrap();
        rt.set_recorder(Box::new(copart_telemetry::NullRecorder))
            .flush()
            .unwrap();
    };
    run_bare();
    run_none();

    let bare = std::fs::read(&bare_path).unwrap();
    let none = std::fs::read(&none_path).unwrap();
    let _ = std::fs::remove_file(&bare_path);
    let _ = std::fs::remove_file(&none_path);
    assert!(!bare.is_empty(), "the bare run should have traced");
    assert_eq!(
        bare, none,
        "FaultPlan::none() must not perturb the trace by a single byte"
    );
}
