//! Failure injection: the resource manager must survive counter dropouts,
//! application terminations, and abrupt budget revocations without
//! crashing or producing invalid states.

use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::{CoPartParams, Phase};
use copart_faults::{FaultPlan, FaultTrigger, FaultyBackend};
use copart_rdt::{ClosId, MbaLevel, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};
use std::sync::OnceLock;

fn stream() -> &'static StreamReference {
    static S: OnceLock<StreamReference> = OnceLock::new();
    S.get_or_init(|| StreamReference::compute(&MachineConfig::xeon_gold_6130(), 4))
}

fn build(kind: MixKind) -> (SimBackend, Vec<(ClosId, String)>) {
    let mut backend = SimBackend::new(Machine::new(MachineConfig::xeon_gold_6130()));
    let mut groups = Vec::new();
    for spec in WorkloadMix::paper_default(kind).specs() {
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    (backend, groups)
}

fn runtime_cfg() -> RuntimeConfig {
    RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(11),
        stream: stream().clone(),
        resilience: Default::default(),
        planner: Default::default(),
    }
}

#[test]
fn counter_dropouts_do_not_crash_the_manager() {
    let (backend, groups) = build(MixKind::HighBoth);
    // Roughly one dropout per profiling pass, via the shared injector.
    let plan = FaultPlan {
        counter_dropout: FaultTrigger::Every { n: 29 },
        ..FaultPlan::none()
    };
    let flaky = FaultyBackend::new(backend, plan);
    let mut rt = ConsolidationRuntime::new(flaky, groups, runtime_cfg()).unwrap();
    // Dropouts are transient, so the hardened runtime's bounded retry
    // absorbs them even during profiling probes.
    rt.profile().unwrap();
    // Steady-state periods must tolerate dropouts silently.
    let records = rt.run_periods(60).unwrap();
    assert_eq!(records.len(), 60);
    for r in &records {
        assert!(r.state.is_valid(&WaysBudget::full_machine(11)));
        assert!(r.unfairness.is_finite());
    }
    assert!(
        rt.backend().stats().dropouts > 0,
        "the dropout site should have fired"
    );
}

#[test]
fn app_termination_mid_run_redistributes_resources() {
    let (backend, groups) = build(MixKind::HighLlc);
    let victim = groups[1].0;
    let mut rt = ConsolidationRuntime::new(backend, groups, runtime_cfg()).unwrap();
    rt.profile().unwrap();
    rt.run_periods(20).unwrap();

    // The application terminates: remove it from the machine and then
    // from the manager (order as a real deployment would observe it).
    rt.backend_mut().remove_workload(victim).unwrap();
    rt.remove_app(victim).unwrap();
    assert_eq!(
        rt.phase(),
        Phase::Exploring,
        "termination triggers re-adaptation"
    );

    let records = rt.run_periods(30).unwrap();
    let last = records.last().unwrap();
    assert_eq!(last.apps.len(), 3);
    // The remaining applications repartition the full cache.
    let mut union = 0u32;
    for app in rt.apps() {
        let (mask, _) = rt.backend().machine().clos_config(app.group).unwrap();
        union |= mask.bits();
    }
    assert_eq!(union, 0x7ff, "survivors cover the whole LLC");
}

#[test]
fn app_launch_mid_run_triggers_reprofile() {
    // Start with three applications so cores remain for a late launch.
    let mut backend = SimBackend::new(Machine::new(MachineConfig::xeon_gold_6130()));
    let mut groups = Vec::new();
    for spec in WorkloadMix::build(MixKind::ModerateLlc, 3, 12).specs() {
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    let late_spec = copart_workloads::Benchmark::Cg.spec_with_cores(2);
    let late_name = late_spec.name.clone();
    let late = backend.add_workload(late_spec).unwrap();

    let mut rt = ConsolidationRuntime::new(backend, groups, runtime_cfg()).unwrap();
    rt.profile().unwrap();
    rt.run_periods(20).unwrap();
    rt.add_app(late, late_name).unwrap();
    assert_eq!(rt.apps().len(), 4);
    let records = rt.run_periods(20).unwrap();
    assert_eq!(records.last().unwrap().apps.len(), 4);
    assert!(
        rt.apps().iter().all(|a| a.ips_full > 0.0),
        "everyone re-profiled"
    );
}

#[test]
fn abrupt_budget_revocation_keeps_states_valid() {
    let (backend, groups) = build(MixKind::HighBw);
    let mut rt = ConsolidationRuntime::new(backend, groups, runtime_cfg()).unwrap();
    rt.profile().unwrap();
    rt.run_periods(20).unwrap();
    // Revoke most of the cache and throttle hard — the worst case the
    // §6.3 outer manager can inflict.
    let tight = WaysBudget {
        first_way: 7,
        total_ways: 4,
        mba_cap: MbaLevel::MIN,
    };
    rt.set_budget(tight).unwrap();
    let records = rt.run_periods(30).unwrap();
    for r in &records {
        assert!(
            r.state.is_valid(&tight),
            "state {:?} violates budget",
            r.state
        );
    }
    // Programmed masks stay inside the granted way range.
    for app in rt.apps() {
        let (mask, level) = rt.backend().machine().clos_config(app.group).unwrap();
        assert!(
            mask.ways().all(|w| (7..11).contains(&w)),
            "mask {mask} escapes budget"
        );
        assert!(level <= MbaLevel::MIN);
    }
}

#[test]
fn phase_change_wakes_the_idle_manager() {
    // An application that looked insensitive during profiling becomes
    // LLC-hungry mid-run; the idle phase's drift detection (§5.4.3) must
    // notice the fairness shift and re-adapt.
    use copart_sim::trace::AccessPattern;

    let mut backend = SimBackend::new(Machine::new(MachineConfig::xeon_gold_6130()));
    let mut groups = Vec::new();
    // One genuinely LLC-hungry app and one chameleon that starts compute-bound.
    let hungry = copart_workloads::Benchmark::WaterNsquared.spec();
    let chameleon = copart_sim::AppSpec {
        name: "chameleon".into(),
        cores: 4,
        ipc_peak: 1.5,
        apki: 0.02,
        write_fraction: 0.1,
        mlp: 2.0,
        phases: vec![(
            1.0,
            AccessPattern::WorkingSetLoop {
                bytes: 64 * 1024,
                stride: 64,
            },
        )],
    };
    for spec in [hungry, chameleon] {
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    let chameleon_group = groups[1].0;
    let mut rt = ConsolidationRuntime::new(backend, groups, runtime_cfg()).unwrap();
    rt.profile().unwrap();
    rt.run_periods(40).unwrap();
    assert_eq!(rt.phase(), Phase::Idle, "converged before the phase change");
    let ways_before = {
        let idx = rt
            .apps()
            .iter()
            .position(|a| a.group == chameleon_group)
            .unwrap();
        rt.state().allocs[idx].ways
    };

    // The chameleon turns into a cache-hungry phase.
    rt.backend_mut()
        .set_workload_behaviour(
            chameleon_group,
            1.4,
            6.0,
            2.0,
            vec![(
                1.0,
                AccessPattern::WorkingSetLoop {
                    bytes: 12 * 1024 * 1024, // Six ways' worth.
                    stride: 64,
                },
            )],
        )
        .unwrap();

    let mut reexplored = false;
    for _ in 0..60 {
        let r = rt.run_period().unwrap();
        if r.phase == Phase::Exploring {
            reexplored = true;
        }
    }
    assert!(reexplored, "drift detection should reopen exploration");
    let idx = rt
        .apps()
        .iter()
        .position(|a| a.group == chameleon_group)
        .unwrap();
    let ways_after = rt.state().allocs[idx].ways;
    assert!(
        ways_after > ways_before && ways_after >= 5,
        "the new phase should win ways: {ways_before} → {ways_after}"
    );
}
