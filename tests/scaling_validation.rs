//! Validates the set-sampling scaling argument: simulating a cache with
//! `1/k` of the sets while shrinking application footprints by `k`
//! preserves miss ratios and therefore performance. This is the
//! load-bearing approximation of the whole reproduction (DESIGN.md §4),
//! so it gets its own cross-crate test.

use copart_sim::trace::AccessPattern;
use copart_sim::{AppSpec, MachineConfig, MbaLevel};
use copart_workloads::measure;

/// A small machine where the unscaled cache is cheap to simulate.
fn base_cfg() -> MachineConfig {
    MachineConfig {
        n_cores: 4,
        freq_hz: 2.1e9,
        llc_ways: 8,
        llc_way_bytes: 256 * 1024, // 2 MB total, 4096 sets.
        line_bytes: 64,
        mem_bw_bytes_per_sec: 28.0e9,
        per_core_link_bw: 12.0e9,
        mem_latency_ns: 80.0,
        throttle_latency_coeff: 0.12,
        scale: 1,
        window_sample_budget: 65_536,
        seed: 11,
        prefetch_next_line: false,
    }
}

fn spec(name: &str, phases: Vec<(f64, AccessPattern)>) -> AppSpec {
    AppSpec {
        name: name.into(),
        cores: 4,
        ipc_peak: 1.2,
        apki: 25.0,
        write_fraction: 0.2,
        mlp: 4.0,
        phases,
    }
}

fn compare_scales(spec: &AppSpec, ways: u32) -> (f64, f64) {
    let full = base_cfg();
    let mut sampled = base_cfg();
    sampled.scale = 16;
    let ips_full = measure::measure_ips(&full, spec, ways, MbaLevel::MAX);
    let ips_sampled = measure::measure_ips(&sampled, spec, ways, MbaLevel::MAX);
    (ips_full, ips_sampled)
}

#[test]
fn sampled_and_full_caches_agree_for_working_set_loops() {
    let s = spec(
        "loop",
        vec![(
            1.0,
            AccessPattern::WorkingSetLoop {
                bytes: 768 * 1024, // 3 of 8 ways.
                stride: 64,
            },
        )],
    );
    for ways in [2u32, 4, 8] {
        let (full, sampled) = compare_scales(&s, ways);
        let err = (full - sampled).abs() / full;
        assert!(
            err < 0.12,
            "ways={ways}: full {full:.3e} vs sampled {sampled:.3e} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn sampled_and_full_caches_agree_for_zipf() {
    let s = spec(
        "zipf",
        vec![(
            1.0,
            AccessPattern::Zipf {
                bytes: 4 * 1024 * 1024,
                exponent: 1.2,
            },
        )],
    );
    for ways in [2u32, 5, 8] {
        let (full, sampled) = compare_scales(&s, ways);
        let err = (full - sampled).abs() / full;
        assert!(
            err < 0.12,
            "ways={ways}: full {full:.3e} vs sampled {sampled:.3e} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn sampled_and_full_caches_agree_for_stream_mixtures() {
    let s = spec(
        "mix",
        vec![
            (
                0.5,
                AccessPattern::WorkingSetLoop {
                    bytes: 512 * 1024,
                    stride: 64,
                },
            ),
            (
                0.5,
                AccessPattern::Stream {
                    bytes: 64 * 1024 * 1024,
                },
            ),
        ],
    );
    for ways in [3u32, 8] {
        let (full, sampled) = compare_scales(&s, ways);
        let err = (full - sampled).abs() / full;
        assert!(
            err < 0.12,
            "ways={ways}: full {full:.3e} vs sampled {sampled:.3e} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn way_partitioning_effects_survive_sampling() {
    // The *derivative* with respect to ways — the signal CoPart acts on —
    // must match between scales, not just point values.
    let s = spec(
        "knee",
        vec![(
            1.0,
            AccessPattern::WorkingSetLoop {
                bytes: 1024 * 1024, // 4 of 8 ways.
                stride: 64,
            },
        )],
    );
    let (full_small, sampled_small) = compare_scales(&s, 2);
    let (full_big, sampled_big) = compare_scales(&s, 6);
    let full_gain = full_big / full_small;
    let sampled_gain = sampled_big / sampled_small;
    assert!(
        (full_gain - sampled_gain).abs() / full_gain < 0.15,
        "way-count gain differs: full {full_gain:.3} vs sampled {sampled_gain:.3}"
    );
    assert!(
        full_gain > 1.1,
        "the knee must actually exist: {full_gain:.3}"
    );
}
