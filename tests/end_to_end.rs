//! Cross-crate integration: the full CoPart stack (simulator → RDT
//! backend → controller → policies) on real workload mixes.

use copart_core::policies::{self, EvalOptions, PolicyKind};
use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::{CoPartParams, Phase};
use copart_rdt::{ClosId, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};
use std::sync::OnceLock;

fn machine_cfg() -> MachineConfig {
    MachineConfig::xeon_gold_6130()
}

fn stream() -> &'static StreamReference {
    static S: OnceLock<StreamReference> = OnceLock::new();
    S.get_or_init(|| StreamReference::compute(&machine_cfg(), 4))
}

fn quick_opts() -> EvalOptions {
    EvalOptions {
        total_periods: 80,
        measure_periods: 40,
        static_candidates: 8,
        static_probe_periods: 8,
        seed: 7,
    }
}

fn run(kind: MixKind, policy: PolicyKind) -> policies::EvalResult {
    let cfg = machine_cfg();
    let mix = WorkloadMix::paper_default(kind);
    let specs = mix.specs();
    let full = policies::solo_full_ips(&cfg, &specs);
    policies::evaluate_policy(&cfg, &specs, &full, stream(), policy, &quick_opts())
}

#[test]
fn copart_beats_equal_on_every_sensitive_mix() {
    for kind in [
        MixKind::HighLlc,
        MixKind::HighBw,
        MixKind::HighBoth,
        MixKind::ModerateLlc,
        MixKind::ModerateBw,
        MixKind::ModerateBoth,
    ] {
        let eq = run(kind, PolicyKind::Equal);
        let co = run(kind, PolicyKind::CoPart);
        assert!(
            co.unfairness < eq.unfairness,
            "{}: CoPart {:.4} should beat EQ {:.4}",
            kind.label(),
            co.unfairness,
            eq.unfairness
        );
    }
}

#[test]
fn copart_beats_cat_only_on_bw_mix_and_mba_only_on_llc_mix() {
    // The paper's core claim: a single-resource policy leaves fairness on
    // the table exactly where the other resource matters.
    let cat = run(MixKind::HighBw, PolicyKind::CatOnly);
    let co_bw = run(MixKind::HighBw, PolicyKind::CoPart);
    assert!(
        co_bw.unfairness < cat.unfairness,
        "CoPart {:.4} vs CAT-only {:.4} on H-BW",
        co_bw.unfairness,
        cat.unfairness
    );

    let mba = run(MixKind::HighLlc, PolicyKind::MbaOnly);
    let co_llc = run(MixKind::HighLlc, PolicyKind::CoPart);
    assert!(
        co_llc.unfairness < mba.unfairness * 1.5,
        "CoPart {:.4} should be at least comparable to MBA-only {:.4} on H-LLC",
        co_llc.unfairness,
        mba.unfairness
    );
}

#[test]
fn copart_is_comparable_to_offline_static_search() {
    let st = run(MixKind::HighLlc, PolicyKind::Static);
    let co = run(MixKind::HighLlc, PolicyKind::CoPart);
    assert!(
        co.unfairness < st.unfairness * 3.0 + 0.02,
        "CoPart {:.4} should be in ST's league ({:.4})",
        co.unfairness,
        st.unfairness
    );
}

#[test]
fn copart_throughput_does_not_collapse() {
    // §6.4.2: fairness must not come at a large throughput cost.
    let eq = run(MixKind::HighBoth, PolicyKind::Equal);
    let co = run(MixKind::HighBoth, PolicyKind::CoPart);
    assert!(
        co.throughput > eq.throughput * 0.9,
        "CoPart throughput {:.3e} vs EQ {:.3e}",
        co.throughput,
        eq.throughput
    );
}

#[test]
fn controller_converges_to_idle_and_masks_partition_the_budget() {
    let cfg = machine_cfg();
    let mut backend = SimBackend::new(Machine::new(cfg.clone()));
    let mut groups: Vec<(ClosId, String)> = Vec::new();
    for spec in WorkloadMix::paper_default(MixKind::HighBoth).specs() {
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    let rcfg = RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(cfg.llc_ways),
        stream: stream().clone(),
        resilience: Default::default(),
        planner: Default::default(),
    };
    let mut rt = ConsolidationRuntime::new(backend, groups, rcfg).unwrap();
    rt.profile().unwrap();
    let mut idled = false;
    for _ in 0..80 {
        let r = rt.run_period().unwrap();
        if r.phase == Phase::Idle {
            idled = true;
            break;
        }
    }
    assert!(idled, "controller should converge within 80 periods");

    // The masks programmed into the simulated hardware must partition the
    // budget: pairwise disjoint, covering all 11 ways.
    let mut union = 0u32;
    for app in rt.apps() {
        let (mask, _) = rt.backend().machine().clos_config(app.group).unwrap();
        assert_eq!(union & mask.bits(), 0, "masks must not overlap");
        union |= mask.bits();
    }
    assert_eq!(union, (1 << cfg.llc_ways) - 1, "masks must cover the LLC");
}

#[test]
fn unfairness_timeline_has_one_entry_per_period() {
    let r = run(MixKind::ModerateBoth, PolicyKind::CoPart);
    assert_eq!(r.timeline.len(), quick_opts().total_periods as usize);
    assert!(r.timeline.iter().all(|u| u.is_finite() && *u >= 0.0));
}

#[test]
fn full_runs_are_reproducible() {
    // Everything in the stack is seeded: two identical consolidations
    // must produce bit-identical timelines and final states.
    let run_once = || {
        let cfg = machine_cfg();
        let mut backend = SimBackend::new(Machine::new(cfg.clone()));
        let mut groups: Vec<(ClosId, String)> = Vec::new();
        for spec in WorkloadMix::paper_default(MixKind::HighBoth).specs() {
            let name = spec.name.clone();
            groups.push((backend.add_workload(spec).unwrap(), name));
        }
        let rcfg = RuntimeConfig {
            params: CoPartParams::default(),
            manage_llc: true,
            manage_mba: true,
            budget: WaysBudget::full_machine(cfg.llc_ways),
            stream: stream().clone(),
            resilience: Default::default(),
            planner: Default::default(),
        };
        let mut rt = ConsolidationRuntime::new(backend, groups, rcfg).unwrap();
        rt.profile().unwrap();
        rt.run_periods(40).unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.state, rb.state, "states diverged at t={}", ra.time_ns);
        assert_eq!(ra.phase, rb.phase);
        assert!((ra.unfairness - rb.unfairness).abs() < 1e-12);
    }
}
