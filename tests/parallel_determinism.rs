//! The parallel sweep engine's determinism contract, end to end: the
//! ST offline search and a Figure 12-style traced sweep must produce
//! byte-identical results at `--jobs 1` and `--jobs 8`.
//!
//! Both tests drive the *global* job knob (`copart_parallel::set_jobs`),
//! so they serialize on a process-wide lock — the cargo test harness
//! runs tests in this binary concurrently otherwise.

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

use copart_core::policies::{
    self, evaluate_policy_traced, static_search, EvalOptions, EvalResult, PolicyKind,
};
use copart_core::runtime::ConsolidationRuntime;
use copart_core::state::WaysBudget;
use copart_core::CoPartParams;
use copart_faults::{FaultPlan, FaultTrigger, FaultyBackend};
use copart_rdt::{ClosId, RdtBackend, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_telemetry::JsonlRecorder;
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};

static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the global worker count pinned to `jobs`, restoring
/// the default afterwards even if `f` panics midway.
fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            copart_parallel::set_jobs(None);
        }
    }
    let _reset = Reset;
    copart_parallel::set_jobs(Some(jobs));
    f()
}

/// Short search options — the contract is exact equality, so the probe
/// lengths only need to be long enough to exercise the parallel paths.
fn short_opts() -> EvalOptions {
    EvalOptions {
        total_periods: 40,
        measure_periods: 20,
        static_candidates: 8,
        static_probe_periods: 6,
        ..EvalOptions::default()
    }
}

#[test]
fn static_search_identical_at_1_and_8_jobs() {
    let machine = MachineConfig::xeon_gold_6130();
    let specs = WorkloadMix::paper_default(MixKind::HighBoth).specs();
    let full = policies::solo_full_ips(&machine, &specs);
    let budget = WaysBudget::full_machine(machine.llc_ways);
    let opts = short_opts();

    let serial = with_jobs(1, || static_search(&machine, &specs, &full, &budget, &opts));
    let parallel = with_jobs(8, || static_search(&machine, &specs, &full, &budget, &opts));
    assert_eq!(
        serial, parallel,
        "static_search must choose the same state at --jobs 1 and --jobs 8"
    );
}

/// One fig12-style cell: a traced CoPart consolidation on `kind`,
/// writing its JSONL decision trace to `path`.
fn traced_cell(kind: MixKind, path: &std::path::Path, opts: &EvalOptions) -> EvalResult {
    let machine = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::paper_default(kind);
    let specs = mix.specs();
    let full = policies::solo_full_ips(&machine, &specs);
    let stream = StreamReference::compute(&machine, 4);
    let recorder = Box::new(JsonlRecorder::create(path).expect("create trace file"));
    let (result, mut recorder, _snapshot) = evaluate_policy_traced(
        &machine,
        &specs,
        &full,
        &stream,
        PolicyKind::CoPart,
        opts,
        recorder,
    );
    recorder.flush().expect("flush trace");
    result
}

#[test]
fn fig12_sweep_traces_identical_at_1_and_8_jobs() {
    let kinds = [MixKind::HighLlc, MixKind::HighBw, MixKind::HighBoth];
    let opts = short_opts();
    let dir = std::env::temp_dir().join(format!("copart-par-det-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");

    let run = |jobs: usize| -> (Vec<EvalResult>, Vec<PathBuf>) {
        let paths: Vec<PathBuf> = kinds
            .iter()
            .map(|k| dir.join(format!("fig12_{}_j{jobs}.jsonl", k.label())))
            .collect();
        let results = with_jobs(jobs, || {
            copart_parallel::par_map(&kinds, |&kind| {
                let i = kinds.iter().position(|&k| k == kind).unwrap();
                traced_cell(kind, &paths[i], &opts)
            })
        });
        (results, paths)
    };

    let (serial_results, serial_paths) = run(1);
    let (parallel_results, parallel_paths) = run(8);

    assert_eq!(
        serial_results, parallel_results,
        "fig12 sweep results must match between --jobs 1 and --jobs 8"
    );
    for (a, b) in serial_paths.iter().zip(&parallel_paths) {
        let bytes_a = fs::read(a).expect("read serial trace");
        let bytes_b = fs::read(b).expect("read parallel trace");
        assert!(!bytes_a.is_empty(), "trace {} is empty", a.display());
        assert_eq!(
            bytes_a,
            bytes_b,
            "JSONL traces diverge between job counts: {} vs {}",
            a.display(),
            b.display()
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The planner-scale harness at 1000 applications: the decision digest
/// (an FNV-1a fold over every epoch's decision and resulting
/// allocation) must be identical whether the shards run serially or on
/// eight workers, and identical run-to-run. Timing fields are excluded
/// — only the decision-relevant outputs are compared.
#[test]
fn planner_scale_digests_identical_at_1_and_8_jobs() {
    use copart_core::scale::{run_planner_scale, ScaleConfig, ScaleReport};

    // Decision-relevant projection of a report (drops wall-clock fields).
    fn decisions(r: &ScaleReport) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            r.digest,
            r.transfers,
            r.theta_retries,
            r.converges,
            r.matching_rounds,
            r.role_cache_hits,
            r.role_cache_misses,
        )
    }

    let cfgs: Vec<ScaleConfig> = (0..4u64)
        .map(|i| ScaleConfig::new(1000, 10, 0xA11C0 + i))
        .collect();
    let serial: Vec<_> = with_jobs(1, || copart_parallel::par_map(&cfgs, run_planner_scale))
        .iter()
        .map(decisions)
        .collect();
    let parallel: Vec<_> = with_jobs(8, || copart_parallel::par_map(&cfgs, run_planner_scale))
        .iter()
        .map(decisions)
        .collect();
    assert_eq!(
        serial, parallel,
        "1000-app planner-scale decisions must match between --jobs 1 and --jobs 8"
    );
    // The digest is not degenerate: distinct seeds take distinct paths.
    for w in serial.windows(2) {
        assert_ne!(w[0].0, w[1].0, "digests must differ across seeds");
    }
}

/// The fault plan the cross-jobs contract is checked under: every
/// transient site armed. (No vanish — group disappearance aborts whole
/// profiling passes, which this test is not about; `fault_soak`
/// exercises that path.)
fn sweep_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xC0FA,
        counter_dropout: FaultTrigger::Prob { p: 0.05 },
        write_cbm: FaultTrigger::Prob { p: 0.1 },
        write_mba: FaultTrigger::Prob { p: 0.1 },
        vanish: FaultTrigger::Never,
        clock_stall: FaultTrigger::Prob { p: 0.02 },
    }
}

/// Like [`traced_cell`], but with the simulator wrapped in the
/// `copart-faults` injector — the controller sees dropouts, busy writes
/// and clock stalls while ground truth reads the inner machine.
fn faulty_traced_cell(kind: MixKind, path: &std::path::Path, opts: &EvalOptions) -> EvalResult {
    let machine = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::paper_default(kind);
    let specs = mix.specs();
    let full = policies::solo_full_ips(&machine, &specs);
    let stream = StreamReference::compute(&machine, 4);
    let params = CoPartParams {
        seed: opts.seed,
        ..CoPartParams::default()
    };

    let mut backend = SimBackend::new(Machine::new(MachineConfig::xeon_gold_6130()));
    let named: Vec<(ClosId, String)> = specs
        .iter()
        .map(|s| {
            let g = backend.add_workload(s.clone()).expect("mix fits");
            (g, s.name.clone())
        })
        .collect();
    let groups: Vec<ClosId> = named.iter().map(|(g, _)| *g).collect();
    let cfg = policies::dynamic_runtime_config(
        &machine,
        specs.len(),
        &stream,
        PolicyKind::CoPart,
        &params,
    );
    let faulty = FaultyBackend::new(backend, sweep_plan());
    let mut runtime =
        ConsolidationRuntime::new(faulty, named, cfg).expect("transient faults are retried");
    runtime.set_recorder(Box::new(
        JsonlRecorder::create(path).expect("create trace file"),
    ));
    runtime.profile().expect("transient faults are retried");
    let (result, mut runtime) = policies::evaluate_runtime_traced(
        runtime,
        &groups,
        &full,
        PolicyKind::CoPart,
        opts,
        |b, g| b.inner_mut().read_counters(g).expect("group is live"),
    )
    .expect("periods survive transient faults");
    assert!(
        runtime.backend().stats().total() > 0,
        "the sweep plan should actually inject"
    );
    runtime
        .set_recorder(Box::new(copart_telemetry::NullRecorder))
        .flush()
        .expect("flush trace");
    result
}

#[test]
fn faulty_sweep_traces_identical_at_1_and_8_jobs() {
    let kinds = [MixKind::HighLlc, MixKind::HighBoth];
    let opts = short_opts();
    let dir = std::env::temp_dir().join(format!("copart-fault-det-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");

    let run = |jobs: usize| -> (Vec<EvalResult>, Vec<PathBuf>) {
        let paths: Vec<PathBuf> = kinds
            .iter()
            .map(|k| dir.join(format!("faulty_{}_j{jobs}.jsonl", k.label())))
            .collect();
        let results = with_jobs(jobs, || {
            copart_parallel::par_map(&kinds, |&kind| {
                let i = kinds.iter().position(|&k| k == kind).unwrap();
                faulty_traced_cell(kind, &paths[i], &opts)
            })
        });
        (results, paths)
    };

    let (serial_results, serial_paths) = run(1);
    let (parallel_results, parallel_paths) = run(8);

    // A fully stalled epoch measures no work, so its timeline entry is
    // NaN — compare the Debug rendering, where NaN equals NaN, instead
    // of float equality.
    assert_eq!(
        format!("{serial_results:?}"),
        format!("{parallel_results:?}"),
        "faulty sweep results must match between --jobs 1 and --jobs 8"
    );
    for (a, b) in serial_paths.iter().zip(&parallel_paths) {
        let bytes_a = fs::read(a).expect("read serial trace");
        let bytes_b = fs::read(b).expect("read parallel trace");
        assert!(!bytes_a.is_empty(), "trace {} is empty", a.display());
        assert!(
            String::from_utf8_lossy(&bytes_a).contains("\"fault\""),
            "trace {} never recorded a fault sample",
            a.display()
        );
        assert_eq!(
            bytes_a,
            bytes_b,
            "fault injection diverges between job counts: {} vs {}",
            a.display(),
            b.display()
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
