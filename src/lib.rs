//! Umbrella crate for the CoPart reproduction workspace.
//!
//! The real API surface lives in the member crates; this crate re-exports
//! them under one roof so the workspace-level examples and integration
//! tests have a single dependency root:
//!
//! * [`sim`] — the simulated commodity server (way-partitioned LLC,
//!   MBA-throttled memory bus, PMC emulation),
//! * [`rdt`] — the RDT control/observation abstraction (simulator and
//!   resctrl-filesystem backends),
//! * [`telemetry`] — counter snapshots and derived rates,
//! * [`workloads`] — calibrated models of the paper's benchmarks,
//! * [`matching`] — Hospitals/Residents stable matching, and
//! * [`core`] — the CoPart controller and the baseline policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use copart_core as core;
pub use copart_matching as matching;
pub use copart_rdt as rdt;
pub use copart_sim as sim;
pub use copart_telemetry as telemetry;
pub use copart_workloads as workloads;
