//! Weighted fairness: a priority extension beyond the paper.
//!
//! CoPart equalizes plain slowdowns; this reproduction also supports
//! per-application fairness weights — the controller equalizes
//! `slowdown × weight`, so a weight-2 application is entitled to run
//! twice as close to its solo speed as a weight-1 one. Two identical
//! cache-hungry applications compete here; watch the weighted one win.
//!
//! ```sh
//! cargo run --release --example weighted_priority
//! ```

use copart_core::metrics;
use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::CoPartParams;
use copart_rdt::{ClosId, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::Benchmark;

fn main() {
    let machine_cfg = MachineConfig::xeon_gold_6130();
    println!("measuring STREAM reference...");
    let stream = StreamReference::compute(&machine_cfg, 4);
    let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));

    // Two *identical* LLC-hungry instances plus two insensitive donors.
    let mut groups: Vec<(ClosId, String)> = Vec::new();
    for (i, bench) in [
        Benchmark::WaterNsquared,
        Benchmark::WaterNsquared,
        Benchmark::Swaptions,
        Benchmark::Ep,
    ]
    .iter()
    .enumerate()
    {
        let mut spec = bench.spec();
        spec.name = format!("{}#{i}", spec.name);
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    let favored = groups[0].0;

    let mut runtime = ConsolidationRuntime::new(
        backend,
        groups,
        RuntimeConfig {
            params: CoPartParams::default(),
            manage_llc: true,
            manage_mba: true,
            budget: WaysBudget::full_machine(machine_cfg.llc_ways),
            stream,
            resilience: Default::default(),
            planner: Default::default(),
        },
    )
    .unwrap();

    // The first instance is three times as important.
    runtime.set_weight(favored, 3.0).unwrap();
    runtime.profile().unwrap();
    for _ in 0..60 {
        runtime.run_period().unwrap();
    }

    println!("\nconverged allocation (weight of app #0 = 3.0):");
    let state = runtime.state().clone();
    for (app, alloc) in runtime.apps().iter().zip(&state.allocs) {
        println!(
            "  {:<20} weight {:<4} {} ways, MBA {:>3}%, slowdown {:.3}",
            app.name,
            app.weight,
            alloc.ways,
            alloc.mba.percent(),
            app.slowdown()
        );
    }
    let slowdowns: Vec<f64> = runtime.apps().iter().map(|a| a.slowdown()).collect();
    let weights: Vec<f64> = runtime.apps().iter().map(|a| a.weight).collect();
    println!(
        "\nplain unfairness:    {:.4} (intentionally uneven)",
        metrics::unfairness(&slowdowns)
    );
    println!(
        "weighted unfairness: {:.4} (the controller's objective; weight 3 is\n\
         infeasible to satisfy fully — slowdowns cannot drop below ~1 — so the\n\
         controller pushes the favored app as far toward its entitlement as the\n\
         machine allows)",
        metrics::weighted_unfairness(&slowdowns, &weights)
    );
}
