//! Policy comparison on one workload mix: run EQ, ST, CAT-only, MBA-only,
//! and CoPart on the highly LLC- and bandwidth-sensitive mix and print
//! ground-truth fairness and throughput for each — a miniature Figure 12
//! cell, built from the public API.
//!
//! ```sh
//! cargo run --release --example consolidation [mix]
//! ```
//!
//! `mix` is one of `h-llc`, `h-bw`, `h-both` (default), `m-llc`, `m-bw`,
//! `m-both`, `is`.

use copart_core::policies::{self, EvalOptions, PolicyKind};
use copart_sim::MachineConfig;
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "h-both".into());
    let kind = match arg.as_str() {
        "h-llc" => MixKind::HighLlc,
        "h-bw" => MixKind::HighBw,
        "h-both" => MixKind::HighBoth,
        "m-llc" => MixKind::ModerateLlc,
        "m-bw" => MixKind::ModerateBw,
        "m-both" => MixKind::ModerateBoth,
        "is" => MixKind::Insensitive,
        other => {
            eprintln!("unknown mix {other:?}; use h-llc|h-bw|h-both|m-llc|m-bw|m-both|is");
            std::process::exit(1);
        }
    };

    let machine_cfg = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::paper_default(kind);
    let specs = mix.specs();
    println!(
        "mix {} — applications: {:?}\n",
        kind.label(),
        specs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );

    println!("measuring solo full-resource references...");
    let full = policies::solo_full_ips(&machine_cfg, &specs);
    let stream = StreamReference::compute(&machine_cfg, 4);
    let opts = EvalOptions::default();

    println!(
        "\n{:<10} {:>12} {:>16}  per-app slowdowns",
        "policy", "unfairness", "throughput(IPS)"
    );
    for &policy in PolicyKind::evaluated() {
        let r = policies::evaluate_policy(&machine_cfg, &specs, &full, &stream, policy, &opts);
        let slowdowns: Vec<String> = r.slowdowns.iter().map(|s| format!("{s:.2}")).collect();
        println!(
            "{:<10} {:>12.4} {:>16.3e}  [{}]",
            policy.label(),
            r.unfairness,
            r.throughput,
            slowdowns.join(", ")
        );
    }
}
