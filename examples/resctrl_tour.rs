//! Tour of the resctrl-filesystem backend: build a mock `/sys/fs/resctrl`
//! tree, mount it, create per-application groups, and program a CoPart
//! system state onto it — exactly the control path a real RDT deployment
//! would exercise (point `root` at `/sys/fs/resctrl` on an RDT machine).
//!
//! ```sh
//! cargo run --release --example resctrl_tour
//! ```

use copart_core::state::{AllocationState, SystemState, WaysBudget};
use copart_rdt::{FileCounterSource, MbaLevel, RdtBackend, RdtCapabilities, ResctrlBackend};

fn main() {
    let root = std::env::temp_dir().join(format!("copart-resctrl-tour-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // A mock tree with the paper testbed's capabilities. On a real
    // RDT-capable machine you would skip this step and mount
    // /sys/fs/resctrl directly.
    let caps = RdtCapabilities {
        llc_ways: 11,
        num_clos: 16,
        mba_min_percent: 10,
        mba_step_percent: 10,
    };
    ResctrlBackend::<FileCounterSource>::create_mock_tree(&root, caps).expect("mock tree builds");
    println!("mock resctrl tree at {}", root.display());

    let mut backend = ResctrlBackend::mount(&root, FileCounterSource).expect("tree has info files");
    println!("capabilities: {:?}", backend.capabilities());

    // One group per consolidated application, as CoPart deploys.
    let mut groups = Vec::new();
    for name in ["copart-wn", "copart-cg", "copart-sw"] {
        let g = backend.create_group(name).expect("group creates");
        println!("created {name} → {g}");
        groups.push(g);
    }
    backend
        .assign_tasks(groups[0], &[4242, 4243])
        .expect("tasks file writable");

    // Program a CoPart-style state: the LLC-hungry app gets 5 ways, the
    // streamer gets throttled, the insensitive job gets the leftovers.
    let state = SystemState {
        allocs: vec![
            AllocationState {
                ways: 5,
                mba: MbaLevel::new(100),
            },
            AllocationState {
                ways: 4,
                mba: MbaLevel::new(30),
            },
            AllocationState {
                ways: 2,
                mba: MbaLevel::new(100),
            },
        ],
    };
    let budget = WaysBudget::full_machine(caps.llc_ways);
    state
        .apply(&mut backend, &groups, &budget)
        .expect("state applies");

    println!("\nresulting schemata files:");
    for (g, name) in groups.iter().zip(["copart-wn", "copart-cg", "copart-sw"]) {
        let schemata =
            std::fs::read_to_string(root.join(name).join("schemata")).expect("schemata exists");
        let (mask, level) = backend.clos_config(*g).expect("parses back");
        print!("  {name}: {schemata}");
        println!("    parsed back: mask {mask}, MBA {level}");
    }

    let _ = std::fs::remove_dir_all(&root);
    println!("\n(on real hardware this would have programmed CAT/MBA via the kernel)");
}
