//! Replays a JSONL decision trace and prints a convergence report: phase
//! spans, decision counts, the unfairness trajectory, and the final
//! applied partition — the offline-analysis loop the observability layer
//! exists for.
//!
//! ```sh
//! # Inspect a trace produced by the CLI or the experiment harness:
//! cargo run --release --example trace_inspection path/to/trace.jsonl
//!
//! # Or let the example record one itself (30 s CoPart run on H-LLC):
//! cargo run --release --example trace_inspection
//! ```

use copart_core::policies::{self, EvalOptions, PolicyKind};
use copart_sim::MachineConfig;
use copart_telemetry::{read_trace_file, JsonlRecorder, TraceDecision, TraceEvent, TracePhase};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => record_demo_trace(),
    };
    let events = match read_trace_file(&path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("cannot read trace {path}: {e}");
            std::process::exit(1);
        }
    };
    if events.is_empty() {
        eprintln!("trace {path} holds no events");
        std::process::exit(1);
    }
    report(&path, &events);
}

/// Records a fresh demonstration trace and returns its path.
fn record_demo_trace() -> String {
    let path = std::env::temp_dir().join("copart-trace-inspection.jsonl");
    let path = path.to_string_lossy().into_owned();
    eprintln!("no trace given; recording a CoPart run on H-LLC to {path}");

    let machine_cfg = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::paper_default(MixKind::HighLlc);
    let specs = mix.specs();
    eprintln!("measuring solo full-resource references...");
    let full = policies::solo_full_ips(&machine_cfg, &specs);
    let stream = StreamReference::compute(&machine_cfg, 4);
    let recorder = Box::new(JsonlRecorder::create(&path).expect("temp file is writable"));
    let (_result, mut recorder, _metrics) = policies::evaluate_policy_traced(
        &machine_cfg,
        &specs,
        &full,
        &stream,
        PolicyKind::CoPart,
        &EvalOptions::default(),
        recorder,
    );
    recorder.flush().expect("trace flushes");
    path
}

fn report(path: &str, events: &[TraceEvent]) {
    println!("trace {path}: {} events", events.len());

    // Phase spans in first-occurrence order.
    let mut spans: Vec<(TracePhase, u64, u64)> = Vec::new();
    for e in events {
        match spans.last_mut() {
            Some((phase, _, last)) if *phase == e.phase => *last = e.epoch,
            _ => spans.push((e.phase, e.epoch, e.epoch)),
        }
    }
    println!("\nphase spans (Figure 10 order):");
    for (phase, first, last) in &spans {
        println!(
            "  {:<10} epochs {first:>4}..={last:<4} ({} epochs)",
            phase.as_str(),
            last - first + 1
        );
    }

    // Decision census.
    let count = |d: TraceDecision| events.iter().filter(|e| e.decision == d).count();
    println!("\ndecisions:");
    for d in [
        TraceDecision::Profiled,
        TraceDecision::Transfer,
        TraceDecision::ThetaRetry,
        TraceDecision::Converged,
        TraceDecision::Monitor,
        TraceDecision::ReExplore,
    ] {
        let n = count(d);
        if n > 0 {
            println!("  {:<12} {n}", d.as_str());
        }
    }
    let rounds: u64 = events.iter().map(|e| u64::from(e.matching_rounds)).sum();
    println!("  matching rounds (total): {rounds}");

    // Unfairness trajectory over the control epochs (profiling epochs
    // report 0 by construction, so skip them).
    let control: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.phase != TracePhase::Profiling)
        .collect();
    if let (Some(first), Some(last)) = (control.first(), control.last()) {
        let min = control
            .iter()
            .map(|e| e.unfairness)
            .fold(f64::INFINITY, f64::min);
        println!("\nunfairness (Eq 2, sigma/mu of slowdowns):");
        println!("  first control epoch: {:.4}", first.unfairness);
        println!("  minimum:             {min:.4}");
        println!("  final:               {:.4}", last.unfairness);
        if let Some(conv) = control
            .iter()
            .find(|e| e.decision == TraceDecision::Converged)
        {
            println!("  first convergence at epoch {}", conv.epoch);
        } else {
            println!("  (never converged within this trace)");
        }

        println!("\nfinal applied partition:");
        for (app, alloc) in last.apps.iter().zip(&last.applied) {
            println!(
                "  {:<16} {:>2} ways, MBA {:>3}%  (slowdown {:.3}, LLC {}, MBA {})",
                app.name,
                alloc.ways,
                alloc.mba_percent,
                app.slowdown,
                app.llc_state.as_str(),
                app.mba_state.as_str()
            );
        }
    }
}
