//! Quickstart: consolidate four benchmarks on the simulated testbed and
//! let CoPart partition the LLC and memory bandwidth among them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::{CoPartParams, Phase};
use copart_rdt::{ClosId, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::Benchmark;

fn main() {
    // 1. Build the simulated server (the paper's Xeon Gold 6130: 16
    //    cores, 22 MB 11-way LLC, ~28 GB/s memory bandwidth).
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));

    // 2. Measure the STREAM reference once per machine — the controller
    //    normalizes application traffic against it (§5.3 of the paper).
    println!("measuring STREAM reference...");
    let stream = StreamReference::compute(&machine_cfg, 4);

    // 3. Admit a workload mix: two LLC-sensitive benchmarks, one
    //    bandwidth-hog, one insensitive job. Each gets its own CLOS.
    let mut groups: Vec<(ClosId, String)> = Vec::new();
    for bench in [
        Benchmark::WaterNsquared,
        Benchmark::Raytrace,
        Benchmark::Cg,
        Benchmark::Swaptions,
    ] {
        let spec = bench.spec(); // Four dedicated cores each.
        let name = spec.name.clone();
        let group = backend.add_workload(spec).expect("machine has 16 cores");
        println!("admitted {name} into {group}");
        groups.push((group, name));
    }

    // 4. Start the CoPart resource manager with the paper's parameters.
    let cfg = RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(machine_cfg.llc_ways),
        stream,
        resilience: Default::default(),
        planner: Default::default(),
    };
    let mut runtime =
        ConsolidationRuntime::new(backend, groups, cfg).expect("initial state applies");

    // 5. Profile each application (establishes IPS_full and the initial
    //    classifier states), then explore until the manager goes idle.
    runtime.profile().expect("profiling on the simulator");
    println!("\nprofiles:");
    for app in runtime.apps() {
        let (llc, mba) = app.classifier_states();
        println!(
            "  {:<16} IPS_full {:>9.3e}  LLC {:<8}  MBA {:<8}",
            app.name,
            app.ips_full,
            llc.to_string(),
            mba.to_string()
        );
    }

    println!("\nadaptation:");
    for _ in 0..50 {
        let record = runtime.run_period().expect("simulated period");
        if record.phase == Phase::Idle {
            break;
        }
    }

    // 6. Report the converged allocation.
    let state = runtime.state().clone();
    println!(
        "\nconverged ({}): ",
        if runtime.phase() == Phase::Idle {
            "idle"
        } else {
            "still exploring"
        }
    );
    for (app, alloc) in runtime.apps().iter().zip(&state.allocs) {
        println!(
            "  {:<16} {} LLC ways, MBA {:>3}%, slowdown {:.2}",
            app.name,
            alloc.ways,
            alloc.mba.percent(),
            app.slowdown()
        );
    }
    let slowdowns: Vec<f64> = runtime.apps().iter().map(|a| a.slowdown()).collect();
    println!(
        "\nunfairness (σ/μ of slowdowns): {:.4}",
        copart_core::metrics::unfairness(&slowdowns)
    );
}
