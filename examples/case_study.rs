//! The §6.3 case study, compressed: memcached (latency-critical) collocated
//! with two batch jobs, an outer server manager resizing the LC
//! reservation on a load spike, and CoPart re-adapting the batch
//! partition.
//!
//! ```sh
//! cargo run --release --example case_study
//! ```

use std::time::Duration;

use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::CoPartParams;
use copart_rdt::{CbmMask, ClosId, MbaLevel, RdtBackend, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_workloads::casestudy::{
    kmeans_spec, memcached_spec, wordcount_spec, LcModel, LcReservation,
};
use copart_workloads::stream::StreamReference;

const PERIOD: Duration = Duration::from_millis(200);

fn main() {
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let stream = StreamReference::compute(&machine_cfg, 4);
    let lc_model = LcModel::default();

    let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
    let lc = backend.add_workload(memcached_spec(8)).expect("LC fits");
    let wc = backend.add_workload(wordcount_spec(4)).expect("batch fits");
    let km = backend.add_workload(kmeans_spec(4)).expect("batch fits");

    // Low load to start: the outer manager reserves a small LC slice.
    let mut load = 75_000.0;
    let mut reservation = LcReservation::for_load(load);
    apply_lc(&mut backend, lc, &reservation, machine_cfg.llc_ways);

    let cfg = RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: batch_budget(&reservation),
        stream,
        resilience: Default::default(),
        planner: Default::default(),
    };
    let mut runtime = ConsolidationRuntime::new(
        backend,
        vec![(wc, "wordcount".into()), (km, "kmeans".into())],
        cfg,
    )
    .expect("state applies");
    runtime.profile().expect("profiling");

    let report = |runtime: &mut ConsolidationRuntime<SimBackend>,
                  load: f64,
                  res: &LcReservation,
                  label: &str| {
        let before = runtime.backend_mut().read_counters(lc).expect("LC live");
        let record = (0..25)
            .map(|_| runtime.run_period().expect("period"))
            .next_back()
            .expect("ran periods");
        let after = runtime.backend_mut().read_counters(lc).expect("LC live");
        let lc_ips = after
            .delta_since(&before)
            .and_then(|d| d.rates())
            .map(|r| r.ips * f64::from(res.lc_cores) / 8.0)
            .unwrap_or(0.0);
        println!("\n== {label} (load {:.0} krps) ==", load / 1000.0);
        println!(
            "LC p95 ≈ {:.3} ms ({})",
            lc_model.p95_latency_ms(lc_ips, load),
            if lc_model.slo_met(lc_ips, load) {
                "SLO met"
            } else {
                "SLO VIOLATED"
            }
        );
        for (app, alloc) in runtime.apps().iter().zip(&record.state.allocs) {
            println!(
                "  {:<10} {} ways, MBA {:>3}%, slowdown {:.2}",
                app.name,
                alloc.ways,
                alloc.mba.percent(),
                app.slowdown()
            );
        }
    };

    report(&mut runtime, load, &reservation, "steady state at low load");

    // Load spike: the outer manager grows the LC reservation; CoPart
    // re-adapts within the shrunken batch budget.
    load = 150_000.0;
    reservation = LcReservation::for_load(load);
    apply_lc(
        runtime.backend_mut(),
        lc,
        &reservation,
        machine_cfg.llc_ways,
    );
    runtime
        .set_budget(batch_budget(&reservation))
        .expect("budget applies");
    report(&mut runtime, load, &reservation, "after the load spike");

    // Load returns to normal.
    load = 75_000.0;
    reservation = LcReservation::for_load(load);
    apply_lc(
        runtime.backend_mut(),
        lc,
        &reservation,
        machine_cfg.llc_ways,
    );
    runtime
        .set_budget(batch_budget(&reservation))
        .expect("budget applies");
    report(&mut runtime, load, &reservation, "after the load returns");

    let _ = PERIOD;
}

fn batch_budget(res: &LcReservation) -> WaysBudget {
    WaysBudget {
        first_way: res.lc_ways,
        total_ways: res.batch_ways,
        mba_cap: MbaLevel::new(res.batch_mba_cap),
    }
}

fn apply_lc(backend: &mut SimBackend, lc: ClosId, res: &LcReservation, machine_ways: u32) {
    let mask = CbmMask::contiguous(0, res.lc_ways, machine_ways).expect("fits");
    backend.set_cbm(lc, mask).expect("LC group exists");
    backend.set_mba(lc, MbaLevel::MAX).expect("LC group exists");
}
