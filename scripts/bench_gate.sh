#!/usr/bin/env bash
# Performance-regression gate for the CoPart reproduction.
#
# Runs the artifact-emitting benchmarks (explore_overhead, matching)
# with BENCH_JSON_DIR set, then gates each fresh BENCH_*.json against
# the checked-in baseline in crates/bench/baselines/ using
# `copart bench-report`:
#
#   - *_ns latencies may regress up to the tolerance ratio
#     (COPART_BENCH_TOLERANCE, default 3.0 — shared CI runners are
#     noisy; an order-of-magnitude blowup still fails);
#   - fields containing "allocs" are exact counts (baseline + 0.5);
#   - *_per_sec throughputs must stay above baseline / tolerance;
#   - string fields (schema, decision digests) must match exactly.
#
# Bless workflow — after an intentional perf or decision change:
#
#   UPDATE_BENCH=1 scripts/bench_gate.sh
#
# copies the fresh artifacts over the baselines; commit the diff and
# say why in the commit message. CI re-runs this script and uploads
# the fresh artifacts whether or not the gate passes.
#
# BENCH_JSON_DIR overrides where fresh artifacts land (default
# target/bench). The script is std-toolchain only.

set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo bench runs the binaries with the *package*
# directory as cwd, so a relative BENCH_JSON_DIR would silently land
# under crates/bench/ and the gate would compare stale artifacts.
out_dir="${BENCH_JSON_DIR:-target/bench}"
case "$out_dir" in
/*) ;;
*) out_dir="$PWD/$out_dir" ;;
esac
baseline_dir="crates/bench/baselines"
benches=(explore_overhead matching)

echo "==> running artifact benches into $out_dir"
mkdir -p "$out_dir"
for b in "${benches[@]}"; do
    BENCH_JSON_DIR="$out_dir" cargo bench -q -p copart-bench --bench "$b" >/dev/null
done

# The head-to-head grid artifact: BENCH_compare.json's grid_digest is a
# string field, so the gate below holds the whole engine × scenario
# fairness grid byte-exact. The shape is fixed (never REPRO_FAST-scaled)
# and must stay in lockstep with scripts/compare.sh.
echo "==> running the compare grid into $out_dir"
BENCH_JSON_DIR="$out_dir" cargo run -q --release -p copart-cli -- \
    compare --seconds 6 --seed 42 --jobs 8 >/dev/null

shopt -s nullglob
artifacts=("$out_dir"/BENCH_*.json)
if [ "${#artifacts[@]}" -eq 0 ]; then
    echo "bench_gate: no BENCH_*.json produced in $out_dir" >&2
    exit 1
fi

# Absolute budget gate, independent of the relative baseline: CoPart's
# control epoch leaves roughly 1 ms for planning (DESIGN.md §13), and
# the fleet consolidates thousands of tenants, so the 4000-app planner
# p99 must stay inside that budget in absolute terms — a slow baseline
# must not grandfather a slow planner. COPART_P99_BUDGET_NS overrides
# the ceiling (nanoseconds).
budget_ns="${COPART_P99_BUDGET_NS:-1000000}"
epoch_artifact="$out_dir/BENCH_epoch.json"
if [ -f "$epoch_artifact" ]; then
    p99=$(sed -n 's/.*"scale_4000_plan_ns_p99":[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$epoch_artifact")
    if [ -z "$p99" ]; then
        echo "bench_gate: scale_4000_plan_ns_p99 missing from $epoch_artifact" >&2
        exit 1
    fi
    if [ "$p99" -gt "$budget_ns" ]; then
        echo "bench_gate: FAILED — 4000-app plan p99 ${p99} ns exceeds the epoch budget (${budget_ns} ns)" >&2
        exit 1
    fi
    echo "bench_gate: 4000-app plan p99 ${p99} ns within the ${budget_ns} ns epoch budget"
else
    echo "bench_gate: $epoch_artifact not produced — budget gate has nothing to check" >&2
    exit 1
fi

if [ "${UPDATE_BENCH:-0}" = "1" ]; then
    mkdir -p "$baseline_dir"
    for f in "${artifacts[@]}"; do
        cp "$f" "$baseline_dir/$(basename "$f")"
        echo "blessed $baseline_dir/$(basename "$f")"
    done
    echo "bench_gate: baselines updated — commit the diff"
    exit 0
fi

status=0
for f in "${artifacts[@]}"; do
    base="$baseline_dir/$(basename "$f")"
    if [ ! -f "$base" ]; then
        echo "bench_gate: missing baseline $base (run UPDATE_BENCH=1 $0)" >&2
        status=1
        continue
    fi
    echo "==> gating $(basename "$f")"
    cargo run -q --release -p copart-cli -- bench-report \
        --current "$f" --baseline "$base" || status=1
done

if [ "$status" -ne 0 ]; then
    echo "bench_gate: FAILED — see regressions above" >&2
    echo "bench_gate: if the change is intentional: UPDATE_BENCH=1 $0" >&2
    exit 1
fi
echo "bench_gate: all artifacts within baseline"
