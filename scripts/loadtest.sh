#!/usr/bin/env bash
# CI load gate for the `copart serve` daemon: boot it on an ephemeral
# port, hammer the read API with `copart load`, and require a perfect
# outcome —
#
#   * every request answered 2xx (the listener drops nothing at this
#     concurrency),
#   * zero epoch-deadline misses (the control loop holds its wall-clock
#     grid while the HTTP side is saturated),
#   * a clean drain on POST /shutdown.
#
# The tick is deliberately generous (50 ms) so the gate measures the
# daemon's isolation of control from serving, not the CI runner's
# scheduler. A miss only counts when an epoch starts more than one full
# tick late.
#
# Usage: loadtest.sh [debug|release]   (default release, matching CI)

set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-release}"
bindir="target/$profile"
build_flags=(-p copart-cli)
if [[ "$profile" == release ]]; then
    build_flags+=(--release)
fi
cargo build "${build_flags[@]}"

requests="${LOADTEST_REQUESTS:-10000}"
concurrency="${LOADTEST_CONCURRENCY:-8}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/copart-loadtest.XXXXXX")"
serve_pid=""
cleanup() {
    [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "==> loadtest: booting copart serve (h-both x 4, tick 50 ms)"
"$bindir/copart" serve --mix h-both --policy copart --apps 4 \
    --tick-ms 50 --trace-dir "$workdir/trace" >"$workdir/serve.out" 2>&1 &
serve_pid=$!

# The daemon prints its (ephemeral) address once profiling finishes.
addr=""
for _ in $(seq 1 120); do
    addr="$(sed -n 's#^copart serve listening on http://##p' "$workdir/serve.out")"
    [[ -n "$addr" ]] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "loadtest: daemon died during boot:" >&2
        cat "$workdir/serve.out" >&2
        exit 1
    fi
    sleep 0.5
done
if [[ -z "$addr" ]]; then
    echo "loadtest: daemon never published its address" >&2
    cat "$workdir/serve.out" >&2
    exit 1
fi
echo "==> loadtest: daemon up at $addr"

echo "==> loadtest: copart load ($requests requests, $concurrency connections)"
"$bindir/copart" load --addr "$addr" \
    --requests "$requests" --concurrency "$concurrency" | tee "$workdir/load.out"

echo "==> loadtest: asserting a perfect run"
grep -q " 0 failures" "$workdir/load.out" \
    || { echo "loadtest: some requests failed" >&2; exit 1; }
grep -q "^daemon epoch deadline misses: 0$" "$workdir/load.out" \
    || { echo "loadtest: the control loop missed epoch deadlines under load" >&2; exit 1; }

echo "==> loadtest: draining via POST /shutdown"
curl -fsS -X POST "http://$addr/shutdown" >/dev/null
for _ in $(seq 1 60); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.5
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "loadtest: daemon did not drain within 30s of POST /shutdown" >&2
    exit 1
fi
serve_pid=""

echo "==> loadtest: validating the rotating trace"
shopt -s nullglob
traces=("$workdir"/trace/*.jsonl)
if ((${#traces[@]} < 1)); then
    echo "loadtest: daemon wrote no trace files" >&2
    exit 1
fi
"$bindir/copart" trace-check --path "${traces[0]}" --min-events 1

echo "loadtest: all gates passed"
