#!/usr/bin/env bash
# Compare gate: the head-to-head fairness harness end to end.
#
#   1. `copart compare` — every registered policy engine (EQ, ST,
#      CAT-only, MBA-only, CoPart, Utility, LFOC) × every compare
#      scenario (paper mixes, diurnal LC, flash-crowd LC, bully) — run
#      twice, once at --jobs 1 and once at --jobs 8: the per-cell JSONL,
#      the stdout table, and the BENCH_compare.json artifact must all be
#      byte-identical (`cmp`): the grid determinism contract,
#   2. the JSONL must actually cover the full grid — one line per
#      (engine, scenario) cell, no engine or scenario silently dropped,
#   3. the LFOC clustering engine must survive fault injection:
#      `sim-run --policy lfoc --faults …` runs to completion (the
#      runtime lays out shared-cluster schemata through the validity
#      assertions), its decision trace checks out, and its metrics show
#      the cluster planner actually engaged.
#
# The grid shape (--seconds, --seed) is fixed rather than REPRO_FAST-
# scaled: BENCH_compare.json's grid digest is gated byte-exactly against
# crates/bench/baselines/ by scripts/bench_gate.sh, so every producer
# must run the identical shape.
#
# Usage: compare.sh [debug|release]   (default release, matching CI)

set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-release}"
bindir="target/$profile"
build_flags=(-p copart-cli)
if [[ "$profile" == release ]]; then
    build_flags+=(--release)
fi
cargo build "${build_flags[@]}"

cmpdir="$(mktemp -d "${TMPDIR:-/tmp}/copart-compare.XXXXXX")"
trap 'rm -rf "$cmpdir"' EXIT

# Fixed shape — see the header comment; keep in lockstep with the
# compare invocation in scripts/bench_gate.sh.
seconds=6
seed=42

echo "==> compare: full engine x scenario grid (--jobs 1)"
BENCH_JSON_DIR="$cmpdir/b1" "$bindir/copart" compare \
    --seconds "$seconds" --seed "$seed" --jobs 1 \
    --out "$cmpdir/j1.jsonl" >"$cmpdir/t1.txt"

echo "==> compare: the same grid at --jobs 8"
BENCH_JSON_DIR="$cmpdir/b8" "$bindir/copart" compare \
    --seconds "$seconds" --seed "$seed" --jobs 8 \
    --out "$cmpdir/j8.jsonl" >"$cmpdir/t8.txt"

echo "==> compare: jobs-1 vs jobs-8 byte-identity (JSONL, table, artifact)"
cmp "$cmpdir/j1.jsonl" "$cmpdir/j8.jsonl" ||
    { echo "compare: JSONL differs between --jobs 1 and --jobs 8" >&2; exit 1; }
# The artifact-location line names the (different) output directory;
# everything else on stdout must match.
grep -v '^bench artifact written' "$cmpdir/t1.txt" >"$cmpdir/t1-stable.txt"
grep -v '^bench artifact written' "$cmpdir/t8.txt" >"$cmpdir/t8-stable.txt"
cmp "$cmpdir/t1-stable.txt" "$cmpdir/t8-stable.txt" ||
    { echo "compare: stdout table differs between --jobs 1 and --jobs 8" >&2; exit 1; }
cmp "$cmpdir/b1/BENCH_compare.json" "$cmpdir/b8/BENCH_compare.json" ||
    { echo "compare: BENCH_compare.json differs between --jobs 1 and --jobs 8" >&2; exit 1; }

echo "==> compare: the grid must cover every engine and every scenario"
for engine in EQ ST CAT-only MBA-only CoPart Utility LFOC; do
    grep -q "\"engine\":\"$engine\"" "$cmpdir/j1.jsonl" ||
        { echo "compare: engine $engine missing from the grid" >&2; exit 1; }
done
for scenario in h-both m-llc diurnal-lc flash-crowd-lc bully; do
    grep -q "\"scenario\":\"$scenario\"" "$cmpdir/j1.jsonl" ||
        { echo "compare: scenario $scenario missing from the grid" >&2; exit 1; }
done
cells=$(wc -l <"$cmpdir/j1.jsonl")
[ "$cells" -eq 35 ] ||
    { echo "compare: expected 35 grid cells, got $cells" >&2; exit 1; }

echo "==> compare: LFOC clustering under fault injection"
"$bindir/copart" sim-run --mix m-both --policy lfoc --seconds 30 \
    --faults seed=7,write=0.1,dropout=0.05 \
    --trace-out "$cmpdir/lfoc-faults.jsonl" --metrics >"$cmpdir/lfoc.txt"
"$bindir/copart" trace-check --path "$cmpdir/lfoc-faults.jsonl" --min-events 10
grep -Eq '^gauge +clusters = [1-9]' "$cmpdir/lfoc.txt" ||
    { echo "compare: lfoc run reports no cluster gauge — planner never engaged" >&2; exit 1; }
grep -Eq '^counter cluster_replans = [1-9]' "$cmpdir/lfoc.txt" ||
    { echo "compare: lfoc run performed no cluster replans under faults" >&2; exit 1; }

echo "compare: all gates passed"
