#!/usr/bin/env bash
# Fleet gate: the multi-node consolidation layer end to end.
#
#   1. a 64-node × 500-tenant churn run with per-node fault scoping,
#      twice — once at --jobs 1, once at --jobs 8 — and the two fleet
#      traces, migration-ticket trails, and metrics documents must be
#      byte-identical (`cmp`): the fleet determinism contract,
#   2. `copart trace-check --fleet` replays the trace structurally
#      (capacity bounds, placement/departure/migration consistency,
#      per-epoch summaries),
#   3. the run must contain at least one state-preserving migration —
#      a fleet gate that never migrates gates nothing,
#   4. a 1000-node wide-fleet smoke: mostly-empty fleets must stay
#      cheap and their traces must still check out,
#   5. `--state-dir`: every live node leaves a readable PR-8 snapshot.
#
# REPRO_FAST=1 shrinks the shapes for the inner loop (8×60 and 128×80).
#
# Usage: fleet.sh [debug|release]   (default release, matching CI)

set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-release}"
bindir="target/$profile"
build_flags=(-p copart-cli)
if [[ "$profile" == release ]]; then
    build_flags+=(--release)
fi
cargo build "${build_flags[@]}"

fleetdir="$(mktemp -d "${TMPDIR:-/tmp}/copart-fleet.XXXXXX")"
trap 'rm -rf "$fleetdir"' EXIT

if [[ "${REPRO_FAST:-0}" == 1 ]]; then
    nodes=8 apps=60 epochs=24 wide_nodes=128 wide_apps=80 wide_epochs=8
else
    nodes=64 apps=500 epochs=48 wide_nodes=1000 wide_apps=600 wide_epochs=12
fi
seed=1001
faults="seed=5,dropout=1/61,write=0.01,nodes=every/3"
# Aggressive rebalancing so the gate reliably covers the migration path.
rebalance=(--rebalance-threshold 0.005 --rebalance-patience 1)

echo "==> fleet: ${nodes}×${apps} churn run with per-node faults (--jobs 1)"
"$bindir/copart" fleet-run --nodes "$nodes" --apps "$apps" --seed "$seed" \
    --epochs "$epochs" --faults "$faults" "${rebalance[@]}" --jobs 1 \
    --trace-out "$fleetdir/j1.jsonl" --tickets-out "$fleetdir/j1-tickets.jsonl" \
    --metrics >"$fleetdir/j1.txt"

echo "==> fleet: the same fleet at --jobs 8"
"$bindir/copart" fleet-run --nodes "$nodes" --apps "$apps" --seed "$seed" \
    --epochs "$epochs" --faults "$faults" "${rebalance[@]}" --jobs 8 \
    --trace-out "$fleetdir/j8.jsonl" --tickets-out "$fleetdir/j8-tickets.jsonl" \
    --metrics >"$fleetdir/j8.txt"

echo "==> fleet: jobs-1 vs jobs-8 byte-identity (trace, tickets, metrics)"
cmp "$fleetdir/j1.jsonl" "$fleetdir/j8.jsonl" ||
    { echo "fleet: trace differs between --jobs 1 and --jobs 8" >&2; exit 1; }
cmp "$fleetdir/j1-tickets.jsonl" "$fleetdir/j8-tickets.jsonl" ||
    { echo "fleet: migration tickets differ between --jobs 1 and --jobs 8" >&2; exit 1; }
cmp "$fleetdir/j1.txt" "$fleetdir/j8.txt" ||
    { echo "fleet: report/metrics differ between --jobs 1 and --jobs 8" >&2; exit 1; }

echo "==> fleet: structural trace check"
"$bindir/copart" trace-check --fleet --path "$fleetdir/j1.jsonl" --min-events 10

echo "==> fleet: the run must cover the migration path"
grep -q '"kind":"migration"' "$fleetdir/j1.jsonl" ||
    { echo "fleet: no migration events — the gate covered nothing" >&2; exit 1; }
[ -s "$fleetdir/j1-tickets.jsonl" ] ||
    { echo "fleet: migration happened but left no ticket" >&2; exit 1; }

echo "==> fleet: ${wide_nodes}-node wide-fleet smoke with node snapshots"
"$bindir/copart" fleet-run --nodes "$wide_nodes" --apps "$wide_apps" \
    --seed 77 --epochs "$wide_epochs" --state-dir "$fleetdir/state" \
    --trace-out "$fleetdir/wide.jsonl" >"$fleetdir/wide.txt"
"$bindir/copart" trace-check --fleet --path "$fleetdir/wide.jsonl"
grep -q "node snapshots in" "$fleetdir/wide.txt" ||
    { echo "fleet: wide fleet wrote no node snapshots" >&2; exit 1; }
snapdirs=$(find "$fleetdir/state" -name 'snap-*.json' | wc -l)
[ "$snapdirs" -gt 0 ] ||
    { echo "fleet: state dir holds no snap-*.json files" >&2; exit 1; }
echo "    $snapdirs node snapshots on disk"

echo "fleet: all gates passed"
