#!/usr/bin/env bash
# CI smoke gate: drive the built binaries end-to-end on a tiny
# configuration and validate the JSONL decision traces they emit
# (parse, gapless epochs, monotone time — `copart trace-check`).
#
#   1. `copart sim-run` with a short CoPart consolidation + --trace-out,
#   2. `repro fig12` under REPRO_FAST=1 (shrunk EvalOptions) at --jobs 2,
#   3. `copart trace-check` over every trace the two produced.
#
# Usage: smoke.sh [debug|release]   (default release, matching CI)

set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-release}"
bindir="target/$profile"
build_flags=(-p copart-cli -p copart-experiments)
if [[ "$profile" == release ]]; then
    build_flags+=(--release)
fi
cargo build "${build_flags[@]}"

smokedir="$(mktemp -d "${TMPDIR:-/tmp}/copart-smoke.XXXXXX")"
trap 'rm -rf "$smokedir"' EXIT

echo "==> smoke: copart sim-run (copart policy, 10 virtual seconds)"
"$bindir/copart" sim-run --mix h-both --policy copart --apps 4 \
    --seconds 10 --jobs 2 --trace-out "$smokedir/sim_run.jsonl"

echo "==> smoke: repro fig12 (REPRO_FAST, --jobs 2)"
REPRO_FAST=1 REPRO_TRACE_DIR="$smokedir" "$bindir/repro" fig12 --jobs 2

echo "==> smoke: trace-check over every emitted trace"
shopt -s nullglob
traces=("$smokedir"/*.jsonl)
if ((${#traces[@]} < 2)); then
    echo "smoke: expected sim-run + fig12 traces, found ${#traces[@]}" >&2
    exit 1
fi
for trace in "${traces[@]}"; do
    "$bindir/copart" trace-check --path "$trace" --min-events 1
done

echo "smoke: all ${#traces[@]} traces check out"
