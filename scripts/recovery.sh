#!/usr/bin/env bash
# Crash-recovery gate: kill a persisted consolidation at an epoch
# boundary, resume it from the snapshot + event log, and require the
# stitched trace to be byte-identical to an uninterrupted run (see
# DESIGN.md §16).
#
#   1. an uninterrupted `copart sim-run --state-dir` reference run,
#   2. the same scenario with --kill-at-epoch K, then --resume; the
#      resume must report a recovery and finish the remaining epochs,
#   3. `copart trace-check --reference` proves the resumed trace is
#      byte-identical to the reference (plus the usual invariants),
#   4. the same kill/resume loop under a fault plan: recovery must
#      restore the fault-stream positions too, or the continuation
#      diverges.
#
# Usage: recovery.sh [debug|release]   (default release, matching CI)

set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-release}"
bindir="target/$profile"
build_flags=(-p copart-cli)
if [[ "$profile" == release ]]; then
    build_flags+=(--release)
fi
cargo build "${build_flags[@]}"

recdir="$(mktemp -d "${TMPDIR:-/tmp}/copart-recovery.XXXXXX")"
trap 'rm -rf "$recdir"' EXIT

scenario=(--mix h-both --policy copart --apps 4 --epochs 24 --snapshot-every 5)

echo "==> recovery: uninterrupted reference run (24 epochs)"
"$bindir/copart" sim-run "${scenario[@]}" --metrics \
    --state-dir "$recdir/ref" | tee "$recdir/ref.txt"
grep -q "snapshots_written" "$recdir/ref.txt" ||
    { echo "recovery: reference run cut no snapshots" >&2; exit 1; }

echo "==> recovery: kill at epoch 11, then resume"
"$bindir/copart" sim-run "${scenario[@]}" --kill-at-epoch 11 \
    --state-dir "$recdir/kr" | tee "$recdir/killed.txt"
grep -q "killed at epoch 11" "$recdir/killed.txt" ||
    { echo "recovery: the kill did not land at epoch 11" >&2; exit 1; }
"$bindir/copart" sim-run "${scenario[@]}" --resume --metrics \
    --state-dir "$recdir/kr" | tee "$recdir/resumed.txt"
grep -q "recoveries" "$recdir/resumed.txt" ||
    { echo "recovery: the resume did not report a recovery" >&2; exit 1; }

echo "==> recovery: resumed trace is byte-identical to the reference"
"$bindir/copart" trace-check --path "$recdir/kr/trace.jsonl" \
    --min-events 1 --reference "$recdir/ref/trace.jsonl"

faults="seed=7,write=0.1,dropout=0.05"

echo "==> recovery: faulted reference run ($faults)"
"$bindir/copart" sim-run "${scenario[@]}" --faults "$faults" \
    --state-dir "$recdir/fref" --metrics | tee "$recdir/fref.txt"
grep -q "degraded_epochs" "$recdir/fref.txt" ||
    { echo "recovery: no degraded epochs under a 5% dropout plan" >&2; exit 1; }

echo "==> recovery: faulted kill at epoch 11, then resume"
"$bindir/copart" sim-run "${scenario[@]}" --faults "$faults" \
    --kill-at-epoch 11 --state-dir "$recdir/fkr" >/dev/null
"$bindir/copart" sim-run "${scenario[@]}" --faults "$faults" \
    --resume --state-dir "$recdir/fkr" >/dev/null

echo "==> recovery: faulted resumed trace is byte-identical too"
"$bindir/copart" trace-check --path "$recdir/fkr/trace.jsonl" \
    --min-events 1 --reference "$recdir/fref/trace.jsonl"

echo "recovery: kill/resume is byte-identical, clean and faulted"
