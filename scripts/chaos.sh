#!/usr/bin/env bash
# Chaos gate: run the consolidation under deterministic fault injection
# and prove the resilience layer holds (see DESIGN.md §11).
#
#   1. the fault soak + faulty-determinism test binaries (REPRO_FAST
#      shrinks the seed sweep; the plans are seeded, so there is no
#      flakiness — a failure is a regression),
#   2. `copart sim-run --faults` smoke: transient schemata writes +
#      counter dropouts on a 4-app mix, with a JSONL trace,
#   3. `copart trace-check` over the degraded trace (the fault field
#      must not break any trace invariant).
#
# Usage: chaos.sh [debug|release]   (default release, matching CI)

set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-release}"
bindir="target/$profile"
profile_flags=()
if [[ "$profile" == release ]]; then
    profile_flags+=(--release)
fi

echo "==> chaos: fault soak + faulty parallel determinism"
cargo test -q "${profile_flags[@]}" --test fault_soak --test parallel_determinism

echo "==> chaos: golden degraded-mode trace"
cargo test -q "${profile_flags[@]}" -p copart-cli --test golden_degraded

cargo build "${profile_flags[@]}" -p copart-cli

chaosdir="$(mktemp -d "${TMPDIR:-/tmp}/copart-chaos.XXXXXX")"
trap 'rm -rf "$chaosdir"' EXIT

echo "==> chaos: copart sim-run --faults (10% busy writes, 5% dropouts)"
"$bindir/copart" sim-run --mix h-llc --policy copart --apps 4 \
    --seconds 20 --faults "seed=7,write=0.1,dropout=0.05" --metrics \
    --trace-out "$chaosdir/faulty.jsonl" | tee "$chaosdir/metrics.txt"

grep -q "fault_write_retries" "$chaosdir/metrics.txt" ||
    { echo "chaos: no write retries under a 10% write-fault plan" >&2; exit 1; }
grep -q "degraded_epochs" "$chaosdir/metrics.txt" ||
    { echo "chaos: no degraded epochs under a 5% dropout plan" >&2; exit 1; }

echo "==> chaos: trace-check over the degraded trace"
"$bindir/copart" trace-check --path "$chaosdir/faulty.jsonl" --min-events 1

echo "chaos: the fault plan held"
