#!/usr/bin/env bash
# Pre-PR gate for the CoPart reproduction (see README.md).
#
# Runs, in order:
#   1. the tier-1 verify from ROADMAP.md (offline release build + tests),
#   2. rustfmt in check mode over the whole workspace,
#   3. rustdoc with warnings denied (the workspace keeps
#      `#![warn(missing_docs)]` satisfied on every crate).
#
# Everything must pass before a PR is cut. The script is std-toolchain
# only: no network access and no external tools beyond cargo itself.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "verify: all gates passed"
