#!/usr/bin/env bash
# Pre-PR gate for the CoPart reproduction (see README.md).
#
# Two modes:
#   verify.sh quick   fast inner-loop gate: debug tests + an explicit
#                     doctest pass + rustfmt + clippy + rustdoc with
#                     warnings denied. One debug build of the workspace,
#                     nothing else. The copart-check
#                     property suite runs inside the test pass at the
#                     quick fuzz budget (COPART_CHECK_CASES=64).
#   verify.sh [full]  everything a PR must pass: release build, release
#                     tests (sharing the release cache with the build —
#                     no debug/release double compile), rustfmt, clippy,
#                     rustdoc with warnings denied (the workspace keeps
#                     `#![warn(missing_docs)]` satisfied on every crate),
#                     the copart-check suite at the full fuzz budget
#                     (COPART_CHECK_CASES=512) with a jobs-1-vs-8 report
#                     byte-comparison, the chaos gate, the
#                     crash-recovery gate (scripts/recovery.sh: kill a
#                     persisted run at an epoch boundary, resume it, and
#                     require the stitched trace byte-identical to an
#                     uninterrupted run), the fleet gate
#                     (scripts/fleet.sh under REPRO_FAST: multi-node
#                     churn with per-node faults, byte-identical at
#                     --jobs 1 vs 8, with at least one state-preserving
#                     migration), the compare gate (scripts/compare.sh:
#                     the engine x scenario fairness grid byte-identical
#                     at --jobs 1 vs 8, with the LFOC clustering engine
#                     surviving fault injection), and the perf gate
#                     (scripts/bench_gate.sh), which runs the artifact
#                     benches and diffs their BENCH_*.json against the
#                     checked-in baselines; the latter also holds the
#                     4000-app planner p99 under the ~1 ms epoch budget
#                     in absolute terms (COPART_P99_BUDGET_NS).
#
# COPART_CHECK_CASES overrides either budget from the environment.
#
# The script is std-toolchain only: no network access and no external
# tools beyond cargo itself.

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
case "$mode" in
quick)
    echo "==> cargo test -q (debug, copart-check at ${COPART_CHECK_CASES:-64} cases)"
    COPART_CHECK_CASES="${COPART_CHECK_CASES:-64}" cargo test -q --workspace

    echo "==> cargo test --doc (the API examples are executable)"
    cargo test -q --doc --workspace

    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo doc --no-deps (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
    ;;
full)
    echo "==> tier-1: cargo build --release"
    cargo build --workspace --release

    echo "==> tier-1: cargo test -q --release (copart-check at ${COPART_CHECK_CASES:-512} cases)"
    COPART_CHECK_CASES="${COPART_CHECK_CASES:-512}" cargo test -q --workspace --release

    echo "==> copart-check report determinism (jobs 1 vs 8, ${COPART_CHECK_CASES:-512} cases)"
    check_tmp="$(mktemp -d)"
    trap 'rm -rf "$check_tmp"' EXIT
    cargo run -q --release -p copart-check -- \
        --cases "${COPART_CHECK_CASES:-512}" --jobs 1 >"$check_tmp/jobs1.txt"
    cargo run -q --release -p copart-check -- \
        --cases "${COPART_CHECK_CASES:-512}" --jobs 8 >"$check_tmp/jobs8.txt"
    cmp "$check_tmp/jobs1.txt" "$check_tmp/jobs8.txt" \
        || { echo "copart-check report differs between --jobs 1 and --jobs 8" >&2; exit 1; }

    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo doc --no-deps (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

    echo "==> chaos gate (fault injection, REPRO_FAST)"
    REPRO_FAST=1 scripts/chaos.sh release

    echo "==> recovery gate (kill/resume byte-identity)"
    scripts/recovery.sh release

    echo "==> fleet gate (multi-node determinism, REPRO_FAST)"
    REPRO_FAST=1 scripts/fleet.sh release

    echo "==> compare gate (engine x scenario grid determinism)"
    scripts/compare.sh release

    echo "==> perf gate (BENCH_*.json vs crates/bench/baselines)"
    scripts/bench_gate.sh
    ;;
*)
    echo "usage: $0 [quick|full]" >&2
    exit 2
    ;;
esac

echo "verify ($mode): all gates passed"
