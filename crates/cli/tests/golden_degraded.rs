//! Golden-trace regression for degraded-mode classification: a fixed
//! counter-dropout schedule (every 7th read, seed 5) must reproduce
//! exactly the checked-in sequence of `(epoch, phase, decision, fault)`
//! projections. Any change to the dropout handling, EWMA bridging, or
//! fault annotation shows up here as a diff.
//!
//! Bless an intentional change with `UPDATE_GOLDEN=1 cargo test -p
//! copart-cli --test golden_degraded`.

use std::path::PathBuf;
use std::process::Command;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/degraded_trace.txt"
);

/// One stable line per event: the full byte trace would churn on any
/// simulator timing tweak, so the golden pins only the fields the
/// degraded-mode contract is about.
fn project(events: &[copart_telemetry::TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let fault = match &e.fault {
            None => "-".to_string(),
            Some(f) => format!(
                "degraded=[{}] retries={} rolled_back={}",
                f.degraded.join("+"),
                f.write_retries,
                f.rolled_back
            ),
        };
        out.push_str(&format!(
            "{} {} {} {}\n",
            e.epoch,
            e.phase.as_str(),
            e.decision.as_str(),
            fault
        ));
    }
    out
}

#[test]
fn degraded_mode_trace_matches_golden() {
    let trace = std::env::temp_dir().join(format!(
        "copart-golden-degraded-{}.jsonl",
        std::process::id()
    ));
    let bin = env!("CARGO_BIN_EXE_copart");
    let status = Command::new(bin)
        .args([
            "sim-run",
            "--mix",
            "h-llc",
            "--apps",
            "4",
            "--seconds",
            "10",
            "--policy",
            "copart",
            "--faults",
            "seed=5,dropout=1/7",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .status()
        .expect("run copart sim-run");
    assert!(status.success(), "sim-run --faults failed");

    // The degraded trace must still satisfy the machine-checkable
    // invariants (gapless epochs, monotone time).
    let check = Command::new(bin)
        .args([
            "trace-check",
            "--path",
            trace.to_str().unwrap(),
            "--min-events",
            "20",
        ])
        .status()
        .expect("run copart trace-check");
    assert!(check.success(), "trace-check rejected the degraded trace");

    let events = copart_telemetry::read_trace_file(&trace).expect("trace parses");
    let _ = std::fs::remove_file(&trace);
    let got = project(&events);
    assert!(
        got.contains("degraded=["),
        "the dropout schedule produced no degraded epoch"
    );

    let golden_path = PathBuf::from(GOLDEN);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &got).unwrap();
        eprintln!("golden file updated: {}", golden_path.display());
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} — bless it with UPDATE_GOLDEN=1",
            golden_path.display()
        )
    });
    assert_eq!(
        got, want,
        "degraded-mode trace diverged from the golden projection \
         (intentional? bless with UPDATE_GOLDEN=1)"
    );
}
