//! `copart` — command-line interface to the CoPart reproduction.
//!
//! ```text
//! copart sim-run   --mix h-both --policy copart --seconds 30
//! copart serve     --mix h-both --policy copart --port 7700
//! copart load      --addr 127.0.0.1:7700 --requests 10000
//! copart classify  --bench WN
//! copart resctrl-status --root /sys/fs/resctrl
//! copart resctrl-apply  --root /sys/fs/resctrl --group batch0 --ways 4@2 --mba 40
//! ```
//!
//! `sim-run` and `classify` run entirely on the simulated testbed;
//! `resctrl-*` speak the resctrl filesystem protocol (point `--root` at a
//! mock tree or at `/sys/fs/resctrl` on RDT hardware).

mod args;
mod bench_report;
mod compare_cmd;
mod fleet_cmd;
mod resctrl_cmd;
mod serve_cmd;
mod sim_cmd;

use std::process::ExitCode;

const USAGE: &str = "\
Usage: copart <command> [options]

Commands:
  sim-run          Run a consolidation on the simulated testbed
      --mix <h-llc|h-bw|h-both|m-llc|m-bw|m-both|is>   (default h-both)
      --policy <eq|st|cat-only|mba-only|copart|lfoc>   (default copart)
      --apps <1..4096>                                 (default 4)
                           7+ apps run the synthetic planner-scale
                           harness (no machine simulation); --seed and
                           --churn <0..1> tune its population
      --seconds <virtual seconds>                      (default 30)
      --trace-out <path>   write a per-epoch JSONL decision trace
                           (dynamic policies: cat-only, mba-only, copart,
                           lfoc)
      --metrics            print the runtime metrics registry after the run
      --jobs <n>           worker threads for parallel sweeps (the ST
                           offline search); also COPART_JOBS env var
      --faults <spec>      inject deterministic backend faults (dynamic
                           policies only), e.g. seed=7,write=0.1,dropout=0.05
                           keys: seed, dropout, cbm, mba, write, vanish,
                           stall; values: probability, 1/<n>, or off
      --population <uniform|fleet>   planner-scale population source
                           (7+ apps): uniform random verdicts, or the
                           fleet's zipf-skewed benchmark mix
      --state-dir <dir>    crash-safe persistence: epoch snapshots plus an
                           event log (dynamic policies, up to 6 apps);
                           --epochs <n> sets the control epoch count
                           (default derived from --seconds),
                           --snapshot-every <n> the snapshot cadence
                           (default 16), --kill-at-epoch <k> stops dead
                           after k epochs (simulated SIGKILL), and
                           --resume recovers from the state directory and
                           finishes the run with byte-identical traces
  serve            Run the always-on control daemon (HTTP API + /metrics)
      --mix, --policy (dynamic only), --apps, --seed    as in sim-run
      --port <n>           listen port (default 0 = ephemeral)
      --tick-ms <n>        wall-clock epoch spacing (default 25;
                           0 = free-run, requires --epochs)
      --epochs <n>         stop epoching after n (default 0 = unbounded)
      --faults <spec>      deterministic fault injection, as in sim-run
      --trace-dir <path>   write rotating JSONL trace files
      --state-dir <dir>    crash-safe persistence; a restarted daemon
                           resumes the run from its latest snapshot
      --snapshot-every <n> epochs between daemon snapshots (default 64;
                           0 = only at shutdown and POST /snapshot)
                           stop it with: curl -X POST <addr>/shutdown
  load             Hammer a daemon's read API (status/metrics/trace)
      --addr <host:port> [--requests <n>] [--concurrency <n>]
  fleet-run        Consolidate a multi-node fleet (placement engine,
                   unfairness-driven migrations, fleet-wide metrics)
      --nodes <n>          Xeon node count (default 4)
      --apps <n>           tenants on the churn tape (default 16)
      --seed <n>           master fleet seed (default 42)
      --epochs <n>         fleet epochs (default 48)
      --capacity <n>       tenants per node (default 4, the paper's
                           consolidation density)
      --rebalance-threshold <x>  unfairness EWMA that marks a node hot
      --rebalance-patience <n>   hot epochs before a migration fires
      --faults <spec>      per-node fault injection; sim-run's spec plus
                           nodes=<all|every/<k>|half> scoping
      --state-dir <dir>    write every live node's final snapshot
                           (node-NNNN/, PR-8 wire format)
      --trace-out <path>   write the JSONL fleet trace
      --tickets-out <path> write the migration-ticket audit trail
      --metrics            print the fleet metrics JSON document
      --jobs <n>           node-phase workers (byte-identical output at
                           any setting)
  compare          Head-to-head fairness grid: every registered policy
                   engine (EQ, ST, CAT-only, MBA-only, CoPart, Utility,
                   LFOC) x every compare scenario (paper mixes, diurnal
                   LC, flash-crowd LC, bully); byte-identical output at
                   any --jobs setting
      --seconds <virtual seconds>   per-cell run length (default 30)
      --seed <n>           evaluation seed (default 42)
      --jobs <n>           worker threads for the cell grid
      --out <path>         write one JSONL line per (engine, scenario)
                           cell; BENCH_JSON_DIR additionally drops a
                           BENCH_compare.json artifact for bench_gate.sh
  trace-check      Validate a JSONL decision trace (parses, gapless
                   epochs, monotone time) — the CI smoke gate
      --path <file> [--min-events <n>]
      --fleet              validate a fleet-run trace instead: full
                           occupancy replay of placements, departures,
                           migrations, and per-epoch summaries
      --reference <file>   additionally require the trace to be
                           byte-identical to a reference trace (the
                           crash-recovery CI gate)
  bench-report     Pretty-print a BENCH_*.json perf artifact, or gate it
                   against a baseline (used by scripts/bench_gate.sh)
      --current <file> [--baseline <file>] [--tolerance <ratio>]
                           latency/throughput tolerance ratio (default 3.0,
                           or COPART_BENCH_TOLERANCE); alloc counts and
                           digests are gated exactly
  classify         Probe one benchmark's sensitivity class
      --bench <WN|WS|RT|OC|CG|FT|SP|ON|FMM|SW|EP>
  resctrl-status   Show groups and schemata of a resctrl tree
      --root <path>
  resctrl-apply    Program one group's CAT mask and MBA level
      --root <path> --group <name> --ways <count>@<first> --mba <percent>
  resctrl-init     Create a mock resctrl tree (for dry runs)
      --root <path> [--llc-ways <n>]
  monitor          Sample per-group memory bandwidth (MBM) and occupancy
      --root <path> [--interval-ms <n>] [--count <n>]
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match args::Options::parse_with_flags(rest, &["metrics", "resume", "fleet"]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "sim-run" => sim_cmd::sim_run(&opts),
        "compare" => compare_cmd::compare(&opts),
        "fleet-run" => fleet_cmd::fleet_run(&opts),
        "serve" => serve_cmd::serve(&opts),
        "load" => serve_cmd::load(&opts),
        "trace-check" if opts.flag("fleet") => fleet_cmd::fleet_trace_check(&opts),
        "trace-check" => sim_cmd::trace_check(&opts),
        "bench-report" => bench_report::bench_report(&opts),
        "classify" => sim_cmd::classify(&opts),
        "resctrl-status" => resctrl_cmd::status(&opts),
        "resctrl-apply" => resctrl_cmd::apply(&opts),
        "resctrl-init" => resctrl_cmd::init(&opts),
        "monitor" => resctrl_cmd::monitor(&opts),
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
