//! resctrl-filesystem commands: `resctrl-status`, `resctrl-apply`,
//! `resctrl-init`.

use copart_rdt::resctrl::Schemata;
use copart_rdt::{CbmMask, FileCounterSource, MbaLevel, RdtCapabilities, ResctrlBackend};
use std::path::Path;

use crate::args::Options;

/// `copart resctrl-status`: list the tree's capabilities and every
/// group's schemata.
pub fn status(opts: &Options) -> Result<(), String> {
    let root = opts.required("root")?;
    let backend = ResctrlBackend::mount(root, FileCounterSource)
        .map_err(|e| format!("cannot mount {root}: {e}"))?;
    let caps = backend.capabilities();
    println!("resctrl tree at {root}");
    println!(
        "  {} LLC ways, {} CLOSes, MBA {}%..100% step {}%",
        caps.llc_ways, caps.num_clos, caps.mba_min_percent, caps.mba_step_percent
    );

    // Groups are directories containing a schemata file (plus the root's
    // own default schemata).
    println!("\ngroups:");
    print_group(Path::new(root), "(default)")?;
    let entries = std::fs::read_dir(root).map_err(|e| e.to_string())?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().join("schemata").exists())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        print_group(&Path::new(root).join(&name), &name)?;
    }
    Ok(())
}

fn print_group(dir: &Path, label: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(dir.join("schemata")).map_err(|e| format!("{label}: {e}"))?;
    let s = Schemata::parse(&text).map_err(|e| format!("{label}: {e}"))?;
    let l3 =
        s.l3.get(&0)
            .map(|b| format!("{:#x} ({} ways)", b, b.count_ones()))
            .unwrap_or_else(|| "-".into());
    let mb =
        s.mb.get(&0)
            .map(|p| format!("{p}%"))
            .unwrap_or_else(|| "-".into());
    println!("  {label:<16} L3 {l3:<18} MB {mb}");
    Ok(())
}

/// `copart resctrl-apply`: program one group.
pub fn apply(opts: &Options) -> Result<(), String> {
    let root = opts.required("root")?;
    let group = opts.required("group")?;
    let ways_spec = opts.required("ways")?;
    let mba: u8 = opts.number("mba", 100u8)?;

    let (count, first) = match ways_spec.split_once('@') {
        Some((c, f)) => (
            c.parse::<u32>().map_err(|_| "bad way count".to_string())?,
            f.parse::<u32>().map_err(|_| "bad first way".to_string())?,
        ),
        None => (
            ways_spec
                .parse::<u32>()
                .map_err(|_| "bad way count".to_string())?,
            0,
        ),
    };

    let mut backend = ResctrlBackend::mount(root, FileCounterSource)
        .map_err(|e| format!("cannot mount {root}: {e}"))?;
    let caps = backend.capabilities();
    let mask = CbmMask::contiguous(first, count, caps.llc_ways)
        .map_err(|e| format!("invalid way range: {e}"))?;
    let clos = backend
        .create_group(group)
        .map_err(|e| format!("cannot create group {group}: {e}"))?;
    backend
        .set_cbm(clos, mask)
        .map_err(|e| format!("cannot program mask: {e}"))?;
    backend
        .set_mba(clos, MbaLevel::new(mba))
        .map_err(|e| format!("cannot program MBA: {e}"))?;
    println!(
        "programmed {group}: L3 mask {mask} ({count} ways from way {first}), MBA {}",
        MbaLevel::new(mba)
    );
    Ok(())
}

/// `copart resctrl-init`: create a mock tree (dry-run environments).
pub fn init(opts: &Options) -> Result<(), String> {
    let root = opts.required("root")?;
    let llc_ways: u32 = opts.number("llc-ways", 11u32)?;
    if !(1..=31).contains(&llc_ways) {
        return Err("--llc-ways must be between 1 and 31".into());
    }
    let caps = RdtCapabilities {
        llc_ways,
        num_clos: 16,
        mba_min_percent: 10,
        mba_step_percent: 10,
    };
    ResctrlBackend::<FileCounterSource>::create_mock_tree(Path::new(root), caps)
        .map_err(|e| format!("cannot create tree: {e}"))?;
    println!("mock resctrl tree created at {root} ({llc_ways} ways)");
    Ok(())
}

/// `copart monitor`: sample each group's MBM/occupancy a few times and
/// print bandwidth rates.
pub fn monitor(opts: &Options) -> Result<(), String> {
    let root = opts.required("root")?;
    let interval_ms: u64 = opts.number("interval-ms", 1000u64)?;
    let count: u32 = opts.number("count", 5u32)?;
    let mut backend = ResctrlBackend::mount(root, FileCounterSource)
        .map_err(|e| format!("cannot mount {root}: {e}"))?;

    // Adopt every existing group directory.
    let entries = std::fs::read_dir(root).map_err(|e| e.to_string())?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().join("mon_data").exists())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    if names.is_empty() {
        return Err("no monitorable groups under this root".into());
    }
    let groups: Vec<_> = names
        .iter()
        .map(|n| backend.create_group(n).map(|g| (g, n.clone())))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot adopt groups: {e}"))?;

    let mut last: Vec<(u64, std::time::Instant)> = Vec::new();
    for round in 0..count {
        let now = std::time::Instant::now();
        let readings: Vec<u64> = groups
            .iter()
            .map(|(g, _)| backend.read_mbm_total_bytes(*g).unwrap_or(0))
            .collect();
        if round > 0 {
            println!("--");
            for (((g, name), bytes), (prev_bytes, prev_t)) in
                groups.iter().zip(&readings).zip(&last)
            {
                let dt = now.duration_since(*prev_t).as_secs_f64();
                let rate = (bytes.saturating_sub(*prev_bytes)) as f64 / dt.max(1e-9);
                let occ = backend.read_llc_occupancy_bytes(*g).unwrap_or(0);
                println!(
                    "{name:<16} bw {:>10.3e} B/s   llc_occupancy {:>12} B",
                    rate, occ
                );
            }
        }
        last = readings.into_iter().map(|b| (b, now)).collect();
        if round + 1 < count {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    Ok(())
}

// `RdtBackend` trait must be in scope for set_cbm/set_mba/capabilities.
use copart_rdt::RdtBackend as _;
