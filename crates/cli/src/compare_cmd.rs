//! `copart compare` — the head-to-head fairness harness.
//!
//! Runs **every registered policy engine** (`PolicyKind::registry()`)
//! over **every compare scenario** (`CompareScenario::all()`) and
//! reports per-(engine, scenario) unfairness and slowdowns:
//!
//! * an aligned table on stdout (rows = scenarios, columns = engines),
//! * optionally one JSONL line per cell (`--out`), and
//! * a flat `BENCH_compare.json` artifact when `BENCH_JSON_DIR` is set
//!   (gated by `scripts/bench_gate.sh` like the perf artifacts).
//!
//! Every cell runs on a fresh simulated machine from an explicit seed
//! and the grid fans out on the `copart-parallel` pool, so the output —
//! table, JSONL, and artifact — is byte-identical at any `--jobs`
//! setting. `scripts/compare.sh` holds the harness to that.

use copart_core::policies::{self, EvalOptions, EvalResult, PolicyKind};
use copart_sim::MachineConfig;
use copart_workloads::stream::StreamReference;
use copart_workloads::CompareScenario;
use std::fmt::Write as _;

use crate::args::Options;

/// One evaluated grid cell, ready for rendering.
struct Cell {
    engine: PolicyKind,
    scenario: CompareScenario,
    result: EvalResult,
    apps: Vec<String>,
}

/// `copart compare`: the full engine × scenario fairness grid.
pub fn compare(opts: &Options) -> Result<(), String> {
    if let Some(jobs) = opts.get("jobs") {
        match jobs.parse::<usize>() {
            Ok(n) if n > 0 => copart_parallel::set_jobs(Some(n)),
            _ => return Err(format!("option --jobs: cannot parse {jobs:?}")),
        }
    }
    let seconds: f64 = opts.number("seconds", 30.0f64)?;
    if seconds <= 0.0 {
        return Err("--seconds must be positive".into());
    }
    let seed: u64 = opts.number("seed", copart_core::CoPartParams::default().seed)?;

    let machine = MachineConfig::xeon_gold_6130();
    let stream = StreamReference::compute(&machine, 4);
    let engines = PolicyKind::registry();
    let scenarios = CompareScenario::all();

    let period_s = copart_core::CoPartParams::default().period.as_secs_f64();
    let total_periods = ((seconds / period_s).ceil() as u32).max(2);
    let eval = EvalOptions {
        total_periods,
        measure_periods: (total_periods / 2).max(1),
        seed,
        ..EvalOptions::default()
    };

    // Solo full-resource references, measured once per scenario before
    // the grid fans out (each solo run is itself an independent task).
    eprintln!(
        "measuring solo references for {} scenarios...",
        scenarios.len()
    );
    let specs_per: Vec<Vec<copart_sim::AppSpec>> =
        scenarios.iter().map(|s| s.specs(&machine)).collect();
    let full_per: Vec<Vec<f64>> = copart_parallel::par_map_indexed(&specs_per, 1, |_, specs| {
        policies::solo_full_ips(&machine, specs)
    });

    eprintln!(
        "running the {}-engine x {}-scenario grid ({} cells)...",
        engines.len(),
        scenarios.len(),
        engines.len() * scenarios.len()
    );
    let cells: Vec<(usize, PolicyKind)> = (0..scenarios.len())
        .flat_map(|si| engines.iter().map(move |&e| (si, e)))
        .collect();
    let results = copart_parallel::par_map_indexed(&cells, 1, |_, &(si, engine)| {
        policies::evaluate_policy(
            &machine,
            &specs_per[si],
            &full_per[si],
            &stream,
            engine,
            &eval,
        )
    });
    let grid: Vec<Cell> = cells
        .iter()
        .zip(results)
        .map(|(&(si, engine), result)| Cell {
            engine,
            scenario: scenarios[si],
            result,
            apps: specs_per[si].iter().map(|s| s.name.clone()).collect(),
        })
        .collect();

    print_table(engines, &scenarios, &grid);

    let jsonl = render_jsonl(&grid);
    if let Some(path) = opts.get("out") {
        std::fs::write(path, &jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("per-cell JSONL written to {path}");
    }
    write_artifact(&grid, &jsonl);
    Ok(())
}

fn print_table(engines: &[PolicyKind], scenarios: &[CompareScenario], grid: &[Cell]) {
    let mut header = vec!["scenario".to_string()];
    header.extend(engines.iter().map(|e| e.label().to_string()));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &s in scenarios {
        let mut row = vec![s.name().to_string()];
        for &e in engines {
            let cell = grid
                .iter()
                .find(|c| c.engine == e && c.scenario == s)
                .expect("full grid");
            row.push(format!("{:.4}", cell.result.unfairness));
        }
        rows.push(row);
    }
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in &rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            let _ = write!(s, "{:<w$}", c, w = widths[i]);
        }
        println!("{}", s.trim_end());
    };
    println!("unfairness (sigma/mu of slowdowns; lower is better):\n");
    line(&header);
    for row in &rows {
        line(row);
    }
}

/// One JSONL line per cell. Floats are formatted with `{:?}` (shortest
/// exact round trip), so identical results render identical bytes.
fn render_jsonl(grid: &[Cell]) -> String {
    let mut out = String::new();
    for cell in grid {
        let _ = write!(
            out,
            "{{\"engine\":\"{}\",\"scenario\":\"{}\",\"unfairness\":{:?},\"throughput\":{:?},\"slowdowns\":[",
            cell.engine.label(),
            cell.scenario.name(),
            cell.result.unfairness,
            cell.result.throughput,
        );
        for (i, (name, sd)) in cell.apps.iter().zip(&cell.result.slowdowns).enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}{{\"app\":\"{name}\",\"slowdown\":{sd:?}}}");
        }
        out.push_str("]}\n");
    }
    out
}

/// Writes `BENCH_compare.json` into `$BENCH_JSON_DIR` (no-op when
/// unset). The `grid_digest` string field is gated byte-exactly by
/// `copart bench-report`, pinning the whole grid's behaviour; the
/// per-cell unfairness numbers ride along ungated for visibility.
fn write_artifact(grid: &[Cell], jsonl: &str) {
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
        return;
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"copart-bench-compare/v1\",");
    let _ = writeln!(
        out,
        "  \"grid_digest\": \"{:#018x}\",",
        fnv1a64(jsonl.as_bytes())
    );
    let _ = writeln!(out, "  \"cells\": {},", grid.len());
    for (i, cell) in grid.iter().enumerate() {
        let key = format!(
            "{}_{}_unfairness",
            cell.engine.label(),
            cell.scenario.name()
        )
        .to_lowercase()
        .replace('-', "_");
        let comma = if i + 1 < grid.len() { "," } else { "" };
        let _ = writeln!(out, "  \"{key}\": {:?}{comma}", cell.result.unfairness);
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(format!("{dir}/BENCH_compare.json"), out))
    {
        eprintln!("warning: cannot write BENCH_compare.json under {dir}: {e}");
    } else {
        println!("bench artifact written to {dir}/BENCH_compare.json");
    }
}

/// FNV-1a over a byte string (the same digest the scale and persist
/// layers use for decision/witness digests).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_is_exact_and_stable() {
        let grid = vec![Cell {
            engine: PolicyKind::LfocCluster,
            scenario: CompareScenario::Bully,
            result: EvalResult {
                policy: PolicyKind::LfocCluster,
                unfairness: 0.1 + 0.2, // 0.30000000000000004 must survive
                throughput: 1.5e9,
                slowdowns: vec![1.25, 2.0],
                timeline: Vec::new(),
            },
            apps: vec!["antagonist".into(), "victim-a".into()],
        }];
        let line = render_jsonl(&grid);
        assert_eq!(
            line,
            "{\"engine\":\"LFOC\",\"scenario\":\"bully\",\"unfairness\":0.30000000000000004,\
             \"throughput\":1500000000.0,\"slowdowns\":[{\"app\":\"antagonist\",\"slowdown\":1.25},\
             {\"app\":\"victim-a\",\"slowdown\":2.0}]}\n"
        );
        // Same input, same bytes: the digest the artifact gates on.
        assert_eq!(
            fnv1a64(line.as_bytes()),
            fnv1a64(render_jsonl(&grid).as_bytes())
        );
    }

    #[test]
    fn fnv_matches_the_reference_vector() {
        // FNV-1a("a") — the classic test vector.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
