//! Simulator-backed commands: `sim-run` and `classify`.

use copart_core::policies::{self, EvalOptions, PolicyKind};
use copart_core::runtime::ConsolidationRuntime;
use copart_core::scale::{run_planner_scale, ScaleConfig, ScalePopulation};
use copart_faults::{FaultPlan, FaultyBackend};
use copart_rdt::{ClosId, RdtBackend, SimBackend};
use copart_serve::Scenario;
use copart_sim::{AppSpec, Machine, MachineConfig};
use copart_telemetry::{JsonlRecorder, NullRecorder, Recorder};
use copart_workloads::stream::StreamReference;
use copart_workloads::{measure, Benchmark, MixKind, WorkloadMix};
use std::path::PathBuf;

use crate::args::Options;

pub(crate) fn parse_mix(s: &str) -> Result<MixKind, String> {
    Ok(match s {
        "h-llc" => MixKind::HighLlc,
        "h-bw" => MixKind::HighBw,
        "h-both" => MixKind::HighBoth,
        "m-llc" => MixKind::ModerateLlc,
        "m-bw" => MixKind::ModerateBw,
        "m-both" => MixKind::ModerateBoth,
        "is" => MixKind::Insensitive,
        other => return Err(format!("unknown mix {other:?}")),
    })
}

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    Ok(match s {
        "eq" => PolicyKind::Equal,
        "st" => PolicyKind::Static,
        "cat-only" => PolicyKind::CatOnly,
        "mba-only" => PolicyKind::MbaOnly,
        "copart" => PolicyKind::CoPart,
        "lfoc" => PolicyKind::LfocCluster,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn parse_bench(s: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.table2().short.eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown benchmark {s:?} (use the Table 2 short names)"))
}

/// `copart sim-run`: one consolidation run with ground-truth metrics.
pub fn sim_run(opts: &Options) -> Result<(), String> {
    let mix_kind = parse_mix(opts.get("mix").unwrap_or("h-both"))?;
    let policy = parse_policy(opts.get("policy").unwrap_or("copart"))?;
    let n_apps: usize = opts.number("apps", 4usize)?;
    let seconds: f64 = opts.number("seconds", 30.0f64)?;
    if seconds <= 0.0 {
        return Err("--seconds must be positive".into());
    }
    if n_apps == 0 || n_apps > 4096 {
        return Err("--apps must be between 1 and 4096".into());
    }
    if n_apps > 6 {
        // Beyond the simulated machine's CLOS capacity: drive the planner
        // alone over a synthetic population (the scale harness).
        return planner_scale(opts, n_apps, seconds);
    }
    // Worker count for the parallel sweeps (the ST offline search).
    if let Some(jobs) = opts.get("jobs") {
        match jobs.parse::<usize>() {
            Ok(n) if n > 0 => copart_parallel::set_jobs(Some(n)),
            _ => return Err(format!("option --jobs: cannot parse {jobs:?}")),
        }
    }
    if opts.get("state-dir").is_some() {
        // Crash-safe persistence: hand the run to the kill/resume
        // harness instead of the one-shot evaluation.
        return sim_run_persisted(opts, mix_kind, policy, n_apps, seconds);
    }

    let machine = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::build(mix_kind, n_apps, machine.n_cores);
    let specs = mix.specs();
    println!(
        "mix {} ({} apps × {} cores): {:?}",
        mix_kind.label(),
        specs.len(),
        mix.cores_per_app,
        specs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );

    eprintln!("measuring solo references and STREAM table...");
    let full = policies::solo_full_ips(&machine, &specs);
    let stream = StreamReference::compute(&machine, 4);

    let period_s = copart_core::CoPartParams::default().period.as_secs_f64();
    let total_periods = (seconds / period_s).ceil() as u32;
    let eval = EvalOptions {
        total_periods,
        measure_periods: (total_periods / 2).max(1),
        ..EvalOptions::default()
    };

    let trace_out = opts.get("trace-out");
    let want_metrics = opts.flag("metrics");
    let faults = opts
        .get("faults")
        .map(|spec| FaultPlan::parse(spec).map_err(|e| format!("option --faults: {e}")))
        .transpose()?;
    let dynamic = matches!(
        policy,
        PolicyKind::CatOnly | PolicyKind::MbaOnly | PolicyKind::CoPart | PolicyKind::LfocCluster
    );
    let r = if let Some(plan) = faults {
        if !dynamic {
            return Err(
                "--faults needs a dynamic policy (cat-only, mba-only, copart, lfoc)".into(),
            );
        }
        run_faulty(
            &machine,
            &specs,
            &full,
            &stream,
            policy,
            &eval,
            plan,
            trace_out,
            want_metrics,
        )?
    } else if trace_out.is_some() || want_metrics {
        if !dynamic {
            return Err(
                "--trace-out/--metrics need a dynamic policy (cat-only, mba-only, copart, lfoc)"
                    .into(),
            );
        }
        let recorder: Box<dyn Recorder + Send> = match trace_out {
            Some(path) => Box::new(
                JsonlRecorder::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            ),
            // Metrics are collected by the runtime unconditionally; no
            // recorder needed when only --metrics was asked for.
            None => Box::new(NullRecorder),
        };
        let (r, mut recorder, snapshot) = policies::evaluate_policy_traced(
            &machine, &specs, &full, &stream, policy, &eval, recorder,
        );
        recorder
            .flush()
            .map_err(|e| format!("flushing trace: {e}"))?;
        if let Some(path) = trace_out {
            eprintln!("trace written to {path}");
        }
        if want_metrics {
            println!("\nmetrics:");
            print!("{snapshot}");
        }
        r
    } else {
        policies::evaluate_policy(&machine, &specs, &full, &stream, policy, &eval)
    };

    println!(
        "\npolicy {} over {:.0} virtual seconds:",
        policy.label(),
        seconds
    );
    println!("  unfairness (σ/μ of slowdowns): {:.4}", r.unfairness);
    println!("  throughput (geomean IPS):      {:.3e}", r.throughput);
    for (spec, slowdown) in specs.iter().zip(&r.slowdowns) {
        println!("  {:<16} slowdown {slowdown:.3}", spec.name);
    }
    Ok(())
}

/// The `--state-dir` path of `sim-run`: the crash-safe kill/resume
/// harness. The run snapshots every `--snapshot-every` epochs and logs
/// every epoch in between; `--kill-at-epoch K` stops dead after K
/// epochs (no final snapshot — a simulated SIGKILL), and `--resume`
/// recovers from the state directory and continues, extending the trace
/// to bytes identical with an uninterrupted run.
fn sim_run_persisted(
    opts: &Options,
    mix: MixKind,
    policy: PolicyKind,
    n_apps: usize,
    seconds: f64,
) -> Result<(), String> {
    let state_dir = PathBuf::from(opts.required("state-dir")?);
    std::fs::create_dir_all(&state_dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;
    let seed: u64 = opts.number("seed", copart_core::CoPartParams::default().seed)?;
    let faults = opts
        .get("faults")
        .map(|spec| FaultPlan::parse(spec).map_err(|e| format!("option --faults: {e}")))
        .transpose()?;
    let scenario = Scenario::new(mix, n_apps, policy, seed, faults)?;

    let period_s = copart_core::CoPartParams::default().period.as_secs_f64();
    let default_epochs = ((seconds / period_s).ceil() as u64).max(1);
    let epochs: u64 = opts.number("epochs", default_epochs)?;
    if epochs == 0 {
        return Err("--epochs must be positive".into());
    }
    let snapshot_every: u64 = opts.number("snapshot-every", 16u64)?;
    let kill_at: Option<u64> = opts
        .get("kill-at-epoch")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("option --kill-at-epoch: cannot parse {s:?}"))
        })
        .transpose()?;
    let trace_path = opts
        .get("trace-out")
        .map(PathBuf::from)
        .unwrap_or_else(|| state_dir.join("trace.jsonl"));

    let outcome = copart_serve::harness_run(
        &scenario,
        epochs,
        kill_at,
        &state_dir,
        snapshot_every,
        &trace_path,
        opts.flag("resume"),
        &[],
    )?;
    if outcome.killed {
        println!(
            "killed at epoch {} of {epochs}; state in {} (rerun with --resume to finish)",
            outcome.epochs_done,
            state_dir.display()
        );
    } else {
        println!(
            "run complete: {} epochs, trace {}, state {}",
            outcome.epochs_done,
            trace_path.display(),
            state_dir.display()
        );
    }
    if opts.flag("metrics") {
        println!("\nmetrics:");
        print!("{}", outcome.metrics);
    }
    Ok(())
}

/// The `--apps 7..4096` path of `sim-run`: no machine fits that many
/// CLOS groups, so the planner runs solo over a deterministic synthetic
/// population (see `copart_core::scale`), reporting per-epoch planning
/// latency against the paper's ~1 ms epoch budget.
fn planner_scale(opts: &Options, n_apps: usize, seconds: f64) -> Result<(), String> {
    let period_s = copart_core::CoPartParams::default().period.as_secs_f64();
    let epochs = ((seconds / period_s).ceil() as u32).max(1);
    let seed: u64 = opts.number("seed", copart_core::CoPartParams::default().seed)?;
    let churn: f64 = opts.number("churn", 0.02f64)?;
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be within [0, 1]".into());
    }
    let population = match opts.get("population").unwrap_or("uniform") {
        "uniform" => ScalePopulation::Uniform,
        "fleet" => ScalePopulation::FleetMix,
        other => return Err(format!("unknown population {other:?} (uniform or fleet)")),
    };
    let cfg = ScaleConfig {
        churn,
        population,
        ..ScaleConfig::new(n_apps, epochs, seed)
    };
    println!(
        "planner-scale run: {n_apps} synthetic apps ({} population), {epochs} epochs, seed {seed:#x}",
        match population {
            ScalePopulation::Uniform => "uniform",
            ScalePopulation::FleetMix => "zipf fleet-mix",
        }
    );
    let r = run_planner_scale(&cfg);
    println!(
        "  decisions: {} transfers, {} θ-retries, {} converges",
        r.transfers, r.theta_retries, r.converges
    );
    println!("  matching rounds: {}", r.matching_rounds);
    println!(
        "  plan latency: p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms (budget ~1 ms/epoch)",
        r.plan_ns_p50 as f64 / 1e6,
        r.plan_ns_p99 as f64 / 1e6,
        r.plan_ns_max as f64 / 1e6
    );
    println!(
        "  role cache: {} hits, {} misses",
        r.role_cache_hits, r.role_cache_misses
    );
    println!("  decision digest: {:#018x}", r.digest);
    Ok(())
}

/// The `--faults` variant of the traced evaluation: the same dynamic
/// policy and controller configuration, but with the simulator wrapped
/// in `copart-faults`' deterministic injector. Ground truth reads go
/// through [`FaultyBackend::inner_mut`] so the fairness measurement
/// stays exact even when the controller's own view is degraded.
#[allow(clippy::too_many_arguments)]
fn run_faulty(
    machine: &MachineConfig,
    specs: &[AppSpec],
    full: &[f64],
    stream: &StreamReference,
    policy: PolicyKind,
    eval: &EvalOptions,
    plan: FaultPlan,
    trace_out: Option<&str>,
    want_metrics: bool,
) -> Result<policies::EvalResult, String> {
    let params = copart_core::CoPartParams {
        seed: eval.seed,
        ..copart_core::CoPartParams::default()
    };
    let mut backend = SimBackend::new(Machine::new(machine.clone()));
    let named: Vec<(ClosId, String)> = specs
        .iter()
        .map(|s| {
            let g = backend
                .add_workload(s.clone())
                .expect("mix fits the machine");
            (g, s.name.clone())
        })
        .collect();
    let groups: Vec<ClosId> = named.iter().map(|(g, _)| *g).collect();
    let cfg = policies::dynamic_runtime_config(machine, specs.len(), stream, policy, &params);
    let faulty = FaultyBackend::new(backend, plan);
    let mut runtime = ConsolidationRuntime::new(faulty, named, cfg)
        .map_err(|e| format!("initial partition apply failed under faults: {e}"))?;
    let recorder: Box<dyn Recorder + Send> = match trace_out {
        Some(path) => {
            Box::new(JsonlRecorder::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
        }
        None => Box::new(NullRecorder),
    };
    runtime.set_recorder(recorder);
    // A vanished group or a run of busy writes outlasting the bounded
    // retries aborts a whole profiling pass; give it a few passes.
    let mut profiled = false;
    for attempt in 1..=5 {
        match runtime.profile() {
            Ok(()) => {
                profiled = true;
                break;
            }
            Err(e) => eprintln!("profiling attempt {attempt} failed under faults: {e}; retrying"),
        }
    }
    if !profiled {
        return Err("profiling did not survive the fault plan (5 attempts)".into());
    }
    let (r, mut runtime) =
        policies::evaluate_runtime_traced(runtime, &groups, full, policy, eval, |b, g| {
            b.inner_mut().read_counters(g).expect("group is live")
        })
        .map_err(|e| format!("consolidation run failed under faults: {e}"))?;
    let snapshot = runtime.metrics_snapshot();
    let stats = runtime.backend().stats();
    let mut recorder = runtime.set_recorder(Box::new(NullRecorder));
    recorder
        .flush()
        .map_err(|e| format!("flushing trace: {e}"))?;
    if let Some(path) = trace_out {
        eprintln!("trace written to {path}");
    }
    eprintln!(
        "faults injected: {} (dropouts {}, CAT writes {}, MBA writes {}, vanishes {}, clock stalls {})",
        stats.total(),
        stats.dropouts,
        stats.cbm_write_faults,
        stats.mba_write_faults,
        stats.vanishes,
        stats.clock_stalls
    );
    if want_metrics {
        println!("\nmetrics:");
        print!("{snapshot}");
    }
    Ok(r)
}

/// `copart trace-check`: validate a JSONL decision trace — it must
/// parse, epoch numbers must be gapless from 0, and time must never
/// rewind (the invariants `tests/trace_observability.rs` asserts on
/// in-process runs, here for trace files any run wrote). The CI smoke
/// job points this at the traces `sim-run` and `repro fig12` emit.
pub fn trace_check(opts: &Options) -> Result<(), String> {
    let path = opts.required("path")?;
    let min_events: usize = opts.number("min-events", 1usize)?;
    let events = copart_telemetry::read_trace_file(path)
        .map_err(|e| format!("{path}: trace does not parse: {e}"))?;
    if events.len() < min_events {
        return Err(format!(
            "{path}: only {} events, expected at least {min_events}",
            events.len()
        ));
    }
    for (i, e) in events.iter().enumerate() {
        if e.epoch != i as u64 {
            return Err(format!(
                "{path}: event {i} has epoch {} — epoch numbers must be gapless from 0",
                e.epoch
            ));
        }
    }
    for (i, pair) in events.windows(2).enumerate() {
        if pair[1].time_ns < pair[0].time_ns {
            return Err(format!(
                "{path}: time rewinds at event {} ({} -> {} ns)",
                i + 1,
                pair[0].time_ns,
                pair[1].time_ns
            ));
        }
    }
    let profiled = events
        .iter()
        .filter(|e| e.decision == copart_telemetry::TraceDecision::Profiled)
        .count();
    if let Some(reference) = opts.get("reference") {
        check_reference(path, reference)?;
    }
    println!(
        "{path}: OK — {} events, epochs 0..{} gapless, {profiled} profiling probes",
        events.len(),
        events.len().saturating_sub(1),
    );
    Ok(())
}

/// The `--reference` mode of `trace-check`: the trace must be
/// byte-identical to a known-good trace — the determinism contract a
/// recovered run is held to (scripts/recovery.sh diffs a kill/resume
/// trace against its uninterrupted reference with this).
pub(crate) fn check_reference(path: &str, reference: &str) -> Result<(), String> {
    let got = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let want = std::fs::read(reference).map_err(|e| format!("{reference}: {e}"))?;
    if got == want {
        println!(
            "{path}: byte-identical to reference {reference} ({} bytes)",
            got.len()
        );
        return Ok(());
    }
    let got_lines: Vec<&[u8]> = got.split(|&b| b == b'\n').collect();
    let want_lines: Vec<&[u8]> = want.split(|&b| b == b'\n').collect();
    let line = got_lines
        .iter()
        .zip(want_lines.iter())
        .position(|(a, b)| a != b)
        .unwrap_or(got_lines.len().min(want_lines.len()));
    Err(format!(
        "{path}: differs from reference {reference} at line {} ({} vs {} bytes)",
        line + 1,
        got.len(),
        want.len()
    ))
}

/// `copart classify`: the §3.3 probes for one benchmark.
pub fn classify(opts: &Options) -> Result<(), String> {
    let bench = parse_bench(opts.required("bench")?)?;
    let machine = MachineConfig::xeon_gold_6130();
    let spec = bench.spec();
    eprintln!("probing {} (solo, 4 threads)...", spec.name);
    let (llc_deg, bw_deg) = measure::degradations(&machine, &spec);
    let category = measure::classify(&machine, &spec);
    let (ips, rates) = measure::measure_full(&machine, &spec);
    println!("benchmark {} ({})", bench.table2().short, spec.name);
    println!(
        "  category:        {category} (paper: {})",
        bench.category()
    );
    println!("  IPS (full):      {ips:.3e}");
    println!("  LLC accesses/s:  {:.3e}", rates.llc_accesses_per_sec);
    println!("  LLC misses/s:    {:.3e}", rates.llc_misses_per_sec);
    println!("  LLC degradation (11→1 ways):    {:.1}%", llc_deg * 100.0);
    println!("  BW degradation (100%→10% MBA):  {:.1}%", bw_deg * 100.0);
    if let Some(w) = measure::required_ways(&machine, &spec, 0.9) {
        println!("  ways for 90% of full perf:      {w}");
    }
    if let Some(l) = measure::required_mba(&machine, &spec, 0.9) {
        println!("  MBA level for 90% of full perf: {l}");
    }
    Ok(())
}
