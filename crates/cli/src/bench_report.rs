//! `copart bench-report` — pretty-print and diff `BENCH_*.json` perf
//! artifacts.
//!
//! With only `--current`, the artifact is printed as an aligned table.
//! With `--baseline`, every baseline field is gated against the current
//! run using rules keyed on the field's *name*, so the gate needs no
//! per-benchmark configuration:
//!
//! - string fields (`schema`, `*_digest`) must match byte-for-byte —
//!   a digest change means the planner's decisions changed;
//! - fields containing `allocs` are exact counts: current must not
//!   exceed baseline by more than 0.5 (one stray allocation fails CI);
//! - `*_per_sec` throughputs must stay ≥ baseline / tolerance;
//! - `*_ns` latencies must stay ≤ baseline × tolerance;
//! - anything else is informational (printed, never gated).
//!
//! The tolerance ratio defaults to 3.0 — wide enough for noisy shared
//! CI runners, tight enough to catch an accidental O(n²) — and can be
//! overridden with `--tolerance` or the `COPART_BENCH_TOLERANCE`
//! environment variable. `scripts/bench_gate.sh` drives this command
//! once per artifact; regenerate baselines with `UPDATE_BENCH=1`.

use copart_telemetry::json::Json;

use crate::args::Options;

/// Default latency/throughput tolerance ratio for the regression gate.
const DEFAULT_TOLERANCE: f64 = 3.0;

/// Allocation-count slack: exact gate, rounded measurement.
const ALLOC_SLACK: f64 = 0.5;

/// Entry point for `copart bench-report`.
pub fn bench_report(opts: &Options) -> Result<(), String> {
    let current_path = opts.required("current")?;
    let current = load_artifact(current_path)?;
    let Some(baseline_path) = opts.get("baseline") else {
        print!("{}", render(&current));
        return Ok(());
    };
    let baseline = load_artifact(baseline_path)?;
    let tolerance = match opts.get("tolerance") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("option --tolerance: cannot parse {v:?}"))?,
        None => match std::env::var("COPART_BENCH_TOLERANCE") {
            Ok(v) => v
                .parse()
                .map_err(|_| format!("COPART_BENCH_TOLERANCE: cannot parse {v:?}"))?,
            Err(_) => DEFAULT_TOLERANCE,
        },
    };
    if tolerance.is_nan() || tolerance < 1.0 {
        return Err(format!("tolerance must be >= 1.0, got {tolerance}"));
    }
    println!("comparing {current_path} against {baseline_path} (tolerance {tolerance}x)");
    let (report, regressions) = compare(&baseline, &current, tolerance);
    print!("{report}");
    if regressions > 0 {
        return Err(format!(
            "{regressions} perf regression(s) against {baseline_path}; \
             if intentional, re-bless with UPDATE_BENCH=1 scripts/bench_gate.sh"
        ));
    }
    println!("OK: no regressions");
    Ok(())
}

/// Loads a `BENCH_*.json` file as its ordered field list.
fn load_artifact(path: &str) -> Result<Vec<(String, Json)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match json {
        Json::Obj(fields) => Ok(fields),
        _ => Err(format!("{path}: artifact must be a JSON object")),
    }
}

/// Renders one artifact as an aligned key/value table.
fn render(fields: &[(String, Json)]) -> String {
    let width = fields.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in fields {
        match v {
            Json::Num(x) => out.push_str(&format!("{k:<width$}  {x:>14.1}\n")),
            Json::Str(s) => out.push_str(&format!("{k:<width$}  {s}\n")),
            other => out.push_str(&format!("{k:<width$}  {other:?}\n")),
        }
    }
    out
}

/// How one field is gated, decided from its name alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    /// Byte-for-byte string equality (schema, digests).
    Exact,
    /// Count: current ≤ baseline + [`ALLOC_SLACK`].
    Count,
    /// Latency: current ≤ baseline × tolerance.
    Latency,
    /// Throughput: current ≥ baseline / tolerance.
    Throughput,
    /// Printed, never gated.
    Info,
}

fn rule_for(key: &str, value: &Json) -> Rule {
    if matches!(value, Json::Str(_)) {
        Rule::Exact
    } else if key.contains("allocs") {
        Rule::Count
    } else if key.ends_with("_per_sec") {
        Rule::Throughput
    } else if key.ends_with("_ns") || key.contains("_ns_") {
        Rule::Latency
    } else {
        Rule::Info
    }
}

/// Diffs `current` against `baseline`; returns the human report and the
/// number of gated fields that regressed.
fn compare(
    baseline: &[(String, Json)],
    current: &[(String, Json)],
    tolerance: f64,
) -> (String, usize) {
    let mut out = String::new();
    let mut regressions = 0usize;
    let width = baseline
        .iter()
        .chain(current)
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(0);
    let lookup = |k: &str| current.iter().find(|(ck, _)| ck == k).map(|(_, v)| v);
    for (key, base) in baseline {
        let Some(cur) = lookup(key) else {
            regressions += 1;
            out.push_str(&format!("FAIL {key:<width$}  missing from current run\n"));
            continue;
        };
        let rule = rule_for(key, base);
        match (rule, base, cur) {
            (Rule::Exact, Json::Str(b), Json::Str(c)) => {
                if b == c {
                    out.push_str(&format!("ok   {key:<width$}  {c}\n"));
                } else {
                    regressions += 1;
                    out.push_str(&format!("FAIL {key:<width$}  {c} (baseline {b})\n"));
                }
            }
            (_, Json::Num(b), Json::Num(c)) => {
                let (pass, bound) = match rule {
                    Rule::Count => (*c <= b + ALLOC_SLACK, format!("<= {:.1}", b + ALLOC_SLACK)),
                    Rule::Latency => (*c <= b * tolerance, format!("<= {:.1}", b * tolerance)),
                    Rule::Throughput => (*c >= b / tolerance, format!(">= {:.1}", b / tolerance)),
                    Rule::Exact | Rule::Info => (true, String::new()),
                };
                let ratio = if *b != 0.0 { c / b } else { f64::NAN };
                if rule == Rule::Info {
                    out.push_str(&format!(
                        "info {key:<width$}  {c:>14.1} (baseline {b:.1}, ungated)\n"
                    ));
                } else if pass {
                    out.push_str(&format!(
                        "ok   {key:<width$}  {c:>14.1} (baseline {b:.1}, {ratio:.2}x)\n"
                    ));
                } else {
                    regressions += 1;
                    out.push_str(&format!(
                        "FAIL {key:<width$}  {c:>14.1} (baseline {b:.1}, {ratio:.2}x, \
                         need {bound})\n"
                    ));
                }
            }
            _ => {
                regressions += 1;
                out.push_str(&format!(
                    "FAIL {key:<width$}  type changed ({base:?} -> {cur:?})\n"
                ));
            }
        }
    }
    for (key, _) in current {
        if !baseline.iter().any(|(bk, _)| bk == key) {
            out.push_str(&format!(
                "new  {key:<width$}  (not in baseline; bless to start gating)\n"
            ));
        }
    }
    (out, regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(pairs: &[(&str, Json)]) -> Vec<(String, Json)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = fields(&[
            ("schema", Json::Str("s/v1".into())),
            ("epoch_ns_p50", Json::Num(100.0)),
            ("allocs_per_epoch_steady", Json::Num(0.1)),
            ("chain_indexed_64_per_sec", Json::Num(1e6)),
        ]);
        let (report, regressions) = compare(&a, &a, 3.0);
        assert_eq!(regressions, 0, "{report}");
    }

    #[test]
    fn latency_within_tolerance_passes_and_beyond_fails() {
        let base = fields(&[("x_ns", Json::Num(100.0))]);
        let fast = fields(&[("x_ns", Json::Num(250.0))]);
        let slow = fields(&[("x_ns", Json::Num(301.0))]);
        assert_eq!(compare(&base, &fast, 3.0).1, 0);
        assert_eq!(compare(&base, &slow, 3.0).1, 1);
        // Latency improvements never fail, however large.
        assert_eq!(
            compare(&base, &fields(&[("x_ns", Json::Num(1.0))]), 3.0).1,
            0
        );
    }

    #[test]
    fn alloc_counts_are_gated_exactly() {
        let base = fields(&[("allocs_per_epoch_steady", Json::Num(0.1))]);
        let ok = fields(&[("allocs_per_epoch_steady", Json::Num(0.5))]);
        let bad = fields(&[("allocs_per_epoch_steady", Json::Num(1.0))]);
        assert_eq!(compare(&base, &ok, 3.0).1, 0);
        assert_eq!(compare(&base, &bad, 3.0).1, 1);
    }

    #[test]
    fn throughput_drops_fail() {
        let base = fields(&[("chain_indexed_1024_per_sec", Json::Num(9000.0))]);
        let ok = fields(&[("chain_indexed_1024_per_sec", Json::Num(3500.0))]);
        let bad = fields(&[("chain_indexed_1024_per_sec", Json::Num(2000.0))]);
        assert_eq!(compare(&base, &ok, 3.0).1, 0);
        assert_eq!(compare(&base, &bad, 3.0).1, 1);
    }

    #[test]
    fn digest_changes_and_missing_fields_fail() {
        let base = fields(&[
            ("scale_1000_digest", Json::Str("0xaa".into())),
            ("epoch_ns_p50", Json::Num(10.0)),
        ]);
        let drifted = fields(&[
            ("scale_1000_digest", Json::Str("0xbb".into())),
            ("epoch_ns_p50", Json::Num(10.0)),
        ]);
        assert_eq!(compare(&base, &drifted, 3.0).1, 1);
        let missing = fields(&[("scale_1000_digest", Json::Str("0xaa".into()))]);
        assert_eq!(compare(&base, &missing, 3.0).1, 1);
    }

    #[test]
    fn ungated_and_new_fields_are_informational() {
        let base = fields(&[("scale_1000_matching_rounds", Json::Num(100.0))]);
        let cur = fields(&[
            ("scale_1000_matching_rounds", Json::Num(9999.0)),
            ("brand_new_ns", Json::Num(1.0)),
        ]);
        let (report, regressions) = compare(&base, &cur, 3.0);
        assert_eq!(regressions, 0, "{report}");
        assert!(report.contains("info"));
        assert!(report.contains("new "));
    }
}
