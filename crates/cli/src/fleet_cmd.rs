//! `copart fleet-run` — drive a multi-node fleet on the simulated
//! testbed: N per-node CoPart runtimes under one deterministic
//! controller (placement, rebalancing migrations, fleet-wide metrics).

use std::path::PathBuf;

use copart_faults::ScopedFaultPlan;
use copart_fleet::{check_fleet_trace, run_fleet, FleetConfig};

use crate::args::Options;

/// `copart fleet-run`: one fleet consolidation run.
pub fn fleet_run(opts: &Options) -> Result<(), String> {
    let nodes: usize = opts.number("nodes", 4usize)?;
    let apps: u64 = opts.number("apps", 16u64)?;
    let seed: u64 = opts.number("seed", 42u64)?;
    let mut cfg = FleetConfig::new(nodes, apps, seed);
    cfg.horizon = opts.number("epochs", cfg.horizon)?;
    cfg.capacity = opts.number("capacity", cfg.capacity)?;
    cfg.rebalance.threshold = opts.number("rebalance-threshold", cfg.rebalance.threshold)?;
    cfg.rebalance.patience = opts.number("rebalance-patience", cfg.rebalance.patience)?;
    cfg.faults = opts
        .get("faults")
        .map(|spec| ScopedFaultPlan::parse(spec).map_err(|e| format!("option --faults: {e}")))
        .transpose()?;
    cfg.state_dir = opts.get("state-dir").map(PathBuf::from);
    if let Some(dir) = &cfg.state_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", dir.display()))?;
    }
    if let Some(jobs) = opts.get("jobs") {
        match jobs.parse::<usize>() {
            Ok(n) if n > 0 => copart_parallel::set_jobs(Some(n)),
            _ => return Err(format!("option --jobs: cannot parse {jobs:?}")),
        }
    }

    let out = run_fleet(&cfg)?;

    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, &out.trace).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("fleet trace written to {path}");
    }
    if let Some(path) = opts.get("tickets-out") {
        let mut body = out.tickets.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("migration tickets written to {path}");
    }

    let stats = check_fleet_trace(&out.trace)
        .map_err(|e| format!("fleet trace failed its own checker: {e}"))?;
    let agg = &out.aggregator;
    println!(
        "fleet run: {nodes} nodes × capacity {}, {apps} tenants, {} epochs, seed {seed:#x}",
        cfg.capacity, cfg.horizon
    );
    println!(
        "  placements: {} ({} deferrals), departures: {}, migrations: {}",
        agg.placements, agg.deferrals, agg.departures, agg.migrations
    );
    println!(
        "  node boots: {}, teardowns: {}, final active nodes: {} running {} apps",
        agg.node_boots,
        agg.node_teardowns,
        agg.active_nodes(),
        agg.running_apps()
    );
    println!(
        "  unfairness (per-node CoV of slowdowns): p50 {:.4}, p99 {:.4}, max {:.4}",
        agg.unfairness.p50, agg.unfairness.p99, agg.unfairness.max
    );
    println!(
        "  slowdown: p50 {:.3}, p99 {:.3}, max {:.3}",
        agg.slowdown.p50, agg.slowdown.p99, agg.slowdown.max
    );
    println!(
        "  trace: {} events over {} epochs",
        stats.events, stats.epochs
    );
    if out.snapshots_written > 0 {
        println!(
            "  state: {} node snapshots in {}",
            out.snapshots_written,
            cfg.state_dir
                .as_deref()
                .unwrap_or(std::path::Path::new("?"))
                .display()
        );
    }
    if opts.flag("metrics") {
        println!("\nmetrics:");
        println!("{}", out.metrics_json);
    }
    Ok(())
}

/// The `--fleet` mode of `copart trace-check`: structural validation of
/// a fleet JSONL trace by full occupancy replay (see
/// [`copart_fleet::check_fleet_trace`]).
pub fn fleet_trace_check(opts: &Options) -> Result<(), String> {
    let path = opts.required("path")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read trace: {e}"))?;
    let stats = check_fleet_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    let min_events: usize = opts.number("min-events", 1usize)?;
    if stats.events < min_events {
        return Err(format!(
            "{path}: only {} events, expected at least {min_events}",
            stats.events
        ));
    }
    if let Some(reference) = opts.get("reference") {
        crate::sim_cmd::check_reference(path, reference)?;
    }
    println!(
        "{path}: OK — {} events, {} epochs, {} placements, {} departures, {} migrations, {} deferrals",
        stats.events, stats.epochs, stats.placements, stats.departures, stats.migrations,
        stats.deferrals
    );
    Ok(())
}
