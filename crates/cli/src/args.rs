//! Minimal `--key value` option parsing (no external dependencies).

use std::collections::{BTreeMap, BTreeSet};

/// Parsed `--key value` pairs plus value-less boolean flags.
#[derive(Debug, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
    flags: BTreeSet<String>,
}

impl Options {
    /// Parses an argument list where every name in `boolean` is a
    /// value-less flag (`--metrics`) and everything else is a
    /// `--key value` pair.
    pub fn parse_with_flags(args: &[String], boolean: &[&str]) -> Result<Options, String> {
        let mut values = BTreeMap::new();
        let mut flags = BTreeSet::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected an option, found {key:?}"));
            };
            if boolean.contains(&name) {
                if !flags.insert(name.to_string()) {
                    return Err(format!("flag --{name} given twice"));
                }
                continue;
            }
            let Some(value) = it.next() else {
                return Err(format!("option --{name} needs a value"));
            };
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("option --{name} given twice"));
            }
        }
        Ok(Options { values, flags })
    }

    /// The raw value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether the boolean flag `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The value of a required option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// A parsed numeric option with a default.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Flag-free parse, the common case in these tests.
    fn parse(args: &[String]) -> Result<Options, String> {
        Options::parse_with_flags(args, &[])
    }

    #[test]
    fn parses_pairs() {
        let o = parse(&sv(&["--mix", "h-llc", "--apps", "5"])).unwrap();
        assert_eq!(o.get("mix"), Some("h-llc"));
        assert_eq!(o.number::<u32>("apps", 4).unwrap(), 5);
        assert_eq!(o.number::<u32>("seconds", 30).unwrap(), 30);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&sv(&["mix"])).is_err());
        assert!(parse(&sv(&["--mix"])).is_err());
        assert!(parse(&sv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn required_and_bad_numbers() {
        let o = parse(&sv(&["--apps", "many"])).unwrap();
        assert!(o.required("root").is_err());
        assert!(o.number::<u32>("apps", 4).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let o =
            Options::parse_with_flags(&sv(&["--metrics", "--mix", "h-llc"]), &["metrics"]).unwrap();
        assert!(o.flag("metrics"));
        assert!(!o.flag("absent"));
        assert_eq!(o.get("mix"), Some("h-llc"));
        // A flag is not a value option and vice versa.
        assert_eq!(o.get("metrics"), None);
        assert!(Options::parse_with_flags(&sv(&["--metrics", "--metrics"]), &["metrics"]).is_err());
        // Without the declaration, the old strict behavior holds.
        assert!(parse(&sv(&["--metrics"])).is_err());
    }
}
