//! Minimal `--key value` option parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
}

impl Options {
    /// Parses a `--key value --key2 value2` argument list.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected an option, found {key:?}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("option --{name} needs a value"));
            };
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("option --{name} given twice"));
            }
        }
        Ok(Options { values })
    }

    /// The raw value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of a required option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// A parsed numeric option with a default.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let o = Options::parse(&sv(&["--mix", "h-llc", "--apps", "5"])).unwrap();
        assert_eq!(o.get("mix"), Some("h-llc"));
        assert_eq!(o.number::<u32>("apps", 4).unwrap(), 5);
        assert_eq!(o.number::<u32>("seconds", 30).unwrap(), 30);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Options::parse(&sv(&["mix"])).is_err());
        assert!(Options::parse(&sv(&["--mix"])).is_err());
        assert!(Options::parse(&sv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn required_and_bad_numbers() {
        let o = Options::parse(&sv(&["--apps", "many"])).unwrap();
        assert!(o.required("root").is_err());
        assert!(o.number::<u32>("apps", 4).is_err());
    }
}
