//! Daemon commands: `copart serve` (the always-on control daemon) and
//! `copart load` (the API load generator).

use copart_faults::FaultPlan;
use copart_serve::loadgen::{self, LoadConfig};
use copart_serve::{parse_dynamic_policy, Scenario, ServeConfig};
use std::time::Duration;

use crate::args::Options;
use crate::sim_cmd::parse_mix;

/// `copart serve`: boot the daemon and block until `POST /shutdown`.
pub fn serve(opts: &Options) -> Result<(), String> {
    let mix = parse_mix(opts.get("mix").unwrap_or("h-both"))?;
    let policy = parse_dynamic_policy(opts.get("policy").unwrap_or("copart"))?;
    let n_apps: usize = opts.number("apps", 4usize)?;
    let seed: u64 = opts.number("seed", 42u64)?;
    let faults = opts
        .get("faults")
        .map(|spec| FaultPlan::parse(spec).map_err(|e| format!("option --faults: {e}")))
        .transpose()?;
    let scenario = Scenario::new(mix, n_apps, policy, seed, faults)?;

    let port: u16 = opts.number("port", 0u16)?;
    let tick_ms: u64 = opts.number("tick-ms", 25u64)?;
    let epochs: u64 = opts.number("epochs", 0u64)?;
    let cfg = ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        tick: Duration::from_millis(tick_ms),
        max_epochs: (epochs > 0).then_some(epochs),
        trace_dir: opts.get("trace-dir").map(Into::into),
        state_dir: opts.get("state-dir").map(Into::into),
        snapshot_every: opts.number("snapshot-every", ServeConfig::default().snapshot_every)?,
        ..ServeConfig::default()
    };

    eprintln!(
        "booting: mix {} × {n_apps} apps, policy {}, seed {seed} (profiling...)",
        mix.label(),
        policy.label()
    );
    let handle = copart_serve::serve_scenario(&scenario, cfg)?;
    // scripts/loadtest.sh parses this line for the ephemeral port.
    println!("copart serve listening on http://{}", handle.addr());
    let report = handle.join();
    let misses = report.snapshot.counter("epoch_deadline_misses");
    println!(
        "copart serve drained: {} epochs, {} requests served, {} deadline misses",
        report.epochs,
        report.snapshot.counter("http_requests"),
        misses
    );
    Ok(())
}

/// `copart load`: hammer a daemon's read API and report what came back.
pub fn load(opts: &Options) -> Result<(), String> {
    let addr = opts.required("addr")?;
    let cfg = LoadConfig {
        requests: opts.number("requests", 10_000u64)?,
        concurrency: opts.number("concurrency", 8usize)?,
    };
    if cfg.requests == 0 {
        return Err("--requests must be positive".into());
    }
    let started = std::time::Instant::now();
    let report = loadgen::run(addr, &cfg)?;
    let elapsed = started.elapsed();
    let rate = report.sent as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "sent {} requests over {} connections in {:.2}s ({rate:.0} req/s): {} 2xx, {} failures",
        report.sent,
        cfg.concurrency,
        elapsed.as_secs_f64(),
        report.ok2xx,
        report.failures
    );
    // The daemon's own view: did the control loop hold its epoch grid?
    match loadgen::fetch(addr, "GET", "/metrics", "") {
        Ok((200, body)) => {
            let misses = body
                .lines()
                .find_map(|l| l.strip_prefix("copart_epoch_deadline_misses_total "))
                .unwrap_or("?");
            println!("daemon epoch deadline misses: {misses}");
        }
        Ok((status, _)) => println!("daemon /metrics answered {status}"),
        Err(e) => println!("daemon /metrics unreachable after the run: {e}"),
    }
    if report.failures > 0 {
        return Err(format!(
            "{} of {} requests failed",
            report.failures, report.sent
        ));
    }
    Ok(())
}
