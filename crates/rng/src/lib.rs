//! Tiny deterministic pseudo-random number generator for the CoPart
//! workspace.
//!
//! The reproduction must build and test **offline** — no crates.io
//! access — so the external `rand` dependency is replaced by this
//! self-contained module. The generator is an
//! [xorshift64*](https://en.wikipedia.org/wiki/Xorshift#xorshift*)
//! core whose state is initialised from the user seed through one round
//! of SplitMix64, the standard recipe for turning low-entropy seeds
//! (0, 1, small integers…) into well-mixed 64-bit states.
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — the same seed yields the same stream on every
//!    platform and every run; experiment seeds in `CoPartParams` and
//!    `EvalOptions` stay meaningful.
//! 2. **API compatibility** — the handful of `rand` calls used by the
//!    workspace (`seed_from_u64`, `gen_range` over integer and float
//!    ranges, `gen_bool`, `shuffle`) keep their shape, so call sites
//!    port with a type swap.
//! 3. **No dependencies** — `std` only.
//!
//! This is *not* a cryptographic generator; it drives simulated
//! workload mixes and the controller's θ-retry restarts, where speed
//! and reproducibility matter and adversarial prediction does not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One round of SplitMix64: turns an arbitrary 64-bit seed into a
/// well-mixed state word. Public so tests and seed-derivation helpers
/// can reuse it.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent, well-mixed child seed from a master seed and
/// a stream index.
///
/// Two SplitMix64 rounds over `master ⊕ mix(stream)` decorrelate adjacent
/// stream indices even for tiny master seeds, so consumers that fan one
/// experiment seed out into many per-task streams (the parallel sweep
/// engine, the `copart-check` case runner) get statistically independent
/// generators whose draw sequences depend only on `(master, stream)` —
/// never on scheduling or worker count.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = stream;
    let mixed = splitmix64(&mut s);
    let mut t = master ^ mixed;
    splitmix64(&mut t)
}

/// A seedable xorshift64* generator.
///
/// ```
/// use copart_rng::XorShift64Star;
///
/// let mut rng = XorShift64Star::seed_from_u64(42);
/// let a = rng.gen_range(0..10u32);
/// assert!(a < 10);
/// let p = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&p));
///
/// // Same seed, same stream.
/// let mut rng2 = XorShift64Star::seed_from_u64(42);
/// assert_eq!(rng2.gen_range(0..10u32), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a 64-bit seed. Any seed is valid —
    /// SplitMix64 expansion guarantees a non-zero, well-mixed internal
    /// state even for seed 0.
    pub fn seed_from_u64(seed: u64) -> XorShift64Star {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            // xorshift's single forbidden state; remap deterministically.
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64Star { state }
    }

    /// A generator on the derived stream `(master, stream)` — shorthand
    /// for `seed_from_u64(derive_seed(master, stream))`.
    pub fn for_stream(master: u64, stream: u64) -> XorShift64Star {
        XorShift64Star::seed_from_u64(derive_seed(master, stream))
    }

    /// The raw internal state word — the generator's complete stream
    /// position, for snapshot/restore. Feed it back through
    /// [`XorShift64Star::from_state`] to resume the exact draw sequence.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at a previously captured stream position.
    ///
    /// Unlike [`XorShift64Star::seed_from_u64`], the word is adopted as
    /// the internal state directly (no SplitMix64 expansion), so
    /// `from_state(g.state())` continues `g`'s stream exactly. A zero
    /// word — xorshift's single forbidden state, which
    /// [`XorShift64Star::state`] can never return — is remapped the same
    /// way seeding remaps it, keeping the constructor total.
    #[inline]
    pub fn from_state(state: u64) -> XorShift64Star {
        XorShift64Star {
            state: if state == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                state
            },
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`. Uses the widening
    /// multiply-shift reduction (Lemire); the bias for the bounds used
    /// in this workspace (≪ 2⁶⁴) is immaterial.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is 0.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform sample from `range` — accepts the same half-open and
    /// inclusive integer ranges plus half-open `f64` ranges that the
    /// old `rand::Rng::gen_range` calls used.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice, driven by this generator.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Ranges [`XorShift64Star::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut XorShift64Star) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut XorShift64Star) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.next_below(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut XorShift64Star) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start + rng.next_below(span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut XorShift64Star) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64Star::seed_from_u64(0xDEAD_BEEF);
        let mut b = XorShift64Star::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64Star::seed_from_u64(1);
        let mut b = XorShift64Star::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64Star::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = XorShift64Star::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=6usize);
            assert!((1..=6).contains(&y));
            let z = rng.gen_range(0..3u8);
            assert!(z < 3);
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = XorShift64Star::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..6 should appear: {seen:?}"
        );
        let mut seen_inc = [false; 4];
        for _ in 0..500 {
            seen_inc[rng.gen_range(1..=4usize) - 1] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn float_range_bounds_and_spread() {
        let mut rng = XorShift64Star::seed_from_u64(13);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..2000 {
            let x = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 2.3, "lower tail reached: {lo}");
        assert!(hi > 4.7, "upper tail reached: {hi}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = XorShift64Star::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~2500 expected, got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift64Star::seed_from_u64(19);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        // With 32 elements the identity permutation is astronomically
        // unlikely.
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        // Adjacent streams of the same master diverge, as do the same
        // streams of different masters.
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
        let mut a = XorShift64Star::for_stream(1, 0);
        let mut b = XorShift64Star::for_stream(1, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = XorShift64Star::seed_from_u64(0x5EED);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = XorShift64Star::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Zero is remapped, never adopted (it would wedge the stream).
        let mut z = XorShift64Star::from_state(0);
        assert_ne!(z.state(), 0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = XorShift64Star::seed_from_u64(23);
        let _ = rng.gen_range(5..5u32);
    }
}
