//! Trace plumbing for the daemon: a thread-shared flight recorder, a
//! rotating JSONL file sink, and a tee that feeds both.
//!
//! The control thread owns the runtime and therefore the recorder; the
//! HTTP workers only ever *read* the ring (for `GET /trace?tail=N`), and
//! the background trace-rotate worker only swaps files between epochs'
//! writes. Both cross-thread structures are small `Arc<Mutex<_>>`
//! handles whose locks are held for one event or one rotation at a time.

use copart_telemetry::{JsonlRecorder, Recorder, RingRecorder, TraceEvent};
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning: trace sinks hold no
/// mid-update invariants worth abandoning the daemon over.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A [`RingRecorder`] behind an `Arc<Mutex<_>>`: the control thread
/// records into it while HTTP workers serve tail reads from it.
///
/// # Examples
///
/// ```
/// use copart_serve::trace::SharedRing;
/// let ring = SharedRing::new(128);
/// let reader = ring.clone();
/// assert_eq!(reader.tail(10).len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedRing {
    inner: Arc<Mutex<RingRecorder>>,
}

impl SharedRing {
    /// A shared ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> SharedRing {
        SharedRing {
            inner: Arc::new(Mutex::new(RingRecorder::new(capacity))),
        }
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        lock_unpoisoned(&self.inner).is_empty()
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let ring = lock_unpoisoned(&self.inner);
        let skip = ring.len().saturating_sub(n);
        ring.events().skip(skip).cloned().collect()
    }

    /// The most recent `n` events as JSONL (one event per line, oldest
    /// first), the `GET /trace` wire format.
    pub fn tail_jsonl(&self, n: usize) -> String {
        let mut out = String::new();
        for event in self.tail(n) {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Every retained event, oldest first.
    pub fn all(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.inner).events().cloned().collect()
    }
}

impl Recorder for SharedRing {
    fn record(&mut self, event: &TraceEvent) {
        lock_unpoisoned(&self.inner).record(event);
    }
}

/// The shared state behind a [`RotatingJsonl`] handle.
#[derive(Debug)]
struct RotatingInner {
    dir: PathBuf,
    prefix: String,
    max_events_per_file: u64,
    index: u32,
    sink: JsonlRecorder<BufWriter<File>>,
    rotations: u64,
}

impl RotatingInner {
    fn path(dir: &std::path::Path, prefix: &str, index: u32) -> PathBuf {
        dir.join(format!("{prefix}-{index:04}.jsonl"))
    }
}

/// A JSONL trace sink that writes `prefix-0000.jsonl`, `prefix-0001.jsonl`,
/// ... in a directory, switching files when the background trace-rotate
/// worker finds the current one full.
///
/// Rotation is *not* checked on the write path — the control thread's
/// record stays a plain buffered write — so a file may exceed the cap by
/// however many events land between two worker ticks.
#[derive(Debug, Clone)]
pub struct RotatingJsonl {
    inner: Arc<Mutex<RotatingInner>>,
}

impl RotatingJsonl {
    /// Opens the first trace file (`prefix-0000.jsonl`) in `dir`,
    /// creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Fails when the directory or the first file cannot be created.
    pub fn create(
        dir: impl Into<PathBuf>,
        prefix: &str,
        max_events_per_file: u64,
    ) -> io::Result<RotatingJsonl> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let sink = JsonlRecorder::create(RotatingInner::path(&dir, prefix, 0))?;
        Ok(RotatingJsonl {
            inner: Arc::new(Mutex::new(RotatingInner {
                dir,
                prefix: prefix.to_string(),
                max_events_per_file: max_events_per_file.max(1),
                index: 0,
                sink,
                rotations: 0,
            })),
        })
    }

    /// Reopens a rotated trace directory for a recovered daemon: keeps
    /// the byte-exact prefix of events below `below_epoch` (replay
    /// re-emits the rest), drops any torn tail, repacks the kept events
    /// at the file cap, and leaves the last file open for appending.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be scanned or the files cannot
    /// be rewritten.
    pub fn resume(
        dir: impl Into<PathBuf>,
        prefix: &str,
        max_events_per_file: u64,
        below_epoch: u64,
    ) -> io::Result<RotatingJsonl> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let max = max_events_per_file.max(1) as usize;
        // The durable prefix: parsed events below the boundary, in file
        // order. The first torn line or replayed epoch ends it — and
        // everything after it (including later files) is regenerated.
        let mut kept: Vec<String> = Vec::new();
        let mut index = 0u32;
        'scan: loop {
            let text = match std::fs::read_to_string(RotatingInner::path(&dir, prefix, index)) {
                Ok(t) => t,
                Err(e) if e.kind() == io::ErrorKind::NotFound => break,
                Err(e) => return Err(e),
            };
            for line in text.lines() {
                match TraceEvent::from_json_line(line) {
                    Ok(e) if e.epoch < below_epoch => kept.push(line.to_string()),
                    _ => break 'scan,
                }
            }
            index += 1;
        }
        let file_prefix = format!("{prefix}-");
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&file_prefix) && name.ends_with(".jsonl") {
                std::fs::remove_file(entry.path())?;
            }
        }
        // Repack: full files at exactly the cap, then the open tail
        // file. Re-recording the tail keeps the open sink's event count
        // honest, so the next rotation happens at the right size.
        let full = (kept.len() / max) * max;
        for (i, chunk) in kept[..full].chunks(max).enumerate() {
            let mut text = String::with_capacity(chunk.iter().map(|l| l.len() + 1).sum());
            for line in chunk {
                text.push_str(line);
                text.push('\n');
            }
            std::fs::write(RotatingInner::path(&dir, prefix, i as u32), text)?;
        }
        let open_index = (full / max) as u32;
        let mut sink = JsonlRecorder::create(RotatingInner::path(&dir, prefix, open_index))?;
        for line in &kept[full..] {
            if let Ok(event) = TraceEvent::from_json_line(line) {
                sink.record(&event);
            }
        }
        sink.flush()?;
        Ok(RotatingJsonl {
            inner: Arc::new(Mutex::new(RotatingInner {
                dir,
                prefix: prefix.to_string(),
                max_events_per_file: max as u64,
                index: open_index,
                sink,
                rotations: 0,
            })),
        })
    }

    /// Switches to the next file if the current one has reached the
    /// event cap. Returns whether a rotation happened.
    ///
    /// # Errors
    ///
    /// Fails when the old file cannot be flushed or the new one created;
    /// the sink keeps writing to the old file in that case.
    pub fn rotate_if_full(&self) -> io::Result<bool> {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.sink.events_written() < inner.max_events_per_file {
            return Ok(false);
        }
        inner.sink.flush()?;
        let next = inner.index + 1;
        let sink = JsonlRecorder::create(RotatingInner::path(&inner.dir, &inner.prefix, next))?;
        inner.sink = sink;
        inner.index = next;
        inner.rotations += 1;
        Ok(true)
    }

    /// How many rotations have happened.
    pub fn rotations(&self) -> u64 {
        lock_unpoisoned(&self.inner).rotations
    }

    /// Flushes the current file.
    ///
    /// # Errors
    ///
    /// Surfaces deferred write errors, like [`JsonlRecorder::flush`].
    pub fn flush(&self) -> io::Result<()> {
        lock_unpoisoned(&self.inner).sink.flush()
    }
}

impl Recorder for RotatingJsonl {
    fn record(&mut self, event: &TraceEvent) {
        lock_unpoisoned(&self.inner).sink.record(event);
    }
}

/// Feeds every event to two sinks: the daemon tees the flight-recorder
/// ring and the rotating file sink.
pub struct TeeRecorder {
    first: Box<dyn Recorder + Send>,
    second: Box<dyn Recorder + Send>,
}

impl TeeRecorder {
    /// A tee over two sinks.
    pub fn new(first: Box<dyn Recorder + Send>, second: Box<dyn Recorder + Send>) -> TeeRecorder {
        TeeRecorder { first, second }
    }
}

impl Recorder for TeeRecorder {
    fn record(&mut self, event: &TraceEvent) {
        self.first.record(event);
        self.second.record(event);
    }

    fn flush(&mut self) -> io::Result<()> {
        let first = self.first.flush();
        self.second.flush()?;
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_telemetry::{read_trace_file, TraceDecision, TracePhase};

    fn event(epoch: u64) -> TraceEvent {
        TraceEvent {
            epoch,
            time_ns: epoch * 1000,
            phase: TracePhase::Exploring,
            decision: TraceDecision::Transfer,
            retry_count: 0,
            matching_rounds: 1,
            unfairness: 0.1,
            apps: Vec::new(),
            proposed: Vec::new(),
            applied: Vec::new(),
            fault: None,
        }
    }

    #[test]
    fn shared_ring_tail_is_most_recent_oldest_first() {
        let mut ring = SharedRing::new(4);
        for epoch in 0..10 {
            ring.record(&event(epoch));
        }
        assert_eq!(ring.len(), 4);
        let tail: Vec<u64> = ring.tail(2).iter().map(|e| e.epoch).collect();
        assert_eq!(tail, vec![8, 9]);
        // Asking for more than retained yields everything retained.
        assert_eq!(ring.tail(100).len(), 4);
        let jsonl = ring.tail_jsonl(2);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().next().unwrap().contains("\"epoch\":8"));
    }

    #[test]
    fn shared_ring_reads_from_a_clone() {
        let mut ring = SharedRing::new(8);
        let reader = ring.clone();
        ring.record(&event(0));
        assert_eq!(reader.len(), 1);
        assert!(!reader.is_empty());
        assert_eq!(reader.all()[0], event(0));
    }

    #[test]
    fn rotating_sink_switches_files_at_the_cap() {
        let dir = std::env::temp_dir().join(format!("copart-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = RotatingJsonl::create(&dir, "trace", 3).unwrap();
        for epoch in 0..3 {
            sink.record(&event(epoch));
        }
        assert!(sink.rotate_if_full().unwrap());
        assert!(!sink.rotate_if_full().unwrap(), "fresh file is not full");
        for epoch in 3..5 {
            sink.record(&event(epoch));
        }
        sink.flush().unwrap();
        assert_eq!(sink.rotations(), 1);
        let first = read_trace_file(dir.join("trace-0000.jsonl")).unwrap();
        let second = read_trace_file(dir.join("trace-0001.jsonl")).unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(second.len(), 2);
        assert_eq!(second[0].epoch, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_keeps_the_prefix_and_repacks_at_the_cap() {
        let dir = std::env::temp_dir().join(format!("copart-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = RotatingJsonl::create(&dir, "trace", 3).unwrap();
        for epoch in 0..3 {
            sink.record(&event(epoch));
        }
        assert!(sink.rotate_if_full().unwrap());
        for epoch in 3..7 {
            sink.record(&event(epoch));
        }
        sink.flush().unwrap();
        drop(sink);
        // Resume below epoch 5: epochs 5 and 6 are regenerated by
        // replay, so the reopened sink keeps exactly 0..=4.
        let mut resumed = RotatingJsonl::resume(&dir, "trace", 3, 5).unwrap();
        for epoch in 5..7 {
            resumed.record(&event(epoch));
        }
        resumed.flush().unwrap();
        let first = read_trace_file(dir.join("trace-0000.jsonl")).unwrap();
        let second = read_trace_file(dir.join("trace-0001.jsonl")).unwrap();
        assert_eq!(first.iter().map(|e| e.epoch).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(
            second.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            [3, 4, 5, 6],
            "tail file keeps the durable prefix and the re-emitted events"
        );
        assert!(
            resumed.rotate_if_full().unwrap(),
            "the reopened sink counts the kept events toward the cap"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let ring_a = SharedRing::new(8);
        let ring_b = SharedRing::new(8);
        let mut tee = TeeRecorder::new(Box::new(ring_a.clone()), Box::new(ring_b.clone()));
        tee.record(&event(1));
        tee.flush().unwrap();
        assert_eq!(ring_a.len(), 1);
        assert_eq!(ring_b.len(), 1);
    }
}
