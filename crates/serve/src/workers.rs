//! The daemon's background-worker abstraction: small periodic jobs on
//! one shared ticker thread.
//!
//! Modeled on the background-worker loops of storage daemons: each
//! [`Worker`] is a named, fallible `tick`, and one thread drives all of
//! them at a fixed interval, folding successes and failures into the
//! shared metrics registry (`worker_runs` / `worker_errors`). Workers
//! never touch the runtime directly — they only hold their own handles
//! (a trace sink, the metrics registry, the flight-recorder ring) — so a
//! slow or failing worker cannot stall the control loop.

use crate::trace::{RotatingJsonl, SharedRing};
use copart_telemetry::MetricsRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One periodic background job.
///
/// # Examples
///
/// ```
/// use copart_serve::workers::Worker;
/// struct CountUp(u64);
/// impl Worker for CountUp {
///     fn name(&self) -> &'static str { "count-up" }
///     fn tick(&mut self) -> Result<(), String> {
///         self.0 += 1;
///         Ok(())
///     }
/// }
/// let mut w = CountUp(0);
/// assert!(w.tick().is_ok());
/// assert_eq!(w.name(), "count-up");
/// ```
pub trait Worker: Send {
    /// Stable name, used in logs and error messages.
    fn name(&self) -> &'static str;

    /// Runs one iteration. Errors are counted, reported, and do not
    /// stop the ticker.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of a failed iteration.
    fn tick(&mut self) -> Result<(), String>;
}

/// Rotates the on-disk JSONL trace when the current file is full.
pub struct TraceRotateWorker {
    sink: RotatingJsonl,
    metrics: Arc<MetricsRegistry>,
}

impl TraceRotateWorker {
    /// A rotation worker over the daemon's file sink.
    pub fn new(sink: RotatingJsonl, metrics: Arc<MetricsRegistry>) -> TraceRotateWorker {
        TraceRotateWorker { sink, metrics }
    }
}

impl Worker for TraceRotateWorker {
    fn name(&self) -> &'static str {
        "trace-rotate"
    }

    fn tick(&mut self) -> Result<(), String> {
        match self.sink.rotate_if_full() {
            Ok(true) => {
                self.metrics.inc("trace_rotations");
                Ok(())
            }
            Ok(false) => Ok(()),
            Err(e) => Err(format!("rotation failed: {e}")),
        }
    }
}

/// Replays the flight recorder's retained events through the trace
/// invariants (`copart trace-check` enforces the same ones offline):
/// epoch numbers strictly increase and time never rewinds.
pub struct TraceReplayWorker {
    ring: SharedRing,
    metrics: Arc<MetricsRegistry>,
}

impl TraceReplayWorker {
    /// A replay worker over the daemon's flight recorder.
    pub fn new(ring: SharedRing, metrics: Arc<MetricsRegistry>) -> TraceReplayWorker {
        TraceReplayWorker { ring, metrics }
    }
}

impl Worker for TraceReplayWorker {
    fn name(&self) -> &'static str {
        "trace-replay"
    }

    fn tick(&mut self) -> Result<(), String> {
        let events = self.ring.all();
        for pair in events.windows(2) {
            if pair[1].epoch <= pair[0].epoch {
                self.metrics.inc("trace_verify_failures");
                return Err(format!(
                    "epoch rewinds in the flight recorder: {} then {}",
                    pair[0].epoch, pair[1].epoch
                ));
            }
            if pair[1].time_ns < pair[0].time_ns {
                self.metrics.inc("trace_verify_failures");
                return Err(format!(
                    "time rewinds in the flight recorder at epoch {}",
                    pair[1].epoch
                ));
            }
        }
        Ok(())
    }
}

/// Checks that the control loop is making progress: the epoch counter
/// must have advanced since the previous check once the daemon is past
/// profiling. Publishes the verdict as the `healthy` gauge.
pub struct HealthCheckWorker {
    metrics: Arc<MetricsRegistry>,
    last_epochs: u64,
    /// Free-running daemons stop epoching at `max_epochs`; the health
    /// check treats a reached cap as healthy-and-done.
    epoch_cap: Option<u64>,
}

impl HealthCheckWorker {
    /// A health checker over the shared registry.
    pub fn new(metrics: Arc<MetricsRegistry>, epoch_cap: Option<u64>) -> HealthCheckWorker {
        HealthCheckWorker {
            metrics,
            last_epochs: 0,
            epoch_cap,
        }
    }
}

impl Worker for HealthCheckWorker {
    fn name(&self) -> &'static str {
        "health-check"
    }

    fn tick(&mut self) -> Result<(), String> {
        let epochs = self.metrics.counter("epochs");
        let done = self.epoch_cap.is_some_and(|cap| epochs >= cap);
        let healthy = done || epochs > self.last_epochs || epochs == 0;
        self.last_epochs = epochs;
        self.metrics
            .set_gauge("healthy", if healthy { 1.0 } else { 0.0 });
        if healthy {
            Ok(())
        } else {
            Err(format!("control loop stalled at epoch {epochs}"))
        }
    }
}

/// The ticker thread driving a set of workers until asked to stop.
pub struct WorkerPool {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns the ticker thread. Every `interval` it runs each worker
    /// once, counting `worker_runs` and `worker_errors` in `metrics`
    /// and reporting failures to stderr.
    pub fn spawn(
        mut workers: Vec<Box<dyn Worker>>,
        interval: Duration,
        metrics: Arc<MetricsRegistry>,
    ) -> WorkerPool {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            // Sleep in short slices so shutdown is prompt even with a
            // long interval.
            let slice = interval
                .min(Duration::from_millis(20))
                .max(Duration::from_millis(1));
            let mut elapsed = interval; // run every worker once at startup
            while !stop_flag.load(Ordering::Relaxed) {
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    for worker in &mut workers {
                        match worker.tick() {
                            Ok(()) => metrics.inc("worker_runs"),
                            Err(e) => {
                                metrics.inc("worker_errors");
                                eprintln!("copart serve: worker {}: {e}", worker.name());
                            }
                        }
                    }
                }
                std::thread::sleep(slice);
                elapsed += slice;
            }
        });
        WorkerPool {
            stop,
            join: Some(join),
        }
    }

    /// Stops the ticker and waits for the in-flight iteration to finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_telemetry::{Recorder, TraceDecision, TraceEvent, TracePhase};

    fn event(epoch: u64, time_ns: u64) -> TraceEvent {
        TraceEvent {
            epoch,
            time_ns,
            phase: TracePhase::Exploring,
            decision: TraceDecision::Transfer,
            retry_count: 0,
            matching_rounds: 1,
            unfairness: 0.1,
            apps: Vec::new(),
            proposed: Vec::new(),
            applied: Vec::new(),
            fault: None,
        }
    }

    #[test]
    fn replay_worker_accepts_a_well_formed_ring() {
        let mut ring = SharedRing::new(8);
        for epoch in 0..5 {
            ring.record(&event(epoch, epoch * 100));
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let mut w = TraceReplayWorker::new(ring, Arc::clone(&metrics));
        assert!(w.tick().is_ok());
        assert_eq!(metrics.counter("trace_verify_failures"), 0);
    }

    #[test]
    fn replay_worker_flags_time_rewinds() {
        let mut ring = SharedRing::new(8);
        ring.record(&event(0, 100));
        ring.record(&event(1, 50));
        let metrics = Arc::new(MetricsRegistry::new());
        let mut w = TraceReplayWorker::new(ring, Arc::clone(&metrics));
        assert!(w.tick().is_err());
        assert_eq!(metrics.counter("trace_verify_failures"), 1);
    }

    #[test]
    fn health_check_requires_progress_only_after_first_epoch() {
        let metrics = Arc::new(MetricsRegistry::new());
        let mut w = HealthCheckWorker::new(Arc::clone(&metrics), None);
        assert!(w.tick().is_ok(), "no epochs yet is healthy (still booting)");
        metrics.add("epochs", 5);
        assert!(w.tick().is_ok(), "progress since last check");
        assert_eq!(metrics.gauge("healthy"), Some(1.0));
        assert!(w.tick().is_err(), "no progress since last check");
        assert_eq!(metrics.gauge("healthy"), Some(0.0));
    }

    #[test]
    fn health_check_treats_reached_cap_as_done() {
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.add("epochs", 10);
        let mut w = HealthCheckWorker::new(Arc::clone(&metrics), Some(10));
        assert!(w.tick().is_ok());
        assert!(w.tick().is_ok(), "cap reached: stalling is expected");
        assert_eq!(metrics.gauge("healthy"), Some(1.0));
    }

    #[test]
    fn pool_runs_workers_and_counts() {
        struct Flaky(u32);
        impl Worker for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn tick(&mut self) -> Result<(), String> {
                self.0 += 1;
                if self.0 == 1 {
                    Err("first tick fails".into())
                } else {
                    Ok(())
                }
            }
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let pool = WorkerPool::spawn(
            vec![Box::new(Flaky(0))],
            Duration::from_millis(5),
            Arc::clone(&metrics),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while metrics.counter("worker_runs") < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.shutdown();
        assert!(metrics.counter("worker_runs") >= 2);
        assert_eq!(metrics.counter("worker_errors"), 1);
    }
}
