//! The control thread: the single owner of the
//! [`ConsolidationRuntime`](copart_core::runtime::ConsolidationRuntime),
//! driving epochs on ticks and serving mutations between them.
//!
//! Determinism is the design constraint. The runtime stays exactly as
//! single-threaded as it is in one-shot runs: every mutating request
//! (admit, remove, policy switch) travels over an mpsc channel and is
//! applied by this thread *between* epochs, and every read either comes
//! from a structure that is safe to share ([`SharedRing`], the metrics
//! registry) or from the status snapshot this thread republishes after
//! each epoch. Concurrent HTTP load therefore cannot reorder, interleave
//! with, or otherwise perturb the epoch loop — which is what keeps a
//! daemon trace byte-identical to a one-shot trace of the same scenario.
//!
//! Two pacing modes:
//!
//! * **wall-clock** (`tick > 0`) — epochs start on a fixed wall-clock
//!   grid; the thread waits out each tick in `recv_timeout`, so commands
//!   are handled the moment they arrive without moving the grid. An
//!   epoch that starts more than one tick late counts as an
//!   `epoch_deadline_misses` and the grid resynchronizes.
//! * **free-run** (`tick == 0`) — epochs run back to back on virtual
//!   time until `max_epochs`, the mode tests and the determinism suite
//!   use.

use crate::persist::PersistedRun;
use crate::trace::SharedRing;
use copart_core::policies::PolicyKind;
use copart_core::runtime::Phase;
use copart_core::NodeBackend;
use copart_persist::PersistableBackend;
use copart_telemetry::{Json, MetricsRegistry};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What an API command produced: a JSON body on success, a status code
/// plus message on failure.
pub type ApiResult = Result<String, (u16, String)>;

/// A mutation for the control thread, carrying its reply channel.
pub enum Command {
    /// `POST /apps` — admit a benchmark by Table 2 short name.
    Admit {
        /// The benchmark short name (`WN`, `SP`, ...).
        bench: String,
        /// Where the outcome goes.
        reply: SyncSender<ApiResult>,
    },
    /// `DELETE /apps/{id}` — remove a managed application.
    Remove {
        /// The application's group (CLOS) id.
        group: u16,
        /// Where the outcome goes.
        reply: SyncSender<ApiResult>,
    },
    /// `POST /policy` — switch the partitioning policy live.
    SetPolicy {
        /// The policy name (`cat-only`, `mba-only`, `copart`, `lfoc`).
        policy: String,
        /// Where the outcome goes.
        reply: SyncSender<ApiResult>,
    },
    /// `POST /snapshot` — cut a state snapshot right now.
    Snapshot {
        /// Where the outcome goes.
        reply: SyncSender<ApiResult>,
    },
    /// Stop the control loop at the next epoch boundary.
    Shutdown {
        /// Receives the number of epochs run.
        reply: SyncSender<u64>,
    },
}

/// Parses the name of a *dynamic* policy, the only kind the daemon can
/// run or switch to.
///
/// # Errors
///
/// Rejects unknown names and the static policies (`eq`, `st`).
///
/// # Examples
///
/// ```
/// use copart_serve::daemon::parse_dynamic_policy;
/// assert!(parse_dynamic_policy("copart").is_ok());
/// assert!(parse_dynamic_policy("eq").is_err());
/// ```
pub fn parse_dynamic_policy(s: &str) -> Result<PolicyKind, String> {
    match s {
        "cat-only" => Ok(PolicyKind::CatOnly),
        "mba-only" => Ok(PolicyKind::MbaOnly),
        "copart" => Ok(PolicyKind::CoPart),
        "lfoc" => Ok(PolicyKind::LfocCluster),
        "eq" | "st" => Err(format!(
            "policy {s:?} is static; the daemon needs cat-only, mba-only, copart, or lfoc"
        )),
        other => Err(format!("unknown policy {other:?}")),
    }
}

/// The backend capabilities the daemon needs beyond
/// [`RdtBackend`](copart_rdt::RdtBackend):
/// admitting and evicting whole workloads at runtime
/// ([`NodeBackend`] — the seam `copart-fleet` nodes share), plus
/// freezing and restoring complete state for crash recovery
/// ([`PersistableBackend`]). The `SimBackend` and
/// `FaultyBackend<SimBackend>` impls come from those two traits; this
/// is just their intersection.
pub trait ServeBackend: NodeBackend + PersistableBackend + Send + 'static {}

impl<B: NodeBackend + PersistableBackend + Send + 'static> ServeBackend for B {}

/// Pacing configuration for the control loop.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Wall-clock epoch spacing; `Duration::ZERO` selects free-run.
    pub tick: Duration,
    /// Stop running epochs (but keep serving) after this many.
    pub max_epochs: Option<u64>,
}

/// A handle to a spawned control thread.
pub struct ControlHandle {
    /// Command channel into the control thread.
    pub commands: Sender<Command>,
    /// The last published status document (JSON).
    pub status: Arc<Mutex<String>>,
    join: JoinHandle<()>,
}

impl ControlHandle {
    /// Waits for the control thread to exit. Send [`Command::Shutdown`]
    /// first, or this blocks until every command sender is dropped.
    pub fn join(self) {
        let _ = self.join.join();
    }
}

/// Spawns the control thread over a profiled (and possibly recovered)
/// run.
pub fn spawn_control<B: ServeBackend>(
    run: PersistedRun<B>,
    cfg: DaemonConfig,
    rx: Receiver<Command>,
    commands: Sender<Command>,
) -> ControlHandle {
    let status = Arc::new(Mutex::new(String::from("{}")));
    let metrics = run.runtime().metrics_handle();
    let daemon = Daemon {
        run,
        cfg,
        metrics,
        status: Arc::clone(&status),
        rx,
    };
    let join = std::thread::Builder::new()
        .name("copart-control".into())
        .spawn(move || daemon.run())
        .expect("spawning the control thread");
    ControlHandle {
        commands,
        status,
        join,
    }
}

struct Daemon<B: ServeBackend> {
    run: PersistedRun<B>,
    cfg: DaemonConfig,
    metrics: Arc<MetricsRegistry>,
    status: Arc<Mutex<String>>,
    rx: Receiver<Command>,
}

impl<B: ServeBackend> Daemon<B> {
    fn run(mut self) {
        self.publish_status();
        if self.cfg.tick.is_zero() {
            self.run_free();
        } else {
            self.run_wall();
        }
        // A clean shutdown cuts a final snapshot, so the state
        // directory restores to exactly the drained state.
        if self.run.persisting() {
            if let Err(e) = self.run.snapshot_now() {
                eprintln!("copart serve: final snapshot on shutdown: {e}");
            }
        }
        if let Err(e) = self.run.flush_trace() {
            eprintln!("copart serve: flushing trace on shutdown: {e}");
        }
    }

    /// Free-run: epochs back to back on virtual time, commands drained
    /// between them.
    fn run_free(&mut self) {
        loop {
            loop {
                match self.rx.try_recv() {
                    Ok(cmd) => {
                        if self.handle(cmd) {
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }
            if self.epochs_remaining() {
                self.epoch();
            } else {
                // Cap reached: park on the channel and keep serving.
                match self.rx.recv() {
                    Ok(cmd) => {
                        if self.handle(cmd) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        }
    }

    /// Wall-clock: epochs on a fixed grid, commands handled the moment
    /// they arrive in between.
    fn run_wall(&mut self) {
        let tick = self.cfg.tick;
        // Prime the pacing counters so /metrics exposes them as 0 from
        // boot instead of omitting them until the first miss.
        self.metrics.add("ticks", 0);
        self.metrics.add("epoch_deadline_misses", 0);
        // The first epoch runs before the grid is established: it pays
        // the process's cold-start costs (first-touch page faults, lazy
        // allocations) and would otherwise overshoot the first deadline.
        if self.epochs_remaining() {
            self.epoch();
        }
        let mut deadline = Instant::now() + tick;
        loop {
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(cmd) => {
                        if self.handle(cmd) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            let lag = Instant::now().saturating_duration_since(deadline);
            self.metrics.inc("ticks");
            self.metrics
                .observe_ns("tick_lag_ns", lag.as_nanos() as u64);
            if lag > tick {
                // The epoch would start more than one full tick late:
                // that is a missed deadline. Resynchronize the grid so
                // one long stall counts once, not once per tick.
                self.metrics.inc("epoch_deadline_misses");
                deadline = Instant::now() + tick;
            } else {
                deadline += tick;
            }
            if self.epochs_remaining() {
                self.epoch();
            }
        }
    }

    fn epochs_remaining(&self) -> bool {
        self.cfg
            .max_epochs
            .is_none_or(|cap| self.run.epochs_done() < cap)
    }

    fn epoch(&mut self) {
        // Attempts count toward the cap whether or not the period
        // succeeds, so a failing backend cannot spin a free-run forever.
        if let Err(e) = self.run.run_epoch() {
            self.metrics.inc("epoch_failures");
            eprintln!("copart serve: epoch failed: {e}");
        }
        self.publish_status();
    }

    /// Applies one command; returns whether the loop should stop.
    fn handle(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::Admit { bench, reply } => {
                let result = self.admit(&bench);
                self.publish_status();
                let _ = reply.send(result);
            }
            Command::Remove { group, reply } => {
                let result = self.remove(group);
                self.publish_status();
                let _ = reply.send(result);
            }
            Command::SetPolicy { policy, reply } => {
                let result = self.set_policy(&policy);
                self.publish_status();
                let _ = reply.send(result);
            }
            Command::Snapshot { reply } => {
                let _ = reply.send(self.snapshot());
            }
            Command::Shutdown { reply } => {
                let _ = reply.send(self.run.epochs_done());
                return true;
            }
        }
        false
    }

    fn admit(&mut self, bench: &str) -> ApiResult {
        self.run
            .admit(bench)
            .map(|group| format!("{{\"group\":{}}}", group.0))
    }

    fn remove(&mut self, id: u16) -> ApiResult {
        self.run
            .remove(id)
            .map(|()| format!("{{\"removed\":{id}}}"))
    }

    fn set_policy(&mut self, policy: &str) -> ApiResult {
        self.run
            .set_policy(policy)
            .map(|kind| format!("{{\"policy\":\"{}\"}}", kind.label()))
    }

    fn snapshot(&mut self) -> ApiResult {
        if !self.run.persisting() {
            return Err((
                409,
                "persistence is not enabled (start the daemon with --state-dir)".into(),
            ));
        }
        match self.run.snapshot_now() {
            Ok((path, bytes)) => Ok(format!(
                "{{\"snapshot\":{},\"bytes\":{bytes},\"epoch\":{}}}",
                Json::Str(path.display().to_string()),
                self.run.runtime().epoch()
            )),
            Err(e) => Err((500, e)),
        }
    }

    /// Renders and publishes the `GET /status` document. Runs after
    /// every epoch and every command, so readers always see the state
    /// as of the last epoch boundary.
    fn publish_status(&self) {
        let runtime = self.run.runtime();
        let phase = match runtime.phase() {
            Phase::Profiling => "profiling",
            Phase::Exploring => "exploring",
            Phase::Idle => "idle",
        };
        let budget = runtime.config().budget;
        let machine_ways = runtime.backend().capabilities().llc_ways;
        let state = runtime.state();
        let masks = state.masks(&budget, machine_ways);
        let mut apps = Vec::with_capacity(runtime.apps().len());
        let mut schemata_l3 = String::from("L3:");
        let mut schemata_mb = String::from("MB:");
        for (i, app) in runtime.apps().iter().enumerate() {
            let (llc, mba) = app.classifier_states();
            let alloc = state.allocs[i];
            let mask = masks[i];
            if i > 0 {
                schemata_l3.push(';');
                schemata_mb.push(';');
            }
            schemata_l3.push_str(&format!("{}={mask}", app.group.0));
            schemata_mb.push_str(&format!("{}={}", app.group.0, alloc.mba.percent()));
            apps.push(Json::Obj(vec![
                ("group".into(), Json::Num(f64::from(app.group.0))),
                ("name".into(), Json::Str(app.name.clone())),
                ("llc".into(), Json::Str(llc.to_string())),
                ("mba".into(), Json::Str(mba.to_string())),
                ("ways".into(), Json::Num(f64::from(alloc.ways))),
                (
                    "mba_percent".into(),
                    Json::Num(f64::from(alloc.mba.percent())),
                ),
                ("mask".into(), Json::Str(mask.to_string())),
                ("slowdown".into(), Json::Num(app.slowdown())),
            ]));
        }
        let doc = Json::Obj(vec![
            ("epoch".into(), Json::Num(self.run.epochs_done() as f64)),
            (
                "ticks".into(),
                Json::Num(self.metrics.counter("ticks") as f64),
            ),
            (
                "deadline_misses".into(),
                Json::Num(self.metrics.counter("epoch_deadline_misses") as f64),
            ),
            ("phase".into(), Json::Str(phase.into())),
            (
                "policy".into(),
                Json::Str(self.run.env().policy.label().into()),
            ),
            (
                "unfairness".into(),
                Json::Num(self.metrics.gauge("unfairness").unwrap_or(0.0)),
            ),
            ("apps".into(), Json::Arr(apps)),
            (
                "schemata".into(),
                Json::Str(format!("{schemata_l3} {schemata_mb}")),
            ),
        ]);
        let rendered = doc.to_string();
        *self.status.lock().unwrap_or_else(|e| e.into_inner()) = rendered;
    }
}

/// Everything HTTP workers share: read-side structures plus the command
/// channel into the control thread.
pub struct Gateway {
    /// The runtime's metrics registry (shared handle).
    pub metrics: Arc<MetricsRegistry>,
    /// The flight recorder behind `GET /trace`.
    pub ring: SharedRing,
    /// The published `GET /status` document.
    pub status: Arc<Mutex<String>>,
    /// Commands into the control thread.
    pub commands: Sender<Command>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_policy_names_parse() {
        assert_eq!(
            parse_dynamic_policy("cat-only").unwrap().label(),
            "CAT-only"
        );
        assert_eq!(
            parse_dynamic_policy("mba-only").unwrap().label(),
            "MBA-only"
        );
        assert_eq!(parse_dynamic_policy("copart").unwrap().label(), "CoPart");
        assert!(parse_dynamic_policy("eq").unwrap_err().contains("static"));
        assert!(parse_dynamic_policy("st").unwrap_err().contains("static"));
        assert!(parse_dynamic_policy("x").unwrap_err().contains("unknown"));
    }
}
