//! A minimal server-side HTTP/1.1 implementation over `std::net`.
//!
//! The daemon's wire surface is five small endpoints, so a hand-rolled
//! parser (consistent with the workspace's zero-third-party-deps stance)
//! is simpler than a framework and keeps the whole protocol auditable.
//! The parser is deliberately strict and bounded: request lines and
//! headers have hard size caps, bodies are only accepted with an exact
//! `Content-Length` under the configured limit, and anything else is
//! rejected with the right 4xx before a byte of it is buffered.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Hard cap on the request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard cap on a single header line, bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Default cap on request bodies, bytes (the config can lower it).
pub const DEFAULT_MAX_BODY: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// The path component of the request target, without the query.
    pub path: String,
    /// The raw query string (empty when the target has none).
    pub query: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// The value of a `key=value` query parameter, if present.
    ///
    /// # Examples
    ///
    /// ```
    /// use copart_serve::http::Request;
    /// let req = Request {
    ///     method: "GET".into(),
    ///     path: "/trace".into(),
    ///     query: "tail=16".into(),
    ///     body: Vec::new(),
    ///     keep_alive: true,
    /// };
    /// assert_eq!(req.query_param("tail"), Some("16"));
    /// assert_eq!(req.query_param("absent"), None);
    /// ```
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be parsed, carrying the status to answer with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or body framing → 400.
    BadRequest(String),
    /// The declared `Content-Length` exceeds the body cap → 413.
    PayloadTooLarge {
        /// The length the client declared.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// Request line or a header line exceeds its size cap → 431.
    HeaderTooLarge,
    /// A framing the server does not implement (chunked bodies) → 501.
    Unimplemented(&'static str),
    /// The connection failed mid-request; no response is possible.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error should be answered with (0 for I/O
    /// errors, where the connection is simply dropped).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge { .. } => 413,
            HttpError::HeaderTooLarge => 431,
            HttpError::Unimplemented(_) => 501,
            HttpError::Io(_) => 0,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::HeaderTooLarge => f.write_str("request line or header too large"),
            HttpError::Unimplemented(what) => write!(f, "not implemented: {what}"),
            HttpError::Io(e) => write!(f, "connection error: {e}"),
        }
    }
}

/// What one attempt to read a request produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out before the first byte of a request arrived;
    /// the connection is still usable (nothing was consumed).
    Idle,
}

/// Reads one line (up to and including `\n`) with a hard byte cap,
/// without over-reading past it.
fn read_line_capped<R: BufRead>(r: &mut R, cap: usize) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match r.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        };
        if available.is_empty() {
            // EOF mid-line: a clean close only if nothing was read yet.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("connection closed mid-line".into()));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if line.len() + take > cap {
            return Err(HttpError::HeaderTooLarge);
        }
        line.extend_from_slice(&available[..take]);
        r.consume(take);
        if newline.is_some() {
            let text = String::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("non-UTF-8 header bytes".into()))?;
            return Ok(Some(text.trim_end_matches(['\r', '\n']).to_string()));
        }
    }
}

/// Reads one request from the connection.
///
/// Returns [`ReadOutcome::Closed`] on a clean EOF before any byte and
/// [`ReadOutcome::Idle`] when the first read times out (the caller's
/// read-timeout is the keep-alive poll interval).
///
/// # Errors
///
/// Any [`HttpError`] with a non-zero status should be answered with that
/// status; an [`HttpError::Io`] means the connection is gone.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<ReadOutcome, HttpError> {
    // The first fill distinguishes idle-timeout from mid-request errors.
    match r.fill_buf() {
        Ok([]) => return Ok(ReadOutcome::Closed),
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(ReadOutcome::Idle);
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(HttpError::Io(e)),
    }
    let Some(line) = read_line_capped(r, MAX_REQUEST_LINE)? else {
        return Ok(ReadOutcome::Closed);
    };
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {line:?}"
        )));
    };
    if parts.next().is_some() {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {line:?}"
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length: usize = 0;
    let mut headers = 0usize;
    loop {
        let Some(header) = read_line_capped(r, MAX_HEADER_LINE)? else {
            return Err(HttpError::BadRequest("EOF inside headers".into()));
        };
        if header.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(HttpError::HeaderTooLarge);
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header {header:?}"
            )));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Unimplemented("chunked transfer encoding"));
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        io::Read::read_exact(r, &mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::BadRequest("body shorter than Content-Length".into())
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(ReadOutcome::Request(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        body,
        keep_alive,
    }))
}

/// One HTTP response, ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether to answer `Connection: close` and drop the connection.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// A JSON error response: `{"error": "<msg>"}`.
    pub fn error(status: u16, msg: &str) -> Response {
        let quoted = copart_telemetry::Json::Str(msg.to_string());
        Response::json(status, format!("{{\"error\":{quoted}}}"))
    }

    /// Serializes status line, headers, and body to the connection.
    ///
    /// # Errors
    ///
    /// Propagates write failures (the caller drops the connection).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<ReadOutcome, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), DEFAULT_MAX_BODY)
    }

    fn request(raw: &str) -> Request {
        match parse(raw).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let r = request("GET /trace?tail=8&x=1 HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/trace");
        assert_eq!(r.query_param("tail"), Some("8"));
        assert_eq!(r.query_param("x"), Some("1"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body_exactly() {
        let r = request("POST /apps HTTP/1.1\r\nContent-Length: 16\r\n\r\n{\"bench\": \"WN\"}\n");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"bench\": \"WN\"}\n");
    }

    #[test]
    fn connection_close_is_honored() {
        let r = request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let r = request("GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse("").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1 junk\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} → {err}");
        }
    }

    #[test]
    fn rejects_oversize_bodies_without_reading_them() {
        let raw = "POST /apps HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_oversize_headers() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse(&raw).unwrap_err().status(), 431);
        let many: String = (0..MAX_HEADERS + 1)
            .map(|i| format!("h{i}: v\r\n"))
            .collect();
        let raw = format!("GET / HTTP/1.1\r\n{many}\r\n");
        assert_eq!(parse(&raw).unwrap_err().status(), 431);
    }

    #[test]
    fn rejects_chunked_encoding() {
        let raw = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status(), 501);
    }

    #[test]
    fn truncated_body_is_bad_request() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert_eq!(parse(raw).unwrap_err().status(), 400);
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        let mut resp = Response::error(413, "too big");
        resp.close = true;
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("413 Payload Too Large"));
        assert!(text.contains("Connection: close"));
        assert!(text.contains("{\"error\":\"too big\"}"));
    }
}
