//! Shared bootstrap for daemon and one-shot runs of the same scenario.
//!
//! Byte-identical traces are the repo's determinism contract: a daemon
//! run of N epochs must produce exactly the JSONL a one-shot `sim-run`
//! of the same scenario produces. Both paths therefore build their
//! runtime through this module — same machine model, same mix, same
//! STREAM reference, same seed, same profiling-retry policy — and
//! [`Scenario::reference_trace`] *is* the one-shot path, used by the
//! determinism tests as the expected value.

use copart_core::policies::{self, PolicyKind};
use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::CoPartParams;
use copart_faults::{FaultPlan, FaultyBackend};
use copart_rdt::{ClosId, SimBackend};
use copart_sim::{AppSpec, Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::{Benchmark, MixKind, WorkloadMix};

use crate::trace::SharedRing;

/// Profiling attempts a fault-injected boot gets before giving up (the
/// same allowance the one-shot `sim-run --faults` path grants).
pub const PROFILE_ATTEMPTS: u32 = 5;

/// What consolidation the daemon should run: everything needed to build
/// the runtime deterministically.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which Table 3 mix family to consolidate.
    pub mix: MixKind,
    /// Number of applications (1–6).
    pub n_apps: usize,
    /// The partitioning policy (must be dynamic: CAT-only, MBA-only, or
    /// CoPart).
    pub policy: PolicyKind,
    /// Seed for the explorer's randomized θ-retries.
    pub seed: u64,
    /// Deterministic fault plan, if the daemon should run injected.
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// A scenario over one of the paper's mixes.
    ///
    /// # Errors
    ///
    /// Rejects an app count outside 1–6 and non-dynamic policies (EQ
    /// and ST have no epoch loop to serve).
    ///
    /// # Examples
    ///
    /// ```
    /// use copart_core::policies::PolicyKind;
    /// use copart_serve::Scenario;
    /// use copart_workloads::MixKind;
    /// let s = Scenario::new(MixKind::HighBoth, 4, PolicyKind::CoPart, 42, None).unwrap();
    /// assert_eq!(s.n_apps, 4);
    /// assert!(Scenario::new(MixKind::HighBoth, 4, PolicyKind::Equal, 42, None).is_err());
    /// ```
    pub fn new(
        mix: MixKind,
        n_apps: usize,
        policy: PolicyKind,
        seed: u64,
        faults: Option<FaultPlan>,
    ) -> Result<Scenario, String> {
        if !(1..=6).contains(&n_apps) {
            return Err("app count must be between 1 and 6".into());
        }
        if !matches!(
            policy,
            PolicyKind::CatOnly
                | PolicyKind::MbaOnly
                | PolicyKind::CoPart
                | PolicyKind::LfocCluster
        ) {
            return Err(format!(
                "policy {} is not dynamic; serve needs cat-only, mba-only, copart, or lfoc",
                policy.label()
            ));
        }
        Ok(Scenario {
            mix,
            n_apps,
            policy,
            seed,
            faults,
        })
    }

    /// Measures the environment the scenario runs in (machine model,
    /// STREAM reference table, parameters). The STREAM table is
    /// simulated at every MBA level — deterministic but not free, so it
    /// is computed once per process and cloned (every scenario runs on
    /// the same machine model; the kill/resume harness and the recovery
    /// tests call this per incarnation).
    pub fn env(&self) -> ScenarioEnv {
        static STREAM: std::sync::OnceLock<StreamReference> = std::sync::OnceLock::new();
        let machine = MachineConfig::xeon_gold_6130();
        let mix = WorkloadMix::build(self.mix, self.n_apps, machine.n_cores);
        let stream = STREAM
            .get_or_init(|| StreamReference::compute(&machine, 4))
            .clone();
        let params = CoPartParams {
            seed: self.seed,
            ..CoPartParams::default()
        };
        ScenarioEnv {
            machine,
            stream,
            params,
            cores_per_app: mix.cores_per_app,
            policy: self.policy,
            identity: RunIdentity {
                mix: self.mix.label().to_string(),
                seed: self.seed,
                faults: self
                    .faults
                    .as_ref()
                    .map(|p| format!("{p:?}"))
                    .unwrap_or_default(),
            },
        }
    }

    /// The mix's application specs, in slot order.
    pub fn specs(&self, env: &ScenarioEnv) -> Vec<AppSpec> {
        WorkloadMix::build(self.mix, self.n_apps, env.machine.n_cores).specs()
    }

    /// Builds the fault-free runtime for this scenario.
    ///
    /// # Errors
    ///
    /// Fails when the mix does not fit the machine or the initial
    /// partition cannot be applied.
    pub fn build_sim(&self, env: &ScenarioEnv) -> Result<ConsolidationRuntime<SimBackend>, String> {
        let mut backend = SimBackend::new(Machine::new(env.machine.clone()));
        let named = admit_all(&mut backend, &self.specs(env))?;
        let cfg = env.runtime_config(self.n_apps, self.policy);
        ConsolidationRuntime::new(backend, named, cfg)
            .map_err(|e| format!("initial partition apply failed: {e}"))
    }

    /// Builds the fault-injected runtime for this scenario.
    ///
    /// # Errors
    ///
    /// Fails when the mix does not fit the machine or the initial
    /// partition cannot be applied through the injected faults.
    pub fn build_faulty(
        &self,
        env: &ScenarioEnv,
        plan: FaultPlan,
    ) -> Result<ConsolidationRuntime<FaultyBackend<SimBackend>>, String> {
        let mut backend = SimBackend::new(Machine::new(env.machine.clone()));
        let named = admit_all(&mut backend, &self.specs(env))?;
        let cfg = env.runtime_config(self.n_apps, self.policy);
        ConsolidationRuntime::new(FaultyBackend::new(backend, plan), named, cfg)
            .map_err(|e| format!("initial partition apply failed under faults: {e}"))
    }

    /// The one-shot run the daemon is compared against: build, profile,
    /// run exactly `epochs` periods, and return the trace as JSONL
    /// lines. Fault plans are honored, so the fault-injected daemon has
    /// a reference too.
    ///
    /// # Errors
    ///
    /// Propagates build, profiling, and epoch failures.
    pub fn reference_trace(&self, epochs: u64) -> Result<Vec<String>, String> {
        let env = self.env();
        let ring = SharedRing::new(epochs as usize + 256);
        match self.faults.clone() {
            None => {
                let mut runtime = self.build_sim(&env)?;
                runtime.set_recorder(Box::new(ring.clone()));
                profile_with_retries(&mut runtime, 1)?;
                for _ in 0..epochs {
                    runtime.run_period().map_err(|e| format!("epoch: {e}"))?;
                }
            }
            Some(plan) => {
                let mut runtime = self.build_faulty(&env, plan)?;
                runtime.set_recorder(Box::new(ring.clone()));
                profile_with_retries(&mut runtime, PROFILE_ATTEMPTS)?;
                for _ in 0..epochs {
                    runtime.run_period().map_err(|e| format!("epoch: {e}"))?;
                }
            }
        }
        Ok(ring.all().iter().map(|e| e.to_json_line()).collect())
    }
}

/// Admits every spec into the backend, returning `(group, name)` pairs
/// in spec order. Crate-visible so the recovery path
/// ([`crate::persist`]) can rebuild the boot-time group table before
/// restoring a snapshot over it.
pub(crate) fn admit_all(
    backend: &mut SimBackend,
    specs: &[AppSpec],
) -> Result<Vec<(ClosId, String)>, String> {
    specs
        .iter()
        .map(|spec| {
            let name = spec.name.clone();
            backend
                .add_workload(spec.clone())
                .map(|group| (group, name))
                .map_err(|e| format!("mix does not fit the machine: {e}"))
        })
        .collect()
}

/// What makes one persisted run *this* run: the immutable facts a state
/// directory is checked against before a snapshot is restored over a
/// freshly built runtime. Deliberately excludes the app count and the
/// policy — both drift legitimately over a run's lifetime (admissions,
/// removals, live policy switches) and are restored *from* the snapshot
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunIdentity {
    /// Workload mix label (e.g. `"M-Both"`).
    pub mix: String,
    /// The explorer seed.
    pub seed: u64,
    /// The fault plan's debug rendering (empty = fault-free).
    pub faults: String,
}

/// The measured environment a scenario runs in, kept by the daemon for
/// later admissions and policy switches.
#[derive(Debug, Clone)]
pub struct ScenarioEnv {
    /// The simulated machine model.
    pub machine: MachineConfig,
    /// STREAM reference miss rates per MBA level (§5.3).
    pub stream: StreamReference,
    /// Controller parameters (seeded from the scenario).
    pub params: CoPartParams,
    /// Dedicated cores per consolidated application.
    pub cores_per_app: u32,
    /// The currently active policy.
    pub policy: PolicyKind,
    /// The run's immutable identity (crash-recovery guard).
    pub identity: RunIdentity,
}

impl ScenarioEnv {
    /// The runtime configuration for `policy` over `n_apps`
    /// applications.
    pub fn runtime_config(&self, n_apps: usize, policy: PolicyKind) -> RuntimeConfig {
        policies::dynamic_runtime_config(&self.machine, n_apps, &self.stream, policy, &self.params)
    }

    /// The calibrated spec for a Table 2 benchmark short name (`WN`,
    /// `SP`, ...), pinned to this scenario's per-app core count.
    ///
    /// # Errors
    ///
    /// Rejects unknown short names.
    pub fn spec_for(&self, short: &str) -> Result<AppSpec, String> {
        Benchmark::all()
            .into_iter()
            .find(|b| b.table2().short.eq_ignore_ascii_case(short))
            .map(|b| b.spec_with_cores(self.cores_per_app))
            .ok_or_else(|| format!("unknown benchmark {short:?} (use the Table 2 short names)"))
    }
}

/// Runs profiling, retrying whole passes up to `attempts` times.
/// Re-exported from the core node seam, where fleet nodes share the
/// exact same retry policy (byte-identical traces depend on it).
pub use copart_core::node::profile_with_retries;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_trace_is_reproducible() {
        let scenario = Scenario::new(MixKind::HighBoth, 2, PolicyKind::CoPart, 7, None).unwrap();
        let a = scenario.reference_trace(6).unwrap();
        let b = scenario.reference_trace(6).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same scenario, same bytes");
    }

    #[test]
    fn env_resolves_table2_short_names() {
        let scenario = Scenario::new(MixKind::HighBoth, 2, PolicyKind::CoPart, 7, None).unwrap();
        let env = scenario.env();
        let spec = env.spec_for("wn").unwrap();
        assert!(spec.name.to_lowercase().contains("water") || !spec.name.is_empty());
        assert!(env.spec_for("nope").is_err());
    }
}
