//! Prometheus text exposition (version 0.0.4) for a [`MetricsSnapshot`].
//!
//! The registry's three kinds map directly onto Prometheus types:
//! counters become `copart_<name>_total` counters, gauges become
//! `copart_<name>` gauges, and the fixed-bucket latency histograms
//! become `copart_<name>` histograms with cumulative `le` buckets, a
//! `_sum`, and a `_count`. The registry stores *per-bucket* counts, so
//! rendering cumulates them on the way out — the one representational
//! difference between the two formats.

use copart_telemetry::MetricsSnapshot;
use std::fmt::Write as _;

/// The metric-name prefix every exposed series carries.
pub const PREFIX: &str = "copart";

/// `# HELP` text for the metrics the runtime and daemon emit. Unknown
/// names (e.g. from future counters) fall back to a generic line so the
/// exposition stays valid either way.
pub fn help(name: &str) -> &'static str {
    match name {
        "epochs" => "Control periods executed",
        "transfers" => "Resource units moved by Algorithm 2 proposals",
        "theta_retries" => "Random neighbor states tried after convergence (theta)",
        "convergences" => "Times the explorer settled into the idle phase",
        "re_explorations" => "Times idle-phase drift triggered re-adaptation",
        "apps_profiled" => "Profiling passes over single applications",
        "backend_applies" => "Full allocation writes to the backend",
        "matching_rounds" => "Stable-matching rounds inside planning",
        "fault_write_retries" => "Transient backend write failures that were retried",
        "degraded_epochs" => "Epochs run on stale counters after a sensing fault",
        "fault_counter_dropouts" => "Counter reads lost to injected dropouts",
        "partition_apply_failures" => "Allocation transactions that failed mid-write",
        "partition_rollbacks" => "Failed transactions rolled back to the prior state",
        "rollback_write_failures" => "Rollback writes that themselves failed",
        "unfairness" => "Current weighted unfairness (sigma/mu of slowdowns, Eq 2)",
        "epoch_ns" => "End-to-end control epoch latency",
        "explore_ns" => "Latency of one get_next_system_state decision",
        "apply_ns" => "Latency of one backend programming pass",
        "epoch_failures" => "Daemon epochs whose run_period returned an error",
        "ticks" => "Epoch-timer ticks observed by the daemon",
        "epoch_deadline_misses" => "Epochs that started more than one tick late",
        "tick_lag_ns" => "Lag between the scheduled and actual epoch start",
        "http_requests" => "HTTP requests parsed",
        "http_responses_2xx" => "HTTP responses with a 2xx status",
        "http_responses_4xx" => "HTTP responses with a 4xx status",
        "http_responses_5xx" => "HTTP responses with a 5xx status",
        "http_rejected_overload" => "Connections answered 503 because the queue was full",
        "admitted_apps" => "Applications admitted through POST /apps",
        "removed_apps" => "Applications removed through DELETE /apps",
        "policy_switches" => "Live policy switches through POST /policy",
        "worker_runs" => "Background worker iterations completed",
        "worker_errors" => "Background worker iterations that failed",
        "trace_rotations" => "Trace files rotated by the trace-rotate worker",
        "trace_verify_failures" => "Flight-recorder replays that violated trace invariants",
        "healthy" => "1 when the last health self-check passed, else 0",
        _ => "CoPart metric",
    }
}

/// Renders the snapshot as Prometheus text exposition.
///
/// # Examples
///
/// ```
/// use copart_telemetry::MetricsRegistry;
/// let m = MetricsRegistry::new();
/// m.inc("epochs");
/// m.set_gauge("unfairness", 0.25);
/// let text = copart_serve::prometheus::render(&m.snapshot());
/// assert!(text.contains("# TYPE copart_epochs_total counter"));
/// assert!(text.contains("copart_epochs_total 1"));
/// assert!(text.contains("copart_unfairness 0.25"));
/// ```
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "# HELP {PREFIX}_{name}_total {}", help(name));
        let _ = writeln!(out, "# TYPE {PREFIX}_{name}_total counter");
        let _ = writeln!(out, "{PREFIX}_{name}_total {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "# HELP {PREFIX}_{name} {}", help(name));
        let _ = writeln!(out, "# TYPE {PREFIX}_{name} gauge");
        let _ = writeln!(out, "{PREFIX}_{name} {value}");
    }
    for (name, hist) in &snap.histograms {
        let _ = writeln!(out, "# HELP {PREFIX}_{name} {}", help(name));
        let _ = writeln!(out, "# TYPE {PREFIX}_{name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.buckets() {
            cumulative += count;
            if bound == u64::MAX {
                // The overflow bucket is only representable as +Inf;
                // it is emitted below with the full count.
                continue;
            }
            let _ = writeln!(out, "{PREFIX}_{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(
            out,
            "{PREFIX}_{name}_bucket{{le=\"+Inf\"}} {}",
            hist.count()
        );
        let _ = writeln!(out, "{PREFIX}_{name}_sum {}", hist.sum_ns());
        let _ = writeln!(out, "{PREFIX}_{name}_count {}", hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_telemetry::MetricsRegistry;

    #[test]
    fn renders_all_three_kinds() {
        let m = MetricsRegistry::new();
        m.add("epochs", 7);
        m.set_gauge("unfairness", 0.125);
        m.observe_ns("epoch_ns", 300);
        m.observe_ns("epoch_ns", 100_000);
        let text = render(&m.snapshot());
        assert!(text.contains("# TYPE copart_epochs_total counter"));
        assert!(text.contains("copart_epochs_total 7"));
        assert!(text.contains("# TYPE copart_unfairness gauge"));
        assert!(text.contains("copart_unfairness 0.125"));
        assert!(text.contains("# TYPE copart_epoch_ns histogram"));
        assert!(text.contains("copart_epoch_ns_bucket{le=\"512\"} 1"));
        assert!(text.contains("copart_epoch_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("copart_epoch_ns_sum 100300"));
        assert!(text.contains("copart_epoch_ns_count 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_increasing() {
        let m = MetricsRegistry::new();
        for ns in [100, 100, 400, 4000, 4000, 4000] {
            m.observe_ns("epoch_ns", ns);
        }
        let text = render(&m.snapshot());
        let mut last = 0u64;
        let mut last_bound = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let (head, count) = line.rsplit_once(' ').unwrap();
            let count: u64 = count.parse().unwrap();
            assert!(count >= last, "buckets must be cumulative: {line}");
            last = count;
            let bound = head.split('"').nth(1).unwrap();
            if bound != "+Inf" {
                let bound: u64 = bound.parse().unwrap();
                assert!(bound > last_bound, "le bounds must increase: {line}");
                last_bound = bound;
            }
        }
        assert_eq!(last, 6, "+Inf bucket carries the total count");
    }

    #[test]
    fn overflow_bucket_folds_into_inf() {
        let m = MetricsRegistry::new();
        m.observe_ns("epoch_ns", u64::MAX);
        let text = render(&m.snapshot());
        assert!(!text.contains("le=\"18446744073709551615\""));
        assert!(text.contains("copart_epoch_ns_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn every_documented_metric_has_specific_help() {
        for name in [
            "epochs",
            "transfers",
            "theta_retries",
            "convergences",
            "re_explorations",
            "apps_profiled",
            "backend_applies",
            "matching_rounds",
            "fault_write_retries",
            "degraded_epochs",
            "fault_counter_dropouts",
            "partition_apply_failures",
            "partition_rollbacks",
            "rollback_write_failures",
            "unfairness",
            "epoch_ns",
            "explore_ns",
            "apply_ns",
            "ticks",
            "epoch_deadline_misses",
            "http_requests",
        ] {
            assert_ne!(help(name), "CoPart metric", "missing help for {name}");
        }
    }
}
