//! A small load-generator client for the daemon's API, used by
//! `copart load`, `scripts/loadtest.sh`, and the serve tests.
//!
//! The generator opens `concurrency` keep-alive connections and rotates
//! each through the read endpoints (`/status`, `/metrics`,
//! `/trace?tail=4`) until the shared request budget is spent. It is
//! deliberately read-only: the point is to pressure the listener and the
//! shared read structures while the control loop keeps its epoch
//! deadlines, not to mutate the consolidation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How much load to apply.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests across all connections.
    pub requests: u64,
    /// Concurrent keep-alive connections.
    pub concurrency: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            requests: 10_000,
            concurrency: 8,
        }
    }
}

/// What the generator observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests actually sent.
    pub sent: u64,
    /// Responses with a 2xx status.
    pub ok2xx: u64,
    /// Requests that failed at the transport layer or got a non-2xx
    /// status.
    pub failures: u64,
}

/// Sends one request on its own connection and returns `(status, body)`.
///
/// This is the simple path the tests use; the load loop below keeps its
/// connections alive instead.
///
/// # Errors
///
/// Propagates connect, write, and malformed-response errors.
pub fn fetch(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let _ = stream.set_nodelay(true);
    write_request(&mut stream, addr, method, path, body, false)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Runs the configured load against a daemon and reports what happened.
///
/// # Errors
///
/// Fails when no worker thread can even connect; individual request
/// failures are counted in the report instead.
pub fn run(addr: &str, cfg: &LoadConfig) -> Result<LoadReport, String> {
    let budget = Arc::new(AtomicU64::new(cfg.requests));
    let ok2xx = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let mut joins = Vec::new();
    for worker in 0..cfg.concurrency.max(1) {
        let addr = addr.to_string();
        let budget = Arc::clone(&budget);
        let ok2xx = Arc::clone(&ok2xx);
        let failures = Arc::clone(&failures);
        joins.push(
            std::thread::Builder::new()
                .name(format!("copart-load-{worker}"))
                .spawn(move || load_worker(&addr, &budget, &ok2xx, &failures))
                .map_err(|e| format!("spawning load worker: {e}"))?,
        );
    }
    for join in joins {
        let _ = join.join();
    }
    let ok = ok2xx.load(Ordering::SeqCst);
    let failed = failures.load(Ordering::SeqCst);
    Ok(LoadReport {
        sent: ok + failed,
        ok2xx: ok,
        failures: failed,
    })
}

/// The read endpoints a connection rotates through.
const PATHS: [&str; 3] = ["/status", "/metrics", "/trace?tail=4"];

fn load_worker(addr: &str, budget: &AtomicU64, ok2xx: &AtomicU64, failures: &AtomicU64) {
    let mut conn: Option<BufReader<TcpStream>> = None;
    let mut turn = 0usize;
    while claim(budget) {
        let path = PATHS[turn % PATHS.len()];
        turn += 1;
        // One reconnect attempt per request: a dropped keep-alive
        // connection is normal churn, not a failure.
        let mut attempts = 0;
        let status = loop {
            attempts += 1;
            if conn.is_none() {
                match TcpStream::connect(addr) {
                    Ok(stream) => {
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                        let _ = stream.set_nodelay(true);
                        conn = Some(BufReader::new(stream));
                    }
                    Err(_) => break None,
                }
            }
            let reader = conn.as_mut().expect("just connected");
            let sent = write_request(reader.get_mut(), addr, "GET", path, "", true);
            match sent.and_then(|()| read_response(reader)) {
                Ok((status, _body)) => break Some(status),
                Err(_) => {
                    conn = None;
                    if attempts >= 2 {
                        break None;
                    }
                }
            }
        };
        match status {
            Some(s) if (200..300).contains(&s) => {
                ok2xx.fetch_add(1, Ordering::SeqCst);
            }
            _ => {
                failures.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Claims one request from the shared budget.
fn claim(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

fn write_request(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut req =
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: {connection}\r\n");
    if !body.is_empty() {
        req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes())
}

/// Reads one HTTP/1.1 response, honoring Content-Length framing.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(bad("connection closed before the status line"));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("malformed Content-Length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}
