//! `copart serve`: the always-on control daemon around the CoPart
//! consolidation runtime.
//!
//! The one-shot tools (`copart sim-run`, `copart experiment`) build a
//! runtime, drive N epochs, and exit. This crate keeps the same runtime
//! alive behind a wire API:
//!
//! * the **control thread** runs the epoch loop (wall-clock paced or
//!   free-running) and is the *only* thread touching the runtime —
//!   mutations arrive as commands applied between epochs, which is what
//!   keeps daemon traces byte-identical to one-shot traces,
//! * a hand-rolled **HTTP/1.1 front end** (zero third-party deps, like
//!   the rest of the workspace) serves admissions, removals, live policy
//!   switches, Prometheus-text metrics, status, and trace tails,
//! * **background workers** rotate the on-disk trace, replay the flight
//!   recorder through the trace invariants, and self-check liveness.
//!
//! # Examples
//!
//! Boot a daemon over a simulated 4-app mix, read its status, and shut
//! it down cleanly:
//!
//! ```
//! use copart_core::policies::PolicyKind;
//! use copart_serve::{loadgen, Scenario, ServeConfig};
//! use copart_workloads::MixKind;
//! use std::time::Duration;
//!
//! let scenario = Scenario::new(MixKind::HighBoth, 4, PolicyKind::CoPart, 42, None).unwrap();
//! let cfg = ServeConfig {
//!     tick: Duration::ZERO,     // free-run: no wall-clock pacing in tests
//!     max_epochs: Some(10),
//!     ..ServeConfig::default()  // 127.0.0.1:0 → ephemeral port
//! };
//! let handle = copart_serve::serve_scenario(&scenario, cfg).unwrap();
//! let addr = handle.addr().to_string();
//! let (status, body) = loadgen::fetch(&addr, "GET", "/status", "").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"epoch\""));
//! // Shutdown is prompt — it does not wait for the epoch cap — so let
//! // the loop finish its 10 epochs before draining.
//! while !loadgen::fetch(&addr, "GET", "/metrics", "").unwrap().1
//!     .contains("copart_epochs_total 10")
//! {
//!     std::thread::sleep(Duration::from_millis(5));
//! }
//! handle.shutdown();
//! let report = handle.join();
//! assert_eq!(report.epochs, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod loadgen;
pub mod persist;
pub mod prometheus;
pub mod scenario;
pub mod server;
pub mod trace;
pub mod workers;

pub use daemon::{parse_dynamic_policy, DaemonConfig, ServeBackend};
pub use loadgen::{LoadConfig, LoadReport};
pub use persist::{
    harness_run, recover_faulty, recover_sim, resume_trace_file, ChurnOp, HarnessOutcome,
    PersistConfig, PersistedRun, Recovered, KEEP_SNAPSHOTS,
};
pub use scenario::{RunIdentity, Scenario, ScenarioEnv, PROFILE_ATTEMPTS};
pub use server::{serve, serve_scenario, ServeConfig, ServeReport, ServerHandle};
pub use trace::{RotatingJsonl, SharedRing, TeeRecorder};
