//! The daemon's TCP front end: listener, fixed HTTP worker pool, request
//! router, and the graceful-shutdown protocol.
//!
//! Threads and ownership:
//!
//! * the **accept thread** polls a non-blocking listener and queues
//!   connections onto a bounded channel (full queue → immediate 503),
//! * a fixed pool of **HTTP workers** parses requests ([`crate::http`])
//!   and routes them — reads are answered from shared structures,
//!   mutations become [`Command`]s for the control thread,
//! * the **control thread** ([`crate::daemon`]) is the only one touching
//!   the runtime,
//! * the **background ticker** ([`crate::workers`]) runs the periodic
//!   jobs.
//!
//! Shutdown (`POST /shutdown` or [`ServerHandle::shutdown`]) drains in
//! order: stop accepting, finish in-flight requests, then stop the
//! control loop at an epoch boundary and flush the trace.

use crate::daemon::{
    spawn_control, ApiResult, Command, ControlHandle, DaemonConfig, Gateway, ServeBackend,
};
use crate::http::{self, ReadOutcome, Request, Response};
use crate::persist::{recover_faulty, recover_sim, PersistConfig, PersistedRun, Recovered};
use crate::prometheus;
use crate::scenario::{profile_with_retries, Scenario, ScenarioEnv, PROFILE_ATTEMPTS};
use crate::trace::{RotatingJsonl, SharedRing, TeeRecorder};
use crate::workers::{HealthCheckWorker, TraceReplayWorker, TraceRotateWorker, Worker, WorkerPool};
use copart_core::runtime::ConsolidationRuntime;
use copart_telemetry::{Json, MetricsRegistry, MetricsSnapshot, Recorder};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. The default binds an ephemeral localhost port,
/// paces epochs at 25 ms, and keeps a 4096-event flight recorder.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Wall-clock epoch spacing; `Duration::ZERO` selects free-run.
    pub tick: Duration,
    /// Stop running epochs (but keep serving) after this many.
    pub max_epochs: Option<u64>,
    /// HTTP worker threads (= concurrently served connections).
    pub http_threads: usize,
    /// Cap on request bodies, bytes.
    pub max_body: usize,
    /// Accepted connections queued ahead of the pool before 503.
    pub queue: usize,
    /// Flight-recorder capacity, events.
    pub ring_capacity: usize,
    /// Directory for rotating JSONL trace files (`None` disables the
    /// file sink).
    pub trace_dir: Option<PathBuf>,
    /// Events per trace file before the rotate worker switches files.
    pub trace_file_events: u64,
    /// Background-worker tick interval.
    pub worker_interval: Duration,
    /// State directory for crash-safe snapshots and event logs (`None`
    /// disables persistence). [`serve_scenario`] recovers from it when
    /// it already holds a usable snapshot.
    pub state_dir: Option<PathBuf>,
    /// Epochs between automatic snapshots (0 = only explicit
    /// `POST /snapshot` requests).
    pub snapshot_every: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            tick: Duration::from_millis(25),
            max_epochs: None,
            http_threads: 8,
            max_body: http::DEFAULT_MAX_BODY,
            queue: 128,
            ring_capacity: 4096,
            trace_dir: None,
            trace_file_events: 10_000,
            worker_interval: Duration::from_millis(50),
            state_dir: None,
            snapshot_every: 64,
        }
    }
}

/// What a finished daemon reports.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Epochs the control loop ran.
    pub epochs: u64,
    /// Final state of every metric.
    pub snapshot: MetricsSnapshot,
}

/// A running daemon: address, shutdown trigger, and join.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
    http_joins: Vec<JoinHandle<()>>,
    control: Option<ControlHandle>,
    workers: Option<WorkerPool>,
    rotating: Option<RotatingJsonl>,
    metrics: Arc<copart_telemetry::MetricsRegistry>,
}

impl ServerHandle {
    /// The bound listen address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to drain and stop, like `POST /shutdown`.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for shutdown to be requested (over the wire or via
    /// [`ServerHandle::shutdown`]), drains, and reports.
    pub fn join(mut self) -> ServeReport {
        if let Some(accept) = self.accept_join.take() {
            let _ = accept.join();
        }
        for join in self.http_joins.drain(..) {
            let _ = join.join();
        }
        let mut epochs = 0;
        if let Some(control) = self.control.take() {
            let (tx, rx) = mpsc::sync_channel(1);
            if control
                .commands
                .send(Command::Shutdown { reply: tx })
                .is_ok()
            {
                if let Ok(n) = rx.recv_timeout(Duration::from_secs(30)) {
                    epochs = n;
                }
            }
            control.join();
        }
        if let Some(workers) = self.workers.take() {
            workers.shutdown();
        }
        if let Some(rotating) = self.rotating.take() {
            if let Err(e) = rotating.flush() {
                eprintln!("copart serve: flushing rotating trace: {e}");
            }
        }
        ServeReport {
            epochs,
            snapshot: self.metrics.snapshot(),
        }
    }
}

/// Builds the scenario's runtime (fault-free or fault-injected) and
/// starts the daemon over it. With [`ServeConfig::state_dir`] set and a
/// usable snapshot in it, the daemon recovers — restores the snapshot,
/// replays the event-log tail — and continues the dead process's run
/// instead of starting over.
///
/// # Errors
///
/// Fails when the scenario cannot be built, the state directory holds
/// another run's state, profiling does not survive the fault plan, or
/// the listen address cannot be bound.
pub fn serve_scenario(scenario: &Scenario, cfg: ServeConfig) -> Result<ServerHandle, String> {
    if let Some(dir) = cfg.state_dir.clone() {
        match scenario.faults.clone() {
            None => {
                if let Some(rec) = recover_sim(scenario, &dir, cfg.snapshot_every)? {
                    return serve_recovered(rec, cfg);
                }
            }
            Some(plan) => {
                if let Some(rec) = recover_faulty(scenario, plan, &dir, cfg.snapshot_every)? {
                    return serve_recovered(rec, cfg);
                }
            }
        }
    }
    let env = scenario.env();
    match scenario.faults.clone() {
        None => serve(scenario.build_sim(&env)?, env, cfg),
        Some(plan) => serve(scenario.build_faulty(&env, plan)?, env, cfg),
    }
}

/// The trace sinks and background jobs a daemon boots with, fresh or
/// recovered.
struct Sinks {
    ring: SharedRing,
    rotating: Option<RotatingJsonl>,
    background: Vec<Box<dyn Worker>>,
    recorder: Box<dyn Recorder + Send>,
}

/// Builds the flight recorder, the optional file sink, and the workers
/// that watch them. `resume_below` reopens the file sink truncated to
/// trace events below the restored snapshot's epoch (replay re-emits
/// the rest); the in-memory ring always starts empty.
fn build_sinks(
    cfg: &ServeConfig,
    metrics: &Arc<MetricsRegistry>,
    resume_below: Option<u64>,
) -> Result<Sinks, String> {
    let ring = SharedRing::new(cfg.ring_capacity.max(1));
    let mut background: Vec<Box<dyn Worker>> = vec![
        Box::new(HealthCheckWorker::new(Arc::clone(metrics), cfg.max_epochs)),
        Box::new(TraceReplayWorker::new(ring.clone(), Arc::clone(metrics))),
    ];
    let mut rotating = None;
    let recorder: Box<dyn Recorder + Send> = match &cfg.trace_dir {
        None => Box::new(ring.clone()),
        Some(dir) => {
            let sink = match resume_below {
                None => RotatingJsonl::create(dir, "trace", cfg.trace_file_events),
                Some(cut) => RotatingJsonl::resume(dir, "trace", cfg.trace_file_events, cut),
            }
            .map_err(|e| format!("cannot open trace dir {}: {e}", dir.display()))?;
            background.push(Box::new(TraceRotateWorker::new(
                sink.clone(),
                Arc::clone(metrics),
            )));
            rotating = Some(sink.clone());
            Box::new(TeeRecorder::new(Box::new(ring.clone()), Box::new(sink)))
        }
    };
    Ok(Sinks {
        ring,
        rotating,
        background,
        recorder,
    })
}

fn check_pacing(cfg: &ServeConfig) -> Result<(), String> {
    if cfg.tick.is_zero() && cfg.max_epochs.is_none() {
        return Err("free-run (tick 0) needs --epochs, or the loop would spin forever".into());
    }
    Ok(())
}

/// Starts the daemon over an already-built (not yet profiled) runtime.
///
/// # Errors
///
/// Fails when profiling fails, the trace directory cannot be created,
/// or the listen address cannot be bound.
pub fn serve<B: ServeBackend>(
    mut runtime: ConsolidationRuntime<B>,
    env: ScenarioEnv,
    cfg: ServeConfig,
) -> Result<ServerHandle, String> {
    check_pacing(&cfg)?;
    let metrics = runtime.metrics_handle();
    let sinks = build_sinks(&cfg, &metrics, None)?;
    runtime.set_recorder(sinks.recorder);
    profile_with_retries(&mut runtime, PROFILE_ATTEMPTS)?;
    let mut run = PersistedRun::new(runtime, env);
    if let Some(dir) = cfg.state_dir.clone() {
        run.enable_persistence(PersistConfig {
            dir,
            snapshot_every: cfg.snapshot_every,
        })?;
    }
    serve_run(run, cfg, sinks.ring, sinks.rotating, sinks.background)
}

/// Starts the daemon over a restored-but-not-yet-replayed run: attaches
/// the (resume-truncated) trace sinks, replays the event-log tail
/// through them, and serves the continued run.
fn serve_recovered<B: ServeBackend>(
    mut rec: Recovered<B>,
    cfg: ServeConfig,
) -> Result<ServerHandle, String> {
    check_pacing(&cfg)?;
    let metrics = rec.metrics_handle();
    let sinks = build_sinks(&cfg, &metrics, Some(rec.snapshot_epoch()))?;
    rec.set_recorder(sinks.recorder);
    let run = rec.replay(true)?;
    serve_run(run, cfg, sinks.ring, sinks.rotating, sinks.background)
}

/// The shared back half of both boot paths: spawn the control thread,
/// the worker pool, and the HTTP front end over a ready [`PersistedRun`].
fn serve_run<B: ServeBackend>(
    run: PersistedRun<B>,
    cfg: ServeConfig,
    ring: SharedRing,
    rotating: Option<RotatingJsonl>,
    background: Vec<Box<dyn Worker>>,
) -> Result<ServerHandle, String> {
    let metrics = run.runtime().metrics_handle();
    let (cmd_tx, cmd_rx) = mpsc::channel();
    let control = spawn_control(
        run,
        DaemonConfig {
            tick: cfg.tick,
            max_epochs: cfg.max_epochs,
        },
        cmd_rx,
        cmd_tx.clone(),
    );
    let workers = WorkerPool::spawn(background, cfg.worker_interval, Arc::clone(&metrics));

    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure the listener: {e}"))?;

    // Prime the HTTP counters so /metrics exposes them as 0 from boot.
    for name in [
        "http_requests",
        "http_responses_2xx",
        "http_responses_4xx",
        "http_responses_5xx",
        "http_rejected_overload",
    ] {
        metrics.add(name, 0);
    }

    let shutdown = Arc::new(AtomicBool::new(false));
    let gateway = Arc::new(Gateway {
        metrics: Arc::clone(&metrics),
        ring,
        status: Arc::clone(&control.status),
        commands: cmd_tx,
    });

    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(cfg.queue.max(1));
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let mut http_joins = Vec::with_capacity(cfg.http_threads.max(1));
    for i in 0..cfg.http_threads.max(1) {
        let rx = Arc::clone(&conn_rx);
        let gw = Arc::clone(&gateway);
        let stop = Arc::clone(&shutdown);
        let max_body = cfg.max_body;
        let join = std::thread::Builder::new()
            .name(format!("copart-http-{i}"))
            .spawn(move || http_worker(&rx, &gw, &stop, max_body))
            .map_err(|e| format!("spawning HTTP worker: {e}"))?;
        http_joins.push(join);
    }
    let accept_stop = Arc::clone(&shutdown);
    let accept_metrics = Arc::clone(&metrics);
    let accept_join = std::thread::Builder::new()
        .name("copart-accept".into())
        .spawn(move || accept_loop(&listener, &conn_tx, &accept_stop, &accept_metrics))
        .map_err(|e| format!("spawning the accept thread: {e}"))?;

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_join: Some(accept_join),
        http_joins,
        control: Some(control),
        workers: Some(workers),
        rotating,
        metrics,
    })
}

/// Polls the non-blocking listener, queueing connections for the pool
/// and answering 503 directly when the queue is full.
fn accept_loop(
    listener: &TcpListener,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    metrics: &copart_telemetry::MetricsRegistry,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                // Request/response over keep-alive: Nagle + delayed ACK
                // would add ~40 ms to every round trip.
                let _ = stream.set_nodelay(true);
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        metrics.inc("http_rejected_overload");
                        let mut resp = Response::error(503, "server is at connection capacity");
                        resp.close = true;
                        let _ = resp.write_to(&mut stream);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Dropping conn_tx disconnects the pool: workers drain the queue,
    // finish their in-flight request, and exit.
}

/// One pool thread: serves queued connections until the queue closes.
fn http_worker(
    conn_rx: &Mutex<Receiver<TcpStream>>,
    gateway: &Gateway,
    shutdown: &AtomicBool,
    max_body: usize,
) {
    loop {
        let stream = {
            let rx = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match stream {
            Ok(stream) => serve_connection(stream, gateway, shutdown, max_body),
            Err(_) => return,
        }
    }
}

/// Serves one (keep-alive) connection to completion.
fn serve_connection(stream: TcpStream, gateway: &Gateway, shutdown: &AtomicBool, max_body: usize) {
    // The read timeout doubles as the keep-alive poll interval, so an
    // idle connection notices shutdown within ~250 ms.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, max_body) {
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Idle) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(ReadOutcome::Request(req)) => {
                gateway.metrics.inc("http_requests");
                let mut resp = route(&req, gateway, shutdown);
                if !req.keep_alive || shutdown.load(Ordering::SeqCst) {
                    resp.close = true;
                }
                count_response(gateway, resp.status);
                if resp.write_to(&mut writer).is_err() || resp.close {
                    return;
                }
            }
            Err(e) => {
                let status = e.status();
                if status == 0 {
                    return;
                }
                gateway.metrics.inc("http_requests");
                count_response(gateway, status);
                let mut resp = Response::error(status, &e.to_string());
                resp.close = true;
                let _ = resp.write_to(&mut writer);
                return;
            }
        }
    }
}

fn count_response(gateway: &Gateway, status: u16) {
    match status / 100 {
        2 => gateway.metrics.inc("http_responses_2xx"),
        4 => gateway.metrics.inc("http_responses_4xx"),
        5 => gateway.metrics.inc("http_responses_5xx"),
        _ => {}
    }
}

/// Routes one request. Reads are answered in place; mutations round-trip
/// through the control thread.
fn route(req: &Request, gateway: &Gateway, shutdown: &AtomicBool) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => {
            let mut resp = Response::text(200, prometheus::render(&gateway.metrics.snapshot()));
            resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
            resp
        }
        ("GET", "/status") => {
            let status = gateway
                .status
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            Response::json(200, status)
        }
        ("GET", "/healthz") => {
            // Unset means the first health check has not run yet; treat
            // a booting daemon as live.
            if gateway.metrics.gauge("healthy").unwrap_or(1.0) > 0.0 {
                Response::text(200, "ok\n")
            } else {
                Response::error(503, "control loop is stalled")
            }
        }
        ("GET", "/trace") => {
            let tail = match req.query_param("tail").map(str::parse::<usize>) {
                None => 32,
                Some(Ok(n)) => n,
                Some(Err(_)) => return Response::error(400, "tail must be a non-negative integer"),
            };
            let mut resp = Response::text(200, gateway.ring.tail_jsonl(tail));
            resp.content_type = "application/x-ndjson";
            resp
        }
        ("POST", "/apps") => match body_field(req, "bench") {
            Ok(bench) => roundtrip(gateway, 201, |reply| Command::Admit { bench, reply }),
            Err(resp) => resp,
        },
        ("DELETE", path) if path.starts_with("/apps/") => {
            match path["/apps/".len()..].parse::<u16>() {
                Ok(group) => roundtrip(gateway, 200, |reply| Command::Remove { group, reply }),
                Err(_) => Response::error(400, "the app id must be a group number"),
            }
        }
        ("POST", "/policy") => match body_field(req, "policy") {
            Ok(policy) => roundtrip(gateway, 200, |reply| Command::SetPolicy { policy, reply }),
            Err(resp) => resp,
        },
        ("POST", "/snapshot") => roundtrip(gateway, 200, |reply| Command::Snapshot { reply }),
        ("POST", "/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"draining\":true}")
        }
        (
            _,
            "/metrics" | "/status" | "/healthz" | "/trace" | "/apps" | "/policy" | "/snapshot"
            | "/shutdown",
        ) => Response::error(405, "method not allowed for this path"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Extracts a required string field from a JSON request body.
fn body_field(req: &Request, field: &str) -> Result<String, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    let doc =
        Json::parse(text).map_err(|e| Response::error(400, &format!("body is not JSON: {e}")))?;
    doc.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| Response::error(400, &format!("body needs a string field {field:?}")))
}

/// Sends a command to the control thread and waits for its reply.
fn roundtrip(
    gateway: &Gateway,
    ok_status: u16,
    build: impl FnOnce(mpsc::SyncSender<ApiResult>) -> Command,
) -> Response {
    let (tx, rx) = mpsc::sync_channel(1);
    if gateway.commands.send(build(tx)).is_err() {
        return Response::error(503, "control loop is shutting down");
    }
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Ok(body)) => Response::json(ok_status, body),
        Ok(Err((status, msg))) => Response::error(status, &msg),
        Err(_) => Response::error(504, "control loop did not answer in time"),
    }
}
