//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches regenerate the paper's Figure 16 (controller overhead) and
//! quantify the simulator substrate itself (cache-access throughput,
//! machine ticks, matching scaling). Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use copart_core::fsm::AppState;
use copart_core::next_state::AppClassification;
use copart_core::state::{AllocationState, SystemState, WaysBudget};
use copart_rdt::MbaLevel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random but valid `(state, classifications)` pair for `n`
/// applications on an 11-way budget — the Figure 16 workload.
pub fn synthetic_instance(n: usize, seed: u64) -> (SystemState, Vec<AppClassification>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let budget = WaysBudget::full_machine(11);
    let mut allocs = Vec::with_capacity(n);
    let mut remaining = budget.total_ways;
    for i in 0..n {
        let left = (n - i) as u32;
        let ways = if left == 1 {
            remaining
        } else {
            rng.gen_range(1..=(remaining - (left - 1)))
        };
        remaining -= ways;
        allocs.push(AllocationState {
            ways,
            mba: MbaLevel::new(rng.gen_range(1..=10u8) * 10),
        });
    }
    let apps = (0..n)
        .map(|_| {
            let pick = |r: &mut SmallRng| match r.gen_range(0..3u8) {
                0 => AppState::Supply,
                1 => AppState::Maintain,
                _ => AppState::Demand,
            };
            AppClassification {
                llc: pick(&mut rng),
                mba: pick(&mut rng),
                slowdown: rng.gen_range(1.0..3.0),
            }
        })
        .collect();
    (SystemState { allocs }, apps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_instances_are_valid() {
        let budget = WaysBudget::full_machine(11);
        for n in 2..=8 {
            for seed in 0..20 {
                let (state, apps) = synthetic_instance(n, seed);
                assert!(state.is_valid(&budget));
                assert_eq!(state.total_ways(), 11);
                assert_eq!(apps.len(), n);
            }
        }
    }
}
