//! Shared fixtures and a tiny self-timing harness for the benchmarks.
//!
//! The benches regenerate the paper's Figure 16 (controller overhead) and
//! quantify the simulator substrate itself (cache-access throughput,
//! machine ticks, matching scaling). Run with `cargo bench --workspace`.
//! Everything is std-only: each bench is a plain `harness = false` binary
//! timed with [`std::time::Instant`], so no external benchmark framework
//! is needed and the workspace builds offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub mod artifact;
pub use artifact::Artifact;

use copart_core::fsm::AppState;
use copart_core::next_state::AppClassification;
use copart_core::state::{AllocationState, SystemState, WaysBudget};
use copart_rdt::MbaLevel;
use copart_rng::XorShift64Star;

/// Builds a random but valid `(state, classifications)` pair for `n`
/// applications on an 11-way budget — the Figure 16 workload.
pub fn synthetic_instance(n: usize, seed: u64) -> (SystemState, Vec<AppClassification>) {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let budget = WaysBudget::full_machine(11);
    let mut allocs = Vec::with_capacity(n);
    let mut remaining = budget.total_ways;
    for i in 0..n {
        let left = (n - i) as u32;
        let ways = if left == 1 {
            remaining
        } else {
            rng.gen_range(1..=(remaining - (left - 1)))
        };
        remaining -= ways;
        allocs.push(AllocationState {
            ways,
            mba: MbaLevel::new(rng.gen_range(1..=10u8) * 10),
        });
    }
    let apps = (0..n)
        .map(|_| {
            let pick = |r: &mut XorShift64Star| match r.gen_range(0..3u8) {
                0 => AppState::Supply,
                1 => AppState::Maintain,
                _ => AppState::Demand,
            };
            AppClassification {
                llc: pick(&mut rng),
                mba: pick(&mut rng),
                slowdown: rng.gen_range(1.0..3.0),
            }
        })
        .collect();
    (SystemState { allocs }, apps)
}

/// One benchmark measurement: per-iteration timing statistics over
/// several equally sized batches.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Iterations per measured batch (chosen by calibration).
    pub iters: u64,
    /// Batches measured after calibration.
    pub batches: u32,
    /// Mean nanoseconds per iteration across all batches.
    pub mean_ns: f64,
    /// Per-iteration mean of the fastest batch.
    pub best_ns: f64,
}

/// Times `f`, prints one aligned report line, and returns the statistics.
///
/// The batch size is calibrated by doubling until one batch takes at
/// least ~5 ms (capped at 2²⁴ iterations for sub-nanosecond bodies), so
/// the `Instant` read-out error is amortized to noise; seven batches are
/// then measured. The calibration runs also serve as warm-up.
pub fn bench(label: &str, mut f: impl FnMut()) -> Timing {
    const MIN_BATCH: Duration = Duration::from_millis(5);
    const BATCHES: u32 = 7;
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= MIN_BATCH || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let mut means = Vec::with_capacity(BATCHES as usize);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        means.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    let timing = Timing {
        iters,
        batches: BATCHES,
        mean_ns: means.iter().sum::<f64>() / f64::from(BATCHES),
        best_ns: means.iter().copied().fold(f64::INFINITY, f64::min),
    };
    println!(
        "{label:<44} {:>14.1} ns/iter (best {:>12.1}, {} × {} iters)",
        timing.mean_ns, timing.best_ns, timing.batches, timing.iters
    );
    timing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_timings() {
        let mut n = 0u64;
        let t = bench("tests/noop_counter", || n = n.wrapping_add(1));
        assert!(t.mean_ns.is_finite() && t.mean_ns > 0.0);
        assert!(t.best_ns <= t.mean_ns);
        assert!(t.iters >= 1 && n >= t.iters);
    }

    #[test]
    fn synthetic_instances_are_valid() {
        let budget = WaysBudget::full_machine(11);
        for n in 2..=8 {
            for seed in 0..20 {
                let (state, apps) = synthetic_instance(n, seed);
                assert!(state.is_valid(&budget));
                assert_eq!(state.total_ways(), 11);
                assert_eq!(apps.len(), n);
            }
        }
    }
}
