//! `BENCH_*.json` performance artifacts.
//!
//! Each bench binary collects its headline numbers into an [`Artifact`]
//! — a flat, insertion-ordered map of string/number fields — and calls
//! [`Artifact::write`] at exit. When the `BENCH_JSON_DIR` environment
//! variable is set (as `scripts/bench_gate.sh` and the CI `bench` job
//! do), the artifact lands there as `BENCH_<name>.json`; otherwise the
//! call is a no-op and the bench stays a plain human-readable printout.
//!
//! The schema is deliberately flat so the `copart bench-report` diff
//! tool can gate on key *suffixes* alone: `*_ns` fields are latencies
//! (compared with a tolerance ratio), `*allocs*` fields are exact
//! counts, `*_per_sec` fields are throughputs (higher is better), and
//! string fields (digests, schema) must match byte-for-byte.

use std::fmt::Write as _;

/// One flat `BENCH_*.json` artifact under construction.
#[derive(Debug, Clone)]
pub struct Artifact {
    fields: Vec<(String, Value)>,
}

#[derive(Debug, Clone)]
enum Value {
    Num(f64),
    Str(String),
}

impl Artifact {
    /// Starts an artifact; `schema` becomes its first field (e.g.
    /// `"copart-bench-epoch/v1"`).
    pub fn new(schema: &str) -> Artifact {
        Artifact {
            fields: vec![("schema".to_string(), Value::Str(schema.to_string()))],
        }
    }

    /// Records a numeric field.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite value — NaN/∞ have no JSON encoding and
    /// would poison the regression gate.
    pub fn num(&mut self, key: &str, v: f64) {
        assert!(v.is_finite(), "artifact field {key} is not finite: {v}");
        self.fields.push((key.to_string(), Value::Num(v)));
    }

    /// Records a string field (digests and other exact-match values).
    pub fn text(&mut self, key: &str, v: &str) {
        self.fields
            .push((key.to_string(), Value::Str(v.to_string())));
    }

    /// Serializes the artifact as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < self.fields.len() { "," } else { "" };
            match v {
                Value::Num(x) => {
                    let _ = writeln!(out, "  \"{}\": {x}{comma}", escape(k));
                }
                Value::Str(s) => {
                    let _ = writeln!(out, "  \"{}\": \"{}\"{comma}", escape(k), escape(s));
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `$BENCH_JSON_DIR`, creating the
    /// directory if needed; does nothing when the variable is unset
    /// (plain bench runs stay artifact-free).
    ///
    /// # Panics
    ///
    /// Panics when the directory or file cannot be written — a bench
    /// asked for an artifact must not silently produce none.
    pub fn write(&self, name: &str) {
        let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
            return;
        };
        std::fs::create_dir_all(&dir).expect("BENCH_JSON_DIR must be creatable");
        let path = format!("{dir}/BENCH_{name}.json");
        std::fs::write(&path, self.to_json()).expect("artifact must be writable");
        println!("bench artifact written to {path}");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_through_the_telemetry_parser() {
        let mut a = Artifact::new("copart-bench-test/v1");
        a.num("epoch_ns_p50", 1234.5);
        a.num("allocs_per_epoch", 2.0);
        a.text("digest", "0x00ff");
        let parsed = copart_telemetry::json::Json::parse(&a.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("copart-bench-test/v1")
        );
        assert_eq!(
            parsed.get("epoch_ns_p50").and_then(|v| v.as_f64()),
            Some(1234.5)
        );
        assert_eq!(
            parsed.get("allocs_per_epoch").and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(
            parsed.get("digest").and_then(|v| v.as_str()),
            Some("0x00ff")
        );
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn non_finite_fields_are_rejected() {
        let mut a = Artifact::new("s");
        a.num("bad", f64::NAN);
    }

    #[test]
    fn strings_are_escaped() {
        let mut a = Artifact::new("s\"x\\y");
        a.text("k", "line\nbreak");
        let parsed = copart_telemetry::json::Json::parse(&a.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("s\"x\\y")
        );
        assert_eq!(
            parsed.get("k").and_then(|v| v.as_str()),
            Some("line\nbreak")
        );
    }
}
