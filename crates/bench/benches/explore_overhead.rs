//! Figure 16: one `get_next_system_state` step as a function of the
//! application count, the greedy-allocator ablation, and the cost of the
//! observability layer on a full control epoch.
//!
//! The paper reports 10.6–14.4 µs for 3–6 applications on the Xeon Gold
//! 6130; the target shape is microsecond scale with gentle growth. The
//! epoch sections gate two PR acceptance criteria: the no-op recorder
//! costs nothing measurable (< 2 % of an epoch), and a steady-state
//! epoch allocates (almost) nothing — warm-up is measured separately so
//! buffer growth cannot hide in the average. A planner-scale curve
//! (1000 and 4000 synthetic apps) closes with per-epoch planning
//! latency against the paper's ~1 ms budget.
//!
//! With `BENCH_JSON_DIR` set, the headline numbers land in
//! `BENCH_epoch.json` for the `scripts/bench_gate.sh` regression gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use copart_bench::{bench, synthetic_instance, Artifact};
use copart_core::next_state::{get_next_system_state, get_next_system_state_greedy};
use copart_core::planner::{Explorer, PlanScratch};
use copart_core::runtime::{ConsolidationRuntime, PeriodRecord, RuntimeConfig};
use copart_core::scale::{run_planner_scale, ScaleConfig};
use copart_core::state::WaysBudget;
use copart_core::CoPartParams;
use copart_matching::chain::{self, ChainScratch, Consumer};
use copart_rdt::SimBackend;
use copart_rng::XorShift64Star;
use copart_sim::{Machine, MachineConfig};
use copart_telemetry::{NullRecorder, Recorder, RingRecorder};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};

/// Counts heap allocations so the bench can report allocations per
/// control epoch. Only `alloc`/`realloc` count — frees are not new
/// allocations — and the counter is process-global, so the measured
/// section must run single-threaded (it does: one runtime, one thread).
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

fn main() {
    explore_step();
    eprintln!("(computing STREAM reference table...)");
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let stream = StreamReference::compute(&machine_cfg, 4);

    let mut art = Artifact::new("copart-bench-epoch/v1");
    recorder_overhead(&stream, &mut art);
    epoch_allocations(&stream, &mut art);
    layer_allocations(&stream, &mut art);
    planner_scale_curve(&mut art);
    art.write("epoch");
}

/// Figure 16 proper: the explore step alone, HR matching vs greedy.
fn explore_step() {
    println!("get_next_system_state (Figure 16; paper: 10.6-14.4 us for 3-6 apps)");
    // 11 ways bound the app count: every app needs at least one way.
    let budget = WaysBudget::full_machine(11);
    for n in [3usize, 4, 5, 6, 8, 11] {
        let instances: Vec<_> = (0..32).map(|s| synthetic_instance(n, s)).collect();
        let mut rng = XorShift64Star::seed_from_u64(1);
        let mut k = 0usize;
        bench(&format!("get_next_system_state/hr_matching/{n}"), || {
            let (state, apps) = &instances[k % instances.len()];
            k += 1;
            black_box(get_next_system_state(
                black_box(state),
                black_box(apps),
                &budget,
                &mut rng,
                true,
                true,
            ));
        });
        let mut k = 0usize;
        bench(&format!("get_next_system_state/greedy/{n}"), || {
            let (state, apps) = &instances[k % instances.len()];
            k += 1;
            black_box(get_next_system_state_greedy(
                black_box(state),
                black_box(apps),
                &budget,
                true,
                true,
            ));
        });
    }
}

/// Builds a profiled 4-app CoPart runtime with the given recorder.
fn epoch_runtime(
    stream: &StreamReference,
    recorder: Box<dyn Recorder + Send>,
) -> ConsolidationRuntime<SimBackend> {
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::build(MixKind::HighBoth, 4, machine_cfg.n_cores);
    let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
    let named = mix
        .specs()
        .iter()
        .map(|s| {
            let g = backend.add_workload(s.clone()).expect("mix fits");
            (g, s.name.clone())
        })
        .collect();
    let cfg = RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(machine_cfg.llc_ways),
        stream: stream.clone(),
        resilience: Default::default(),
        planner: Default::default(),
    };
    let mut rt = ConsolidationRuntime::new(backend, named, cfg).expect("state applies");
    rt.set_recorder(recorder);
    rt.profile().expect("profiling on the simulator");
    rt
}

/// Mean cost of one `run_period` epoch under each recorder. Both
/// runtimes are seeded identically, so they take the exact same
/// decision trajectory and the comparison isolates the recorder.
fn epoch_mean_ns(label: &str, stream: &StreamReference, recorder: Box<dyn Recorder + Send>) -> f64 {
    const EPOCHS: u32 = 200;
    let mut rt = epoch_runtime(stream, recorder);
    let t = Instant::now();
    for _ in 0..EPOCHS {
        black_box(rt.run_period().expect("period runs"));
    }
    let mean = t.elapsed().as_nanos() as f64 / f64::from(EPOCHS);
    println!("{label:<44} {mean:>14.1} ns/epoch ({EPOCHS} epochs)");
    mean
}

/// The observability acceptance check: a full control epoch with the
/// default no-op sink vs. with an enabled in-memory ring recorder.
fn recorder_overhead(stream: &StreamReference, art: &mut Artifact) {
    println!("\nrun_period epoch cost by recorder (4-app H-Both mix)");
    let null = epoch_mean_ns("run_period/null_recorder", stream, Box::new(NullRecorder));
    let ring = epoch_mean_ns(
        "run_period/ring_recorder_64k",
        stream,
        Box::new(RingRecorder::new(65_536)),
    );
    let overhead = (ring - null) / null * 100.0;
    println!(
        "full event tracing adds {overhead:+.2}% per epoch; the no-op sink skips\n\
         event construction entirely (one virtual `enabled()` call), so its\n\
         overhead is bounded by the tracing cost and must stay < 2%."
    );
    art.num("epoch_ns_null_recorder", null);
    art.num("epoch_ns_ring_recorder", ring);
}

/// Heap allocations per control epoch, warm-up and steady state split.
///
/// Warm-up epochs grow the scratch buffers to their steady sizes (and
/// may clone a new best-seen state); once warm, the arena/scratch reuse
/// across sensor → classifier → planner → actuator must keep an epoch
/// essentially allocation-free. The seed (pre-layering) runtime measured
/// ~28.4 allocations/epoch on this exact workload; the bench gate pins
/// the steady-state count near zero via `BENCH_epoch.json`.
fn epoch_allocations(stream: &StreamReference, art: &mut Artifact) {
    const SEED_ALLOCS_PER_EPOCH: f64 = 28.4;
    const WARMUP: u32 = 16;
    const EPOCHS: u32 = 400;
    let mut rt = epoch_runtime(stream, Box::new(NullRecorder));
    // One owned record up front; thereafter every epoch writes in place.
    let mut record: PeriodRecord = rt.run_period().expect("period runs");

    let before = allocs();
    for _ in 0..WARMUP {
        rt.run_period_into(&mut record).expect("period runs");
        black_box(&record);
    }
    let warmup = (allocs() - before) as f64 / f64::from(WARMUP);

    let before = allocs();
    for _ in 0..EPOCHS {
        rt.run_period_into(&mut record).expect("period runs");
        black_box(&record);
    }
    let steady = (allocs() - before) as f64 / f64::from(EPOCHS);

    println!(
        "\nrun_period heap allocations: {steady:.2}/epoch steady state \
         ({warmup:.1}/epoch during {WARMUP}-epoch warm-up; \
         seed baseline {SEED_ALLOCS_PER_EPOCH:.1}/epoch, {EPOCHS} epochs)"
    );
    if steady >= SEED_ALLOCS_PER_EPOCH {
        println!("WARNING: per-epoch allocations did not improve on the seed baseline");
    }
    art.num("allocs_per_epoch_steady", steady);
    art.num("allocs_per_epoch_warmup", warmup);
}

/// Per-layer allocation breakdown: each layer's hot path measured in
/// isolation, so a regression report points at the offending layer
/// instead of one opaque per-epoch total.
fn layer_allocations(stream: &StreamReference, art: &mut Artifact) {
    println!("\nper-layer steady-state allocations");

    // Simulator: Machine::tick with the same 4-app mix.
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::build(MixKind::HighBoth, 4, machine_cfg.n_cores);
    let mut machine = Machine::new(machine_cfg);
    for spec in mix.specs() {
        machine
            .add_app(spec.clone(), copart_rdt::ClosId(0))
            .expect("mix fits");
    }
    for _ in 0..16 {
        black_box(machine.tick(200_000_000));
    }
    let before = allocs();
    const TICKS: u32 = 200;
    for _ in 0..TICKS {
        black_box(machine.tick(200_000_000));
    }
    let sim = (allocs() - before) as f64 / f64::from(TICKS);
    println!("  sim/Machine::tick        {sim:>8.2} allocs/tick");

    // Planner: Explorer::plan_into over a churned synthetic population.
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let cfg = RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(machine_cfg.llc_ways),
        stream: stream.clone(),
        resilience: Default::default(),
        planner: Default::default(),
    };
    let instances: Vec<_> = (0..32).map(|s| synthetic_instance(6, s)).collect();
    let mut explorer = Explorer::new(7);
    let mut scratch = PlanScratch::default();
    for (state, apps) in &instances {
        black_box(explorer.plan_into(&cfg, state, apps, 0.3, &mut scratch));
    }
    let before = allocs();
    const PLANS: u32 = 320;
    for k in 0..PLANS {
        let (state, apps) = &instances[k as usize % instances.len()];
        black_box(explorer.plan_into(&cfg, state, apps, 0.3, &mut scratch));
    }
    let plan = (allocs() - before) as f64 / f64::from(PLANS);
    println!("  planner/plan_into        {plan:>8.2} allocs/plan");

    // Matching: the indexed instability-chaining allocator alone.
    let mut rng = XorShift64Star::seed_from_u64(9);
    let capacities = vec![16usize; 3];
    let consumers: Vec<Consumer> = (0..64)
        .map(|_| Consumer {
            priority: rng.gen_range(1.0..3.0),
            preference: vec![0, 1, 2],
        })
        .collect();
    let mut assignment = Vec::new();
    let mut chain_scratch = ChainScratch::default();
    chain::allocate_into(&capacities, &consumers, &mut assignment, &mut chain_scratch);
    let before = allocs();
    const MATCHES: u32 = 1000;
    for _ in 0..MATCHES {
        black_box(chain::allocate_into(
            &capacities,
            &consumers,
            &mut assignment,
            &mut chain_scratch,
        ));
    }
    let matching = (allocs() - before) as f64 / f64::from(MATCHES);
    println!("  matching/allocate_into   {matching:>8.2} allocs/call");

    art.num("allocs_per_tick_sim", sim);
    art.num("allocs_per_plan", plan);
    art.num("allocs_per_matching", matching);
}

/// Planner latency at three to four orders of magnitude more consumers
/// than the simulator can host: the synthetic scale harness at 1000 and
/// 4000 applications, against the paper's ~1 ms epoch budget. The
/// decision digest is a pure function of the config, so it doubles as a
/// cross-machine determinism check in the bench gate.
fn planner_scale_curve(art: &mut Artifact) {
    println!("\nplanner-scale latency (synthetic population, budget ~1 ms/epoch)");
    for n in [1000usize, 4000] {
        let r = run_planner_scale(&ScaleConfig::new(n, 50, 0x00C0_FA12));
        println!(
            "  {n:>5} apps: plan p50 {:>9.1} ns, p99 {:>9.1} ns, max {:>9.1} ns \
             ({} transfers, {} rounds)",
            r.plan_ns_p50 as f64,
            r.plan_ns_p99 as f64,
            r.plan_ns_max as f64,
            r.transfers,
            r.matching_rounds
        );
        art.num(&format!("scale_{n}_plan_ns_p50"), r.plan_ns_p50 as f64);
        art.num(&format!("scale_{n}_plan_ns_p99"), r.plan_ns_p99 as f64);
        art.num(
            &format!("scale_{n}_matching_rounds"),
            r.matching_rounds as f64,
        );
        art.text(&format!("scale_{n}_digest"), &format!("{:#018x}", r.digest));
    }
}
