//! Figure 16: one `get_next_system_state` step as a function of the
//! application count, the greedy-allocator ablation, and the cost of the
//! observability layer on a full control epoch.
//!
//! The paper reports 10.6–14.4 µs for 3–6 applications on the Xeon Gold
//! 6130; the target shape is microsecond scale with gentle O(N²) growth.
//! The epoch section demonstrates the PR's acceptance criterion: with the
//! default no-op recorder the tracing hooks cost nothing measurable
//! (< 2 % of an epoch), because `Recorder::enabled()` gates all event
//! construction.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use copart_bench::{bench, synthetic_instance};
use copart_core::next_state::{get_next_system_state, get_next_system_state_greedy};
use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::CoPartParams;
use copart_rdt::SimBackend;
use copart_rng::XorShift64Star;
use copart_sim::{Machine, MachineConfig};
use copart_telemetry::{NullRecorder, Recorder, RingRecorder};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};

/// Counts heap allocations so the bench can report allocations per
/// control epoch. Only `alloc`/`realloc` count — frees are not new
/// allocations — and the counter is process-global, so the measured
/// section must run single-threaded (it does: one runtime, one thread).
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    explore_step();
    recorder_overhead();
}

/// Figure 16 proper: the explore step alone, HR matching vs greedy.
fn explore_step() {
    println!("get_next_system_state (Figure 16; paper: 10.6-14.4 us for 3-6 apps)");
    // 11 ways bound the app count: every app needs at least one way.
    let budget = WaysBudget::full_machine(11);
    for n in [3usize, 4, 5, 6, 8, 11] {
        let instances: Vec<_> = (0..32).map(|s| synthetic_instance(n, s)).collect();
        let mut rng = XorShift64Star::seed_from_u64(1);
        let mut k = 0usize;
        bench(&format!("get_next_system_state/hr_matching/{n}"), || {
            let (state, apps) = &instances[k % instances.len()];
            k += 1;
            black_box(get_next_system_state(
                black_box(state),
                black_box(apps),
                &budget,
                &mut rng,
                true,
                true,
            ));
        });
        let mut k = 0usize;
        bench(&format!("get_next_system_state/greedy/{n}"), || {
            let (state, apps) = &instances[k % instances.len()];
            k += 1;
            black_box(get_next_system_state_greedy(
                black_box(state),
                black_box(apps),
                &budget,
                true,
                true,
            ));
        });
    }
}

/// Builds a profiled 4-app CoPart runtime with the given recorder.
fn epoch_runtime(
    stream: &StreamReference,
    recorder: Box<dyn Recorder + Send>,
) -> ConsolidationRuntime<SimBackend> {
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::build(MixKind::HighBoth, 4, machine_cfg.n_cores);
    let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
    let named = mix
        .specs()
        .iter()
        .map(|s| {
            let g = backend.add_workload(s.clone()).expect("mix fits");
            (g, s.name.clone())
        })
        .collect();
    let cfg = RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(machine_cfg.llc_ways),
        stream: stream.clone(),
        resilience: Default::default(),
    };
    let mut rt = ConsolidationRuntime::new(backend, named, cfg).expect("state applies");
    rt.set_recorder(recorder);
    rt.profile().expect("profiling on the simulator");
    rt
}

/// Mean cost of one `run_period` epoch under each recorder. Both
/// runtimes are seeded identically, so they take the exact same
/// decision trajectory and the comparison isolates the recorder.
fn epoch_mean_ns(label: &str, stream: &StreamReference, recorder: Box<dyn Recorder + Send>) -> f64 {
    const EPOCHS: u32 = 200;
    let mut rt = epoch_runtime(stream, recorder);
    let t = Instant::now();
    for _ in 0..EPOCHS {
        black_box(rt.run_period().expect("period runs"));
    }
    let mean = t.elapsed().as_nanos() as f64 / f64::from(EPOCHS);
    println!("{label:<44} {mean:>14.1} ns/epoch ({EPOCHS} epochs)");
    mean
}

/// The acceptance check: a full control epoch with the default no-op
/// sink vs. with an enabled in-memory ring recorder.
fn recorder_overhead() {
    println!("\nrun_period epoch cost by recorder (4-app H-Both mix)");
    eprintln!("(computing STREAM reference table...)");
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let stream = StreamReference::compute(&machine_cfg, 4);
    let null = epoch_mean_ns("run_period/null_recorder", &stream, Box::new(NullRecorder));
    let ring = epoch_mean_ns(
        "run_period/ring_recorder_64k",
        &stream,
        Box::new(RingRecorder::new(65_536)),
    );
    let overhead = (ring - null) / null * 100.0;
    println!(
        "full event tracing adds {overhead:+.2}% per epoch; the no-op sink skips\n\
         event construction entirely (one virtual `enabled()` call), so its\n\
         overhead is bounded by the tracing cost and must stay < 2%."
    );
    epoch_allocations(&stream);
}

/// Heap allocations per untraced control epoch: the scratch-buffer hot
/// path must allocate strictly less than the pre-layering runtime did.
/// The seed (pre-refactor) runtime measured ~28.4 allocations per epoch on
/// this exact workload; the layered driver reuses per-epoch scratch, so
/// the count must come in below that baseline.
fn epoch_allocations(stream: &StreamReference) {
    /// Allocations/epoch of the monolithic seed runtime (measured before
    /// the layered refactor on this same 4-app H-Both workload).
    const SEED_ALLOCS_PER_EPOCH: f64 = 28.4;
    const EPOCHS: u32 = 400;
    let mut rt = epoch_runtime(stream, Box::new(NullRecorder));
    // Warm up past exploration start so Vec scratch reaches steady size.
    for _ in 0..8 {
        black_box(rt.run_period().expect("period runs"));
    }
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    for _ in 0..EPOCHS {
        black_box(rt.run_period().expect("period runs"));
    }
    let per_epoch = (ALLOC_COUNT.load(Ordering::Relaxed) - before) as f64 / f64::from(EPOCHS);
    println!(
        "\nrun_period heap allocations: {per_epoch:.1}/epoch \
         (seed baseline {SEED_ALLOCS_PER_EPOCH:.1}/epoch, {EPOCHS} epochs)"
    );
    if per_epoch >= SEED_ALLOCS_PER_EPOCH {
        println!("WARNING: per-epoch allocations did not improve on the seed baseline");
    }
}
