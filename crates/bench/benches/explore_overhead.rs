//! Figure 16 as a Criterion benchmark: one `getNextSystemState` step as a
//! function of the application count, plus the greedy-allocator ablation.
//!
//! The paper reports 10.6–14.4 µs for 3–6 applications on the Xeon Gold
//! 6130; the target shape is microsecond scale with gentle O(N²) growth.

use copart_bench::synthetic_instance;
use copart_core::next_state::{get_next_system_state, get_next_system_state_greedy};
use copart_core::state::WaysBudget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let budget = WaysBudget::full_machine(11);
    let mut group = c.benchmark_group("get_next_system_state");
    for n in [3usize, 4, 5, 6, 8, 12, 16] {
        let instances: Vec<_> = (0..32).map(|s| synthetic_instance(n, s)).collect();
        group.bench_with_input(BenchmarkId::new("hr_matching", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut k = 0usize;
            b.iter(|| {
                let (state, apps) = &instances[k % instances.len()];
                k += 1;
                black_box(get_next_system_state(
                    black_box(state),
                    black_box(apps),
                    &budget,
                    &mut rng,
                    true,
                    true,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                let (state, apps) = &instances[k % instances.len()];
                k += 1;
                black_box(get_next_system_state_greedy(
                    black_box(state),
                    black_box(apps),
                    &budget,
                    true,
                    true,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
