//! The parallel sweep engine on the workspace's hottest enumeration
//! path: the ST offline search (`static_search`) over the Figure 12
//! state space, timed at increasing worker counts.
//!
//! Reports wall-clock per job count, the speedup over the serial run,
//! and the pool occupancy of the widest run — and publishes the last
//! two as telemetry gauges (`parallel_speedup`, `pool_occupancy`).
//! Determinism is asserted, not sampled: every job count must return
//! the exact same chosen state.
//!
//! The ≥ 3× @ 8 threads acceptance bar is only *enforced* when the host
//! actually exposes ≥ 8 hardware threads; on smaller machines (or under
//! `COPART_BENCH_NO_ASSERT=1`) the bench still prints the measurement
//! so CI logs carry the number.

use std::time::Instant;

use copart_core::policies::{solo_full_ips, static_search, EvalOptions};
use copart_core::state::WaysBudget;
use copart_sim::MachineConfig;
use copart_telemetry::MetricsRegistry;
use copart_workloads::{MixKind, WorkloadMix};

fn main() {
    let machine = MachineConfig::xeon_gold_6130();
    let mix = WorkloadMix::paper_default(MixKind::HighBoth);
    let specs = mix.specs();
    eprintln!("(measuring solo references...)");
    let full = solo_full_ips(&machine, &specs);
    let budget = WaysBudget::full_machine(machine.llc_ways);
    // The Figure 12 ST search: the default candidate population on the
    // default probe lengths.
    let opts = EvalOptions::default();

    println!(
        "static_search over the Fig 12 state space ({} candidates x {} probe periods, H-Both mix)",
        opts.static_candidates + 1,
        opts.static_probe_periods
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let registry = MetricsRegistry::new();
    let mut serial_ns = 0u64;
    let mut widest: Option<(usize, u64, f64)> = None; // (jobs, best_ns, occupancy)
    let mut reference = None;
    for jobs in [1usize, 2, 4, 8] {
        copart_parallel::set_jobs(Some(jobs));
        const REPS: u32 = 3;
        let mut best_ns = u64::MAX;
        let mut occupancy = 0.0;
        for _ in 0..REPS {
            let t = Instant::now();
            let state = static_search(&machine, &specs, &full, &budget, &opts);
            best_ns = best_ns.min(t.elapsed().as_nanos() as u64);
            occupancy = copart_parallel::last_sweep().map_or(0.0, |s| s.occupancy());
            // Byte-identical results at every job count.
            match &reference {
                None => reference = Some(state),
                Some(expect) => assert_eq!(
                    state, *expect,
                    "static_search diverged between --jobs 1 and --jobs {jobs}"
                ),
            }
        }
        if jobs == 1 {
            serial_ns = best_ns;
        }
        widest = Some((jobs, best_ns, occupancy));
        println!(
            "static_search/jobs={jobs:<2} {:>12.1} ms (best of {REPS}), speedup {:.2}x, occupancy {:.2}",
            best_ns as f64 / 1e6,
            serial_ns as f64 / best_ns as f64,
            occupancy,
        );
    }
    copart_parallel::set_jobs(None);

    let (jobs, best_ns, occupancy) = widest.expect("at least one job count ran");
    let speedup = serial_ns as f64 / best_ns as f64;
    registry.set_gauge("parallel_speedup", speedup);
    registry.set_gauge("pool_occupancy", occupancy);
    registry.set_gauge("pool_jobs", jobs as f64);
    println!("\ntelemetry gauges:");
    print!("{}", registry.snapshot());

    let no_assert = std::env::var("COPART_BENCH_NO_ASSERT").is_ok_and(|v| v != "0");
    if cores >= 8 && !no_assert {
        assert!(
            speedup >= 3.0,
            "acceptance: static_search at 8 threads must be >= 3x over serial, got {speedup:.2}x"
        );
        println!("acceptance: {speedup:.2}x >= 3x at {jobs} threads — OK");
    } else {
        println!(
            "(speedup bar not enforced: {cores} hardware threads available{})",
            if no_assert {
                ", COPART_BENCH_NO_ASSERT set"
            } else {
                ""
            }
        );
    }
}
