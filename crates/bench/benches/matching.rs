//! Scaling of the Hospitals/Residents machinery: deferred acceptance and
//! instability chaining on instances far larger than CoPart ever builds
//! (CoPart's are ≤ 3 categories × N_A consumers), demonstrating headroom.
//!
//! The chaining section compares the indexed scratch-reuse allocator
//! (`chain::allocate_into`, a binary heap over holders) against the
//! original O(rounds × consumers) scan allocator on a 64→4096-consumer
//! curve; with `BENCH_JSON_DIR` set the indexed throughputs land in
//! `BENCH_matching.json` for the `scripts/bench_gate.sh` regression gate.

use std::hint::black_box;

use copart_bench::{bench, Artifact};
use copart_matching::chain::{self, ChainScratch, Consumer};
use copart_matching::{solve_resident_optimal, Hospital, Instance, Resident};
use copart_rng::XorShift64Star;

fn random_instance(nh: usize, nr: usize, seed: u64) -> Instance {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let hospitals = (0..nh)
        .map(|_| {
            let mut preference: Vec<usize> = (0..nr).collect();
            rng.shuffle(&mut preference);
            Hospital {
                capacity: rng.gen_range(1..4usize),
                preference,
            }
        })
        .collect();
    let residents = (0..nr)
        .map(|_| {
            let mut preference: Vec<usize> = (0..nh).collect();
            rng.shuffle(&mut preference);
            preference.truncate(rng.gen_range(1..=nh));
            Resident { preference }
        })
        .collect();
    Instance {
        hospitals,
        residents,
    }
}

fn chain_population(n: usize) -> (Vec<usize>, Vec<Consumer>) {
    let mut rng = XorShift64Star::seed_from_u64(9);
    let capacities = vec![n.div_ceil(4).max(1); 3];
    let consumers = (0..n)
        .map(|_| Consumer {
            priority: rng.gen_range(1.0..3.0),
            preference: vec![0, 1, 2],
        })
        .collect();
    (capacities, consumers)
}

fn main() {
    bench_deferred_acceptance();
    bench_chaining();
}

fn bench_deferred_acceptance() {
    println!("deferred_acceptance (one resident-optimal solve per iter)");
    for (nh, nr) in [(4, 16), (16, 64), (64, 256)] {
        let inst = random_instance(nh, nr, 42);
        bench(&format!("deferred_acceptance/{nh}h_{nr}r"), || {
            black_box(solve_resident_optimal(black_box(&inst)).unwrap());
        });
    }
}

/// Indexed (heap + scratch reuse) vs. the original full-scan allocator
/// across the consumer-count curve. The two must agree byte-for-byte —
/// the `matching-incremental-vs-rebuild` oracle in `copart-check` fuzzes
/// exactly this equivalence — so here only speed is at stake.
fn bench_chaining() {
    println!("\ninstability_chaining (one allocation per iter, indexed vs scan)");
    let mut art = Artifact::new("copart-bench-matching/v1");
    let mut assignment = Vec::new();
    let mut scratch = ChainScratch::default();
    for n in [64usize, 256, 1024, 4096] {
        let (capacities, consumers) = chain_population(n);
        let indexed = bench(&format!("instability_chaining/indexed/{n}"), || {
            chain::allocate_into(
                black_box(&capacities),
                black_box(&consumers),
                &mut assignment,
                &mut scratch,
            );
            black_box(&assignment);
        });
        // The scan reference is quadratic; cap it where it stops being
        // informative and the indexed curve already tells the story.
        if n <= 1024 {
            bench(&format!("instability_chaining/scan/{n}"), || {
                black_box(chain::allocate(
                    black_box(&capacities),
                    black_box(&consumers),
                ));
            });
        }
        art.num(&format!("chain_indexed_{n}_per_sec"), 1e9 / indexed.mean_ns);
        art.num(&format!("chain_indexed_{n}_ns"), indexed.mean_ns);
    }
    art.write("matching");
}
