//! Scaling of the Hospitals/Residents machinery: deferred acceptance and
//! instability chaining on instances far larger than CoPart ever builds
//! (CoPart's are ≤ 3 categories × N_A consumers), demonstrating headroom.

use copart_matching::chain::{self, Consumer};
use copart_matching::{solve_resident_optimal, Hospital, Instance, Resident};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_instance(nh: usize, nr: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let hospitals = (0..nh)
        .map(|_| {
            let mut preference: Vec<usize> = (0..nr).collect();
            preference.shuffle(&mut rng);
            Hospital {
                capacity: rng.gen_range(1..4),
                preference,
            }
        })
        .collect();
    let residents = (0..nr)
        .map(|_| {
            let mut preference: Vec<usize> = (0..nh).collect();
            preference.shuffle(&mut rng);
            preference.truncate(rng.gen_range(1..=nh));
            Resident { preference }
        })
        .collect();
    Instance {
        hospitals,
        residents,
    }
}

fn bench_deferred_acceptance(c: &mut Criterion) {
    let mut group = c.benchmark_group("deferred_acceptance");
    for (nh, nr) in [(4, 16), (16, 64), (64, 256)] {
        let inst = random_instance(nh, nr, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nh}h_{nr}r")),
            &inst,
            |b, inst| b.iter(|| black_box(solve_resident_optimal(black_box(inst)).unwrap())),
        );
    }
    group.finish();
}

fn bench_chaining(c: &mut Criterion) {
    let mut group = c.benchmark_group("instability_chaining");
    for n in [8usize, 32, 128] {
        let mut rng = SmallRng::seed_from_u64(9);
        let capacities = vec![n / 4; 3];
        let consumers: Vec<Consumer> = (0..n)
            .map(|_| Consumer {
                priority: rng.gen_range(1.0..3.0),
                preference: vec![0, 1, 2],
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(capacities, consumers),
            |b, (capacities, consumers)| {
                b.iter(|| black_box(chain::allocate(black_box(capacities), black_box(consumers))))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deferred_acceptance, bench_chaining);
criterion_main!(benches);
