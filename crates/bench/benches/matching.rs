//! Scaling of the Hospitals/Residents machinery: deferred acceptance and
//! instability chaining on instances far larger than CoPart ever builds
//! (CoPart's are ≤ 3 categories × N_A consumers), demonstrating headroom.

use std::hint::black_box;

use copart_bench::bench;
use copart_matching::chain::{self, Consumer};
use copart_matching::{solve_resident_optimal, Hospital, Instance, Resident};
use copart_rng::XorShift64Star;

fn random_instance(nh: usize, nr: usize, seed: u64) -> Instance {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let hospitals = (0..nh)
        .map(|_| {
            let mut preference: Vec<usize> = (0..nr).collect();
            rng.shuffle(&mut preference);
            Hospital {
                capacity: rng.gen_range(1..4usize),
                preference,
            }
        })
        .collect();
    let residents = (0..nr)
        .map(|_| {
            let mut preference: Vec<usize> = (0..nh).collect();
            rng.shuffle(&mut preference);
            preference.truncate(rng.gen_range(1..=nh));
            Resident { preference }
        })
        .collect();
    Instance {
        hospitals,
        residents,
    }
}

fn main() {
    bench_deferred_acceptance();
    bench_chaining();
}

fn bench_deferred_acceptance() {
    println!("deferred_acceptance (one resident-optimal solve per iter)");
    for (nh, nr) in [(4, 16), (16, 64), (64, 256)] {
        let inst = random_instance(nh, nr, 42);
        bench(&format!("deferred_acceptance/{nh}h_{nr}r"), || {
            black_box(solve_resident_optimal(black_box(&inst)).unwrap());
        });
    }
}

fn bench_chaining() {
    println!("\ninstability_chaining (one allocation per iter)");
    for n in [8usize, 32, 128] {
        let mut rng = XorShift64Star::seed_from_u64(9);
        let capacities = vec![n / 4; 3];
        let consumers: Vec<Consumer> = (0..n)
            .map(|_| Consumer {
                priority: rng.gen_range(1.0..3.0),
                preference: vec![0, 1, 2],
            })
            .collect();
        bench(&format!("instability_chaining/{n}"), || {
            black_box(chain::allocate(
                black_box(&capacities),
                black_box(&consumers),
            ));
        });
    }
}
