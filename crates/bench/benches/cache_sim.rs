//! Simulator substrate benchmarks: raw cache-access throughput, the cost
//! of one machine window tick under a consolidated mix, and the
//! set-sampling scale ablation (DESIGN.md §6).

use copart_sim::cache::{CacheConfig, SampledCache};
use copart_sim::trace::{AccessPattern, TraceGenerator};
use copart_sim::{CbmMask, ClosId, Machine, MachineConfig};
use copart_workloads::{Benchmark, MixKind, WorkloadMix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(1));
    for (name, pattern) in [
        ("stream", AccessPattern::Stream { bytes: 1 << 24 }),
        (
            "working_set",
            AccessPattern::WorkingSetLoop {
                bytes: 1 << 18,
                stride: 64,
            },
        ),
        (
            "zipf",
            AccessPattern::Zipf {
                bytes: 1 << 22,
                exponent: 1.2,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut cache = SampledCache::new(CacheConfig {
                sets: 512,
                ways: 11,
                line_bytes: 64,
            });
            let mut generator = TraceGenerator::new(&[(1.0, pattern.clone())], 64, 7);
            let mask = CbmMask::full(11);
            b.iter(|| {
                let addr = generator.next_addr();
                black_box(cache.access(ClosId(0), mask, addr, false))
            })
        });
    }
    group.finish();
}

fn bench_machine_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_tick_200ms");
    for kind in [MixKind::HighLlc, MixKind::HighBw, MixKind::HighBoth] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:?}", kind)),
            &kind,
            |b, &kind| {
                let mut machine = Machine::new(MachineConfig::xeon_gold_6130());
                for spec in WorkloadMix::paper_default(kind).specs() {
                    machine.add_app(spec, ClosId(0)).expect("mix fits");
                }
                // Warm the cache so steady-state ticks are measured.
                for _ in 0..10 {
                    machine.tick(200_000_000);
                }
                b.iter(|| black_box(machine.tick(200_000_000)))
            },
        );
    }
    group.finish();
}

fn bench_scale_ablation(c: &mut Criterion) {
    // How much wall time one solo measurement costs at different
    // set-sampling scales (accuracy is pinned by tests; this is the cost
    // side of the trade-off).
    let mut group = c.benchmark_group("set_sampling_scale");
    group.sample_size(10);
    for scale in [16u32, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            let mut cfg = MachineConfig::xeon_gold_6130();
            cfg.scale = scale;
            let spec = Benchmark::WaterNsquared.spec();
            b.iter(|| {
                let mut machine = Machine::new(cfg.clone());
                machine.add_app(spec.clone(), ClosId(0)).expect("fits");
                for _ in 0..10 {
                    machine.tick(50_000_000);
                }
                black_box(machine.now_ns())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_access, bench_machine_tick, bench_scale_ablation);
criterion_main!(benches);
