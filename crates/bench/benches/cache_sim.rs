//! Simulator substrate benchmarks: raw cache-access throughput, the cost
//! of one machine window tick under a consolidated mix, and the
//! set-sampling scale ablation (DESIGN.md §6).

use std::hint::black_box;

use copart_bench::bench;
use copart_sim::cache::{CacheConfig, SampledCache};
use copart_sim::trace::{AccessPattern, TraceGenerator};
use copart_sim::{CbmMask, ClosId, Machine, MachineConfig};
use copart_workloads::{Benchmark, MixKind, WorkloadMix};

fn main() {
    bench_cache_access();
    bench_machine_tick();
    bench_scale_ablation();
}

fn bench_cache_access() {
    println!("cache_access (one sampled-cache lookup per iter)");
    for (name, pattern) in [
        ("stream", AccessPattern::Stream { bytes: 1 << 24 }),
        (
            "working_set",
            AccessPattern::WorkingSetLoop {
                bytes: 1 << 18,
                stride: 64,
            },
        ),
        (
            "zipf",
            AccessPattern::Zipf {
                bytes: 1 << 22,
                exponent: 1.2,
            },
        ),
    ] {
        let mut cache = SampledCache::new(CacheConfig {
            sets: 512,
            ways: 11,
            line_bytes: 64,
        });
        let mut generator = TraceGenerator::new(&[(1.0, pattern)], 64, 7);
        let mask = CbmMask::full(11);
        bench(&format!("cache_access/{name}"), || {
            let addr = generator.next_addr();
            black_box(cache.access(ClosId(0), mask, addr, false));
        });
    }
}

fn bench_machine_tick() {
    println!("\nmachine_tick_200ms (one consolidated window tick per iter)");
    for kind in [MixKind::HighLlc, MixKind::HighBw, MixKind::HighBoth] {
        let mut machine = Machine::new(MachineConfig::xeon_gold_6130());
        for spec in WorkloadMix::paper_default(kind).specs() {
            machine.add_app(spec, ClosId(0)).expect("mix fits");
        }
        // Warm the cache so steady-state ticks are measured.
        for _ in 0..10 {
            machine.tick(200_000_000);
        }
        bench(&format!("machine_tick_200ms/{kind:?}"), || {
            black_box(machine.tick(200_000_000));
        });
    }
}

fn bench_scale_ablation() {
    // How much wall time one solo measurement costs at different
    // set-sampling scales (accuracy is pinned by tests; this is the cost
    // side of the trade-off).
    println!("\nset_sampling_scale (10 x 50 ms solo ticks per iter)");
    for scale in [16u32, 64, 256] {
        let mut cfg = MachineConfig::xeon_gold_6130();
        cfg.scale = scale;
        let spec = Benchmark::WaterNsquared.spec();
        bench(&format!("set_sampling_scale/{scale}"), || {
            let mut machine = Machine::new(cfg.clone());
            machine.add_app(spec.clone(), ClosId(0)).expect("fits");
            for _ in 0..10 {
                machine.tick(50_000_000);
            }
            black_box(machine.now_ns());
        });
    }
}
