//! The fault-injecting backend decorator.

use std::time::Duration;

use copart_rng::{splitmix64, XorShift64Star};

use copart_rdt::{CbmMask, ClosId, MbaLevel, RdtBackend, RdtCapabilities, RdtError};
use copart_telemetry::CounterSnapshot;

use crate::plan::{FaultPlan, FaultTrigger};

/// Ground truth of every fault actually injected, per site.
///
/// Tests assert against these counts: e.g. the runtime's
/// `partition_rollbacks` metric must equal the number of applies a write
/// fault broke, and its `fault_counter_dropouts` must equal `dropouts`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Counter reads that returned `Busy`.
    pub dropouts: u64,
    /// `set_cbm` calls that returned `Busy`.
    pub cbm_write_faults: u64,
    /// `set_mba` calls that returned `Busy`.
    pub mba_write_faults: u64,
    /// Per-group operations that returned `UnknownGroup`.
    pub vanishes: u64,
    /// `advance` calls that were swallowed (clock did not move).
    pub clock_stalls: u64,
}

impl InjectionStats {
    /// Total faults injected across every site.
    pub fn total(&self) -> u64 {
        self.dropouts
            + self.cbm_write_faults
            + self.mba_write_faults
            + self.vanishes
            + self.clock_stalls
    }
}

/// One injection site: its trigger, private stream, and call counter.
#[derive(Debug, Clone)]
struct Site {
    trigger: FaultTrigger,
    rng: XorShift64Star,
    calls: u64,
}

impl Site {
    fn new(trigger: FaultTrigger, seed: u64, index: u64) -> Site {
        // Derive the per-site seed with a SplitMix64 round so adjacent
        // site indices yield statistically independent streams even for
        // small user seeds.
        let mut state = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let site_seed = splitmix64(&mut state);
        Site {
            trigger,
            rng: XorShift64Star::seed_from_u64(site_seed),
            calls: 0,
        }
    }

    /// Registers one call to this site and reports whether the fault
    /// fires. Deterministic: depends only on the trigger, the site seed,
    /// and how many calls this site has seen.
    fn fires(&mut self) -> bool {
        self.calls += 1;
        match &self.trigger {
            FaultTrigger::Never => false,
            FaultTrigger::Every { n } => self.calls.is_multiple_of(*n),
            FaultTrigger::Prob { p } => self.rng.gen_bool(*p),
            FaultTrigger::AtCalls(calls) => calls.binary_search(&self.calls).is_ok(),
        }
    }
}

/// Wraps any [`RdtBackend`], injecting the failures a [`FaultPlan`]
/// prescribes.
///
/// With [`FaultPlan::none`] the decorator is fully transparent: no site
/// ever fires, no stream is ever advanced, and every call forwards to
/// the inner backend unchanged.
///
/// The `vanish` site covers the mutating per-group operations
/// (`set_cbm`, `set_mba`, `read_counters`); `clos_config` takes `&self`
/// and is always forwarded untouched.
#[derive(Debug)]
pub struct FaultyBackend<B: RdtBackend> {
    inner: B,
    dropout: Site,
    write_cbm: Site,
    write_mba: Site,
    vanish: Site,
    stall: Site,
    stats: InjectionStats,
    /// When disarmed, every call forwards transparently and no site
    /// advances its stream — used during crash-recovery reconstruction so
    /// bookkeeping calls do not consume fault-site draws.
    armed: bool,
}

/// Frozen state of one injection site: the RNG stream position and the
/// call counter. The trigger itself is part of the [`FaultPlan`] and is
/// not captured here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSnapshot {
    /// Raw RNG state word of the site's private stream.
    pub rng_state: u64,
    /// How many calls the site has registered.
    pub calls: u64,
}

/// Frozen fault-injection state of a [`FaultyBackend`]: the five sites
/// (dropout, write-cbm, write-mba, vanish, stall — in that order) and the
/// cumulative injection statistics. Restoring it onto a backend built
/// from the same [`FaultPlan`] resumes the fault schedule exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStateSnapshot {
    /// Per-site stream positions, in site order.
    pub sites: [SiteSnapshot; 5],
    /// Cumulative injection counts.
    pub stats: InjectionStats,
}

impl<B: RdtBackend> FaultyBackend<B> {
    /// Decorates `inner` with the given plan.
    pub fn new(inner: B, plan: FaultPlan) -> FaultyBackend<B> {
        FaultyBackend {
            inner,
            dropout: Site::new(plan.counter_dropout, plan.seed, 1),
            write_cbm: Site::new(plan.write_cbm, plan.seed, 2),
            write_mba: Site::new(plan.write_mba, plan.seed, 3),
            vanish: Site::new(plan.vanish, plan.seed, 4),
            stall: Site::new(plan.clock_stall, plan.seed, 5),
            stats: InjectionStats::default(),
            armed: true,
        }
    }

    /// Arms or disarms injection. While disarmed the decorator is fully
    /// transparent *and frozen*: no site fires, no stream advances, no
    /// call counter moves — re-arming resumes the schedule exactly where
    /// it stopped. Crash recovery constructs the backend disarmed so
    /// reconstruction traffic does not consume fault-site draws.
    pub fn set_armed(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Whether injection is currently armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Captures the fault-injection state (site streams + statistics).
    pub fn fault_state(&self) -> FaultStateSnapshot {
        let snap = |s: &Site| SiteSnapshot {
            rng_state: s.rng.state(),
            calls: s.calls,
        };
        FaultStateSnapshot {
            sites: [
                snap(&self.dropout),
                snap(&self.write_cbm),
                snap(&self.write_mba),
                snap(&self.vanish),
                snap(&self.stall),
            ],
            stats: self.stats,
        }
    }

    /// Restores fault-injection state captured from a backend built with
    /// the same [`FaultPlan`], resuming the fault schedule exactly.
    pub fn restore_fault_state(&mut self, snap: &FaultStateSnapshot) {
        let sites = [
            &mut self.dropout,
            &mut self.write_cbm,
            &mut self.write_mba,
            &mut self.vanish,
            &mut self.stall,
        ];
        for (site, s) in sites.into_iter().zip(&snap.sites) {
            site.rng = XorShift64Star::from_state(s.rng_state);
            site.calls = s.calls;
        }
        self.stats = snap.stats;
    }

    /// What has actually been injected so far.
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// The wrapped backend (e.g. to read fault-free ground truth).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwraps, discarding the plan and statistics.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Checks the vanish site for a per-group mutating operation.
    fn vanished(&mut self, group: ClosId) -> Result<(), RdtError> {
        if self.armed && self.vanish.fires() {
            self.stats.vanishes += 1;
            return Err(RdtError::UnknownGroup(group));
        }
        Ok(())
    }
}

impl<B: RdtBackend> RdtBackend for FaultyBackend<B> {
    fn capabilities(&self) -> RdtCapabilities {
        self.inner.capabilities()
    }

    fn groups(&self) -> Vec<ClosId> {
        self.inner.groups()
    }

    fn set_cbm(&mut self, group: ClosId, mask: CbmMask) -> Result<(), RdtError> {
        self.vanished(group)?;
        if self.armed && self.write_cbm.fires() {
            self.stats.cbm_write_faults += 1;
            return Err(RdtError::Busy("injected CAT schemata write failure"));
        }
        self.inner.set_cbm(group, mask)
    }

    fn set_mba(&mut self, group: ClosId, level: MbaLevel) -> Result<(), RdtError> {
        self.vanished(group)?;
        if self.armed && self.write_mba.fires() {
            self.stats.mba_write_faults += 1;
            return Err(RdtError::Busy("injected MBA schemata write failure"));
        }
        self.inner.set_mba(group, level)
    }

    fn clos_config(&self, group: ClosId) -> Result<(CbmMask, MbaLevel), RdtError> {
        self.inner.clos_config(group)
    }

    fn read_counters(&mut self, group: ClosId) -> Result<CounterSnapshot, RdtError> {
        self.vanished(group)?;
        if self.armed && self.dropout.fires() {
            self.stats.dropouts += 1;
            return Err(RdtError::Busy("injected counter dropout"));
        }
        self.inner.read_counters(group)
    }

    fn advance(&mut self, period: Duration) -> Result<(), RdtError> {
        if self.armed && self.stall.fires() {
            // The clock stalls: the call "succeeds" but no time passes,
            // so the next counter delta spans zero time.
            self.stats.clock_stalls += 1;
            return Ok(());
        }
        self.inner.advance(period)
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn read_mbm_total_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        self.inner.read_mbm_total_bytes(group)
    }

    fn read_llc_occupancy_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        self.inner.read_llc_occupancy_bytes(group)
    }
}

/// Admission and eviction bypass fault injection: launching or stopping
/// a container is an orchestrator operation, not an RDT one. Everything
/// the runtime then does with the admitted group still goes through the
/// fault plan, so a fleet node under a per-node plan churns its
/// membership cleanly while its control loop suffers.
impl<B: copart_core::NodeBackend> copart_core::NodeBackend for FaultyBackend<B> {
    fn admit(&mut self, spec: copart_sim::AppSpec) -> Result<ClosId, RdtError> {
        self.inner.admit(spec)
    }

    fn evict(&mut self, group: ClosId) -> Result<(), RdtError> {
        self.inner.evict(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_rdt::SimBackend;
    use copart_sim::trace::AccessPattern;
    use copart_sim::{AppSpec, Machine, MachineConfig};

    fn sim_with_one_app() -> (SimBackend, ClosId) {
        let mut backend = SimBackend::new(Machine::new(MachineConfig::tiny_test()));
        let spec = AppSpec {
            name: "probe".into(),
            cores: 1,
            ipc_peak: 1.0,
            apki: 10.0,
            write_fraction: 0.1,
            mlp: 4.0,
            phases: vec![(1.0, AccessPattern::UniformRandom { bytes: 1 << 20 })],
        };
        let g = backend.add_workload(spec).unwrap();
        (backend, g)
    }

    #[test]
    fn none_plan_is_transparent() {
        let (backend, g) = sim_with_one_app();
        let ways = backend.capabilities().llc_ways;
        let mut faulty = FaultyBackend::new(backend, FaultPlan::none());
        let mask = CbmMask::contiguous(0, 2, ways).unwrap();
        faulty.set_cbm(g, mask).unwrap();
        faulty.set_mba(g, MbaLevel::new(50)).unwrap();
        faulty.advance(Duration::from_millis(200)).unwrap();
        faulty.read_counters(g).unwrap();
        assert_eq!(faulty.stats(), InjectionStats::default());
        assert_eq!(faulty.clos_config(g).unwrap(), (mask, MbaLevel::new(50)));
        assert!(faulty.now_ns() > 0);
    }

    #[test]
    fn every_nth_counter_read_drops_out() {
        let (backend, g) = sim_with_one_app();
        let mut faulty = FaultyBackend::new(
            backend,
            FaultPlan {
                counter_dropout: FaultTrigger::Every { n: 3 },
                ..FaultPlan::none()
            },
        );
        let outcomes: Vec<bool> = (0..9).map(|_| faulty.read_counters(g).is_ok()).collect();
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(faulty.stats().dropouts, 3);
        // Dropouts are transient, not structural.
        let err = {
            faulty.read_counters(g).unwrap();
            faulty.read_counters(g).unwrap();
            faulty.read_counters(g).unwrap_err()
        };
        assert!(err.is_transient());
    }

    #[test]
    fn explicit_schedule_fires_exactly_there() {
        let (backend, g) = sim_with_one_app();
        let mut faulty = FaultyBackend::new(
            backend,
            FaultPlan {
                counter_dropout: FaultTrigger::AtCalls(vec![2, 5]),
                ..FaultPlan::none()
            },
        );
        let outcomes: Vec<bool> = (0..6).map(|_| faulty.read_counters(g).is_ok()).collect();
        assert_eq!(outcomes, vec![true, false, true, true, false, true]);
    }

    #[test]
    fn probabilistic_sites_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let (backend, g) = sim_with_one_app();
            let mut faulty = FaultyBackend::new(
                backend,
                FaultPlan {
                    seed,
                    write_cbm: FaultTrigger::Prob { p: 0.3 },
                    ..FaultPlan::none()
                },
            );
            let ways = faulty.capabilities().llc_ways;
            let mask = CbmMask::contiguous(0, 2, ways).unwrap();
            (0..64).map(|_| faulty.set_cbm(g, mask).is_ok()).collect()
        };
        assert_eq!(run(11), run(11), "same seed, same fault sequence");
        assert_ne!(run(11), run(12), "different seeds diverge");
        let faults = run(11).iter().filter(|ok| !**ok).count();
        assert!((5..40).contains(&faults), "p=0.3 of 64: {faults}");
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        // Arming an extra site must not change another site's sequence —
        // that is what makes plans composable and runs reproducible.
        let run = |with_mba: bool| -> Vec<bool> {
            let (backend, g) = sim_with_one_app();
            let mut plan = FaultPlan {
                seed: 99,
                write_cbm: FaultTrigger::Prob { p: 0.25 },
                ..FaultPlan::none()
            };
            if with_mba {
                plan.write_mba = FaultTrigger::Prob { p: 0.5 };
            }
            let mut faulty = FaultyBackend::new(backend, plan);
            let ways = faulty.capabilities().llc_ways;
            let mask = CbmMask::contiguous(0, 2, ways).unwrap();
            (0..64)
                .map(|_| {
                    let cbm_ok = faulty.set_cbm(g, mask).is_ok();
                    let _ = faulty.set_mba(g, MbaLevel::new(50));
                    cbm_ok
                })
                .collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn clock_stall_freezes_time() {
        let (backend, _g) = sim_with_one_app();
        let mut faulty = FaultyBackend::new(
            backend,
            FaultPlan {
                clock_stall: FaultTrigger::Every { n: 2 },
                ..FaultPlan::none()
            },
        );
        let period = Duration::from_millis(100);
        faulty.advance(period).unwrap(); // call 1: advances
        let t1 = faulty.now_ns();
        faulty.advance(period).unwrap(); // call 2: stalled
        assert_eq!(faulty.now_ns(), t1, "stalled advance must not move time");
        faulty.advance(period).unwrap(); // call 3: advances
        assert!(faulty.now_ns() > t1);
        assert_eq!(faulty.stats().clock_stalls, 1);
    }

    #[test]
    fn vanish_reports_unknown_group() {
        let (backend, g) = sim_with_one_app();
        let mut faulty = FaultyBackend::new(
            backend,
            FaultPlan {
                vanish: FaultTrigger::Every { n: 2 },
                ..FaultPlan::none()
            },
        );
        assert!(faulty.read_counters(g).is_ok()); // vanish call 1
        let err = faulty.read_counters(g).unwrap_err(); // vanish call 2
        assert!(matches!(err, RdtError::UnknownGroup(v) if v == g));
        assert!(!err.is_transient());
        assert_eq!(faulty.stats().vanishes, 1);
    }

    #[test]
    fn disarmed_backend_is_transparent_and_frozen() {
        let (backend, g) = sim_with_one_app();
        let mut faulty = FaultyBackend::new(
            backend,
            FaultPlan {
                counter_dropout: FaultTrigger::Every { n: 2 },
                ..FaultPlan::none()
            },
        );
        faulty.read_counters(g).unwrap(); // call 1: survives
        let frozen = faulty.fault_state();
        faulty.set_armed(false);
        assert!(!faulty.is_armed());
        // Would be call 2 (a dropout) if armed; disarmed, it passes and
        // the site does not even count the call.
        for _ in 0..5 {
            faulty.read_counters(g).unwrap();
        }
        assert_eq!(faulty.fault_state(), frozen, "streams must not advance");
        faulty.set_armed(true);
        // Re-armed: the very next read is the deferred call 2 dropout.
        assert!(faulty.read_counters(g).is_err());
    }

    #[test]
    fn fault_state_restore_resumes_the_schedule() {
        let run_tail = |faulty: &mut FaultyBackend<SimBackend>, g: ClosId| -> Vec<bool> {
            (0..40).map(|_| faulty.read_counters(g).is_ok()).collect()
        };
        let plan = FaultPlan {
            seed: 77,
            counter_dropout: FaultTrigger::Prob { p: 0.3 },
            ..FaultPlan::none()
        };
        let (backend, g) = sim_with_one_app();
        let mut original = FaultyBackend::new(backend, plan.clone());
        for _ in 0..17 {
            let _ = original.read_counters(g);
        }
        let snap = original.fault_state();

        let (backend2, g2) = sim_with_one_app();
        let mut resumed = FaultyBackend::new(backend2, plan);
        resumed.restore_fault_state(&snap);
        assert_eq!(resumed.stats(), original.stats());
        assert_eq!(run_tail(&mut original, g), run_tail(&mut resumed, g2));
        assert_eq!(original.fault_state(), resumed.fault_state());
    }

    #[test]
    fn partial_apply_cbm_lands_mba_fails() {
        let (backend, g) = sim_with_one_app();
        let ways = backend.capabilities().llc_ways;
        let mut faulty = FaultyBackend::new(
            backend,
            FaultPlan {
                write_mba: FaultTrigger::Every { n: 1 },
                ..FaultPlan::none()
            },
        );
        let before = faulty.clos_config(g).unwrap();
        let mask = CbmMask::contiguous(0, 2, ways).unwrap();
        faulty.set_cbm(g, mask).unwrap();
        assert!(faulty.set_mba(g, MbaLevel::new(50)).is_err());
        let after = faulty.clos_config(g).unwrap();
        assert_eq!(after.0, mask, "the CBM landed");
        assert_eq!(after.1, before.1, "the MBA level did not");
        assert_eq!(faulty.stats().total(), 1);
    }
}
