//! The fault plan: what to inject, where, and how often.

use std::fmt;

/// When a fault site fires.
///
/// Call numbers are 1-based: the first call to a site is call 1. This
/// matches the "every n-th call fails" convention of the original
/// hand-rolled test decorators (`calls += 1; calls % n == 0`).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTrigger {
    /// Never fires.
    Never,
    /// Fires on every `n`-th call to the site (n ≥ 1).
    Every {
        /// The period, in calls.
        n: u64,
    },
    /// Fires independently on each call with probability `p`, drawn from
    /// the site's private deterministic stream.
    Prob {
        /// The per-call probability, in `[0, 1]`.
        p: f64,
    },
    /// Fires on exactly the listed (1-based, ascending) call numbers —
    /// the fixed schedules golden-trace tests pin down.
    AtCalls(Vec<u64>),
}

impl FaultTrigger {
    /// Whether this trigger can ever fire.
    pub fn is_armed(&self) -> bool {
        match self {
            FaultTrigger::Never => false,
            FaultTrigger::Every { .. } => true,
            FaultTrigger::Prob { p } => *p > 0.0,
            FaultTrigger::AtCalls(calls) => !calls.is_empty(),
        }
    }
}

/// An error parsing a `--faults` specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError(String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlanError {
    /// Builds an error with the given message (shared with the
    /// [`crate::scope`] parser so every spec error renders uniformly).
    pub(crate) fn new(msg: impl Into<String>) -> FaultPlanError {
        FaultPlanError(msg.into())
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, FaultPlanError> {
    Err(FaultPlanError(msg.into()))
}

/// A complete, deterministic fault-injection plan.
///
/// One field per injection site; [`FaultTrigger::Never`] everywhere
/// means the decorated backend behaves byte-identically to the bare one.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed; each site derives its private stream from
    /// `(seed, site index)`.
    pub seed: u64,
    /// `read_counters` returns [`copart_rdt::RdtError::Busy`] — a PMC
    /// multiplexing dropout. The runtime degrades (holds the app's FSM
    /// state, reuses EWMA'd rates) rather than retrying.
    pub counter_dropout: FaultTrigger,
    /// `set_cbm` returns `Busy` — a transient CAT schemata write failure.
    pub write_cbm: FaultTrigger,
    /// `set_mba` returns `Busy` — a transient MBA schemata write failure.
    /// Arming only this site produces the classic *partial apply*: the
    /// CBM lands, the MBA write fails.
    pub write_mba: FaultTrigger,
    /// Any per-group operation returns
    /// [`copart_rdt::RdtError::UnknownGroup`] — the group momentarily
    /// disappeared (CLOS churn). Not transient: retries do not help.
    pub vanish: FaultTrigger,
    /// `advance` succeeds but the platform clock does not move — a clock
    /// stall. The next counter delta spans zero time and yields no rates.
    pub clock_stall: FaultTrigger,
}

impl FaultPlan {
    /// The empty plan: nothing is ever injected.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            counter_dropout: FaultTrigger::Never,
            write_cbm: FaultTrigger::Never,
            write_mba: FaultTrigger::Never,
            vanish: FaultTrigger::Never,
            clock_stall: FaultTrigger::Never,
        }
    }

    /// Whether no site can ever fire.
    pub fn is_none(&self) -> bool {
        !self.counter_dropout.is_armed()
            && !self.write_cbm.is_armed()
            && !self.write_mba.is_armed()
            && !self.vanish.is_armed()
            && !self.clock_stall.is_armed()
    }

    /// Parses a `--faults` specification: comma-separated `key=value`
    /// pairs.
    ///
    /// Keys: `seed` (u64), `dropout` (counter reads), `cbm`, `mba`,
    /// `write` (both `cbm` and `mba`), `vanish`, `stall`.
    ///
    /// Values for the fault keys: a probability like `0.1`, a period
    /// like `1/29` (every 29th call), or `off`.
    ///
    /// # Errors
    ///
    /// Fails on unknown keys, malformed values, probabilities outside
    /// `[0, 1]`, or a zero period.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once('=') else {
                return err(format!("expected key=value, found {part:?}"));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                let Ok(seed) = value.parse::<u64>() else {
                    return err(format!("seed must be a u64, found {value:?}"));
                };
                plan.seed = seed;
                continue;
            }
            let trigger = parse_trigger(key, value)?;
            match key {
                "dropout" => plan.counter_dropout = trigger,
                "cbm" => plan.write_cbm = trigger,
                "mba" => plan.write_mba = trigger,
                "write" => {
                    plan.write_cbm = trigger.clone();
                    plan.write_mba = trigger;
                }
                "vanish" => plan.vanish = trigger,
                "stall" => plan.clock_stall = trigger,
                other => return err(format!("unknown fault site {other:?}")),
            }
        }
        Ok(plan)
    }
}

fn parse_trigger(key: &str, value: &str) -> Result<FaultTrigger, FaultPlanError> {
    if value == "off" {
        return Ok(FaultTrigger::Never);
    }
    if let Some(period) = value.strip_prefix("1/") {
        let Ok(n) = period.parse::<u64>() else {
            return err(format!("{key}: period must be 1/<u64>, found {value:?}"));
        };
        if n == 0 {
            return err(format!("{key}: period must be at least 1"));
        }
        return Ok(FaultTrigger::Every { n });
    }
    let Ok(p) = value.parse::<f64>() else {
        return err(format!(
            "{key}: expected a probability, 1/<n>, or off — found {value:?}"
        ));
    };
    if !(0.0..=1.0).contains(&p) {
        return err(format!("{key}: probability {p} outside [0, 1]"));
    }
    if p == 0.0 {
        return Ok(FaultTrigger::Never);
    }
    Ok(FaultTrigger::Prob { p })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultTrigger::Never.is_armed());
        assert!(!FaultTrigger::Prob { p: 0.0 }.is_armed());
        assert!(FaultTrigger::Every { n: 3 }.is_armed());
        assert!(FaultTrigger::AtCalls(vec![1]).is_armed());
        assert!(!FaultTrigger::AtCalls(vec![]).is_armed());
    }

    #[test]
    fn parses_the_standard_spec() {
        let plan = FaultPlan::parse("seed=42,write=0.1,dropout=0.05,vanish=1/97,stall=0.01")
            .expect("spec parses");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.write_cbm, FaultTrigger::Prob { p: 0.1 });
        assert_eq!(plan.write_mba, FaultTrigger::Prob { p: 0.1 });
        assert_eq!(plan.counter_dropout, FaultTrigger::Prob { p: 0.05 });
        assert_eq!(plan.vanish, FaultTrigger::Every { n: 97 });
        assert_eq!(plan.clock_stall, FaultTrigger::Prob { p: 0.01 });
        assert!(!plan.is_none());
    }

    #[test]
    fn individual_write_sites_and_off() {
        let plan = FaultPlan::parse("cbm=0.2,mba=off").unwrap();
        assert_eq!(plan.write_cbm, FaultTrigger::Prob { p: 0.2 });
        assert_eq!(plan.write_mba, FaultTrigger::Never);
        // Zero probability collapses to Never.
        let plan = FaultPlan::parse("dropout=0.0").unwrap();
        assert!(plan.is_none());
        // Empty segments are tolerated (trailing commas).
        assert!(FaultPlan::parse("seed=1,").unwrap().is_none());
        assert!(FaultPlan::parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "frobnicate=0.1",
            "dropout",
            "dropout=maybe",
            "dropout=1.5",
            "dropout=-0.1",
            "dropout=1/0",
            "seed=banana",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
