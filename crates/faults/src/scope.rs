//! Per-node scoping of fault plans for multi-node (fleet) runs.
//!
//! A fleet spreads one logical `--faults` specification across many
//! simulated machines. [`ScopedFaultPlan`] pairs a [`FaultPlan`] with a
//! [`NodeScope`] selecting *which* nodes run injected; every selected
//! node gets the same trigger configuration but a private seed derived
//! from `(plan.seed, node id)`, so two faulted nodes draw independent
//! fault streams and a node's stream never depends on how many other
//! nodes exist. Out-of-scope nodes get [`FaultPlan::none`], which is
//! proven byte-transparent by the decorator tests — a fleet of mixed
//! faulted/clean nodes is still uniformly typed.

use std::fmt;

use copart_rng::derive_seed;

use crate::plan::{FaultPlan, FaultPlanError};

/// Which fleet nodes a fault plan applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeScope {
    /// Every node runs injected.
    All,
    /// Exactly the listed node ids run injected.
    Nodes(Vec<u64>),
    /// Every `k`-th node (ids divisible by `k`) runs injected.
    Every(u64),
}

impl NodeScope {
    /// Whether `node` is inside the scope.
    pub fn contains(&self, node: u64) -> bool {
        match self {
            NodeScope::All => true,
            NodeScope::Nodes(ids) => ids.contains(&node),
            NodeScope::Every(k) => node.is_multiple_of(*k),
        }
    }
}

impl fmt::Display for NodeScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeScope::All => write!(f, "all"),
            NodeScope::Every(k) => write!(f, "every/{k}"),
            NodeScope::Nodes(ids) => {
                let parts: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
                write!(f, "{}", parts.join("+"))
            }
        }
    }
}

/// A fault plan plus the set of nodes it applies to.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopedFaultPlan {
    /// The trigger configuration shared by every in-scope node.
    pub plan: FaultPlan,
    /// Which nodes run injected.
    pub scope: NodeScope,
}

impl ScopedFaultPlan {
    /// Parses an extended `--faults` specification: every key
    /// [`FaultPlan::parse`] accepts, plus an optional `nodes=` key
    /// selecting the scope — `nodes=all` (the default), `nodes=every/8`
    /// (ids divisible by 8), or an explicit `+`-separated id list like
    /// `nodes=0+3+17`.
    ///
    /// # Errors
    ///
    /// Fails on anything [`FaultPlan::parse`] rejects, or a malformed
    /// `nodes=` value (empty list, zero stride, non-numeric id).
    pub fn parse(spec: &str) -> Result<ScopedFaultPlan, FaultPlanError> {
        let mut scope = NodeScope::All;
        let mut rest: Vec<&str> = Vec::new();
        for part in spec.split(',') {
            let trimmed = part.trim();
            if let Some(value) = trimmed.strip_prefix("nodes=") {
                scope = parse_scope(value.trim())?;
            } else {
                rest.push(part);
            }
        }
        let plan = FaultPlan::parse(&rest.join(","))?;
        Ok(ScopedFaultPlan { plan, scope })
    }

    /// The plan `node` should run under: the shared triggers with a
    /// per-node derived seed when in scope, [`FaultPlan::none`] (which
    /// is byte-transparent) otherwise.
    pub fn plan_for_node(&self, node: u64) -> FaultPlan {
        if !self.scope.contains(node) {
            return FaultPlan::none();
        }
        FaultPlan {
            seed: derive_seed(self.plan.seed, node),
            ..self.plan.clone()
        }
    }
}

fn scope_err<T>(msg: impl Into<String>) -> Result<T, FaultPlanError> {
    Err(FaultPlanError::new(msg))
}

fn parse_scope(value: &str) -> Result<NodeScope, FaultPlanError> {
    if value == "all" {
        return Ok(NodeScope::All);
    }
    if let Some(stride) = value.strip_prefix("every/") {
        let Ok(k) = stride.parse::<u64>() else {
            return scope_err(format!("nodes stride must be every/<u64>, found {value:?}"));
        };
        if k == 0 {
            return scope_err("nodes stride must be at least 1");
        }
        return Ok(NodeScope::Every(k));
    }
    let mut ids = Vec::new();
    for id in value.split('+') {
        let id = id.trim();
        let Ok(id) = id.parse::<u64>() else {
            return scope_err(format!(
                "nodes must be all, every/<k>, or a +-separated id list; found {value:?}"
            ));
        };
        ids.push(id);
    }
    if ids.is_empty() {
        return scope_err("nodes id list is empty");
    }
    Ok(NodeScope::Nodes(ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultTrigger;

    #[test]
    fn parses_scope_variants() {
        let p = ScopedFaultPlan::parse("seed=9,dropout=0.1").unwrap();
        assert_eq!(p.scope, NodeScope::All);
        assert_eq!(p.plan.counter_dropout, FaultTrigger::Prob { p: 0.1 });

        let p = ScopedFaultPlan::parse("seed=9,dropout=0.1,nodes=every/8").unwrap();
        assert_eq!(p.scope, NodeScope::Every(8));
        assert!(p.scope.contains(0));
        assert!(p.scope.contains(16));
        assert!(!p.scope.contains(3));

        let p = ScopedFaultPlan::parse("nodes=1+4+9,stall=1/7").unwrap();
        assert_eq!(p.scope, NodeScope::Nodes(vec![1, 4, 9]));
        assert!(p.scope.contains(4));
        assert!(!p.scope.contains(2));
    }

    #[test]
    fn rejects_malformed_scopes() {
        for bad in ["nodes=", "nodes=every/0", "nodes=every/x", "nodes=1+x"] {
            assert!(
                ScopedFaultPlan::parse(bad).is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn out_of_scope_nodes_get_the_transparent_plan() {
        let p = ScopedFaultPlan::parse("seed=5,write=0.2,nodes=0+2").unwrap();
        assert!(p.plan_for_node(1).is_none());
        let n0 = p.plan_for_node(0);
        let n2 = p.plan_for_node(2);
        assert!(!n0.is_none());
        assert_eq!(n0.write_cbm, FaultTrigger::Prob { p: 0.2 });
        // Same triggers, independent per-node seeds.
        assert_ne!(n0.seed, n2.seed);
        assert_eq!(n0.seed, p.plan_for_node(0).seed, "derivation is stable");
    }

    #[test]
    fn scope_renders_back_to_spec_syntax() {
        assert_eq!(NodeScope::All.to_string(), "all");
        assert_eq!(NodeScope::Every(4).to_string(), "every/4");
        assert_eq!(NodeScope::Nodes(vec![1, 2]).to_string(), "1+2");
    }
}
