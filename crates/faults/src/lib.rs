//! Deterministic fault injection for [`copart_rdt::RdtBackend`]s.
//!
//! Real commodity servers do not fail cleanly: PMC multiplexing drops a
//! counter read now and then, a schemata write races another tenant and
//! comes back `EBUSY`, a CLOS group vanishes mid-operation when a
//! container exits, and the clock a control loop sleeps on occasionally
//! stalls. LFOC+ and CBP both observe that OS-level partitioning
//! policies must tolerate exactly this kind of monitoring noise; the
//! consolidation runtime in `copart-core` is hardened against it, and
//! this crate provides the machinery that *proves* it:
//!
//! * [`FaultPlan`] — which faults to inject, per backend operation
//!   ("site"), each driven by a [`FaultTrigger`] (never / every n-th
//!   call / probability / explicit call schedule);
//! * [`FaultyBackend`] — a decorator over any [`copart_rdt::RdtBackend`] that
//!   consults the plan on every call and injects the configured failure;
//! * [`InjectionStats`] — ground truth of what was actually injected,
//!   so tests can assert `rollbacks == failed applies` style invariants.
//!
//! # Determinism
//!
//! Every site draws from its **own** `copart-rng` stream, seeded from
//! `(plan.seed, site index)` via SplitMix64 — never from a generator
//! shared across sites or across backends. A backend's fault sequence
//! therefore depends only on the plan and on that backend's own call
//! sequence, so sweeps that run one consolidation per task are
//! byte-reproducible at any `--jobs` setting (the same contract the
//! `copart-parallel` engine enforces for randomized tasks).
//!
//! ```
//! use copart_faults::{FaultPlan, FaultTrigger};
//!
//! // 10 % transient schemata write failures + 5 % counter dropouts.
//! let plan = FaultPlan::parse("seed=7,write=0.1,dropout=0.05").unwrap();
//! assert_eq!(plan.seed, 7);
//! assert_eq!(plan.write_cbm, FaultTrigger::Prob { p: 0.1 });
//! assert_eq!(plan.counter_dropout, FaultTrigger::Prob { p: 0.05 });
//! // The default plan injects nothing at all.
//! assert!(FaultPlan::none().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod plan;
mod scope;

pub use backend::{FaultStateSnapshot, FaultyBackend, InjectionStats, SiteSnapshot};
pub use plan::{FaultPlan, FaultPlanError, FaultTrigger};
pub use scope::{NodeScope, ScopedFaultPlan};
