//! Synthetic address-trace generation.
//!
//! Application memory behaviour is modelled as a weighted mixture of
//! access *phases*, each a simple, well-understood pattern. The mixture
//! weights and footprints are per-benchmark calibration data (see the
//! `copart-workloads` crate); together they reproduce the four sensitivity
//! classes the paper characterizes in §3.3/§4:
//!
//! * [`AccessPattern::WorkingSetLoop`] — cyclic sweeps over a bounded
//!   region; hits when the region fits the allocated ways, LRU-thrashes
//!   when it does not (LLC-sensitive behaviour),
//! * [`AccessPattern::Stream`] — sequential, effectively-no-reuse traffic
//!   (memory-bandwidth-sensitive behaviour),
//! * [`AccessPattern::UniformRandom`] — uniform accesses over a region,
//! * [`AccessPattern::Zipf`] — skewed reuse, yielding smooth miss-ratio
//!   curves.
//!
//! Patterns are emitted in bursts of [`BURST_LEN`] accesses so streaming
//! runs stay sequential under mixing, as they do in real traces.

use copart_rng::XorShift64Star;

/// Number of consecutive accesses drawn from one phase before the active
/// phase is re-sampled.
pub const BURST_LEN: u32 = 64;

/// A single access phase.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Cyclic sweep over `bytes` with the given stride.
    WorkingSetLoop {
        /// Footprint in bytes.
        bytes: u64,
        /// Address increment per access, in bytes.
        stride: u64,
    },
    /// Sequential streaming over a `bytes`-sized region (wraps around; make
    /// the region much larger than the LLC for true no-reuse behaviour).
    Stream {
        /// Footprint in bytes.
        bytes: u64,
    },
    /// Uniformly random line-aligned accesses within `bytes`.
    UniformRandom {
        /// Footprint in bytes.
        bytes: u64,
    },
    /// Zipf-distributed accesses over `bytes` with the given exponent
    /// (larger exponent ⇒ more skew, more locality).
    Zipf {
        /// Footprint in bytes.
        bytes: u64,
        /// Skew exponent, must be positive and not exactly 1.
        exponent: f64,
    },
    /// A dependent pointer chase: each access determines the next through
    /// a fixed pseudo-random permutation of the region's lines (one long
    /// cycle), modelling linked-data-structure traversals. Pair this
    /// pattern with a low [`crate::AppSpec`] `mlp` — the chain serializes
    /// misses.
    PointerChase {
        /// Footprint in bytes.
        bytes: u64,
    },
}

impl AccessPattern {
    /// The pattern's footprint in bytes.
    pub fn bytes(&self) -> u64 {
        match *self {
            AccessPattern::WorkingSetLoop { bytes, .. }
            | AccessPattern::Stream { bytes }
            | AccessPattern::UniformRandom { bytes }
            | AccessPattern::Zipf { bytes, .. }
            | AccessPattern::PointerChase { bytes } => bytes,
        }
    }

    /// Returns a copy with the footprint divided by `scale` (floored at
    /// four lines), used for scaled cache simulation.
    pub fn scaled(&self, scale: u32, line_bytes: u64) -> AccessPattern {
        let floor = 4 * line_bytes;
        let scale_bytes = |b: u64| (b / u64::from(scale)).max(floor);
        match *self {
            AccessPattern::WorkingSetLoop { bytes, stride } => AccessPattern::WorkingSetLoop {
                bytes: scale_bytes(bytes),
                stride,
            },
            AccessPattern::Stream { bytes } => AccessPattern::Stream {
                bytes: scale_bytes(bytes),
            },
            AccessPattern::UniformRandom { bytes } => AccessPattern::UniformRandom {
                bytes: scale_bytes(bytes),
            },
            AccessPattern::Zipf { bytes, exponent } => AccessPattern::Zipf {
                bytes: scale_bytes(bytes),
                exponent,
            },
            AccessPattern::PointerChase { bytes } => AccessPattern::PointerChase {
                bytes: scale_bytes(bytes),
            },
        }
    }
}

/// Per-phase generator state.
#[derive(Debug, Clone)]
struct PhaseState {
    pattern: AccessPattern,
    weight: f64,
    cursor: u64,
}

impl PhaseState {
    fn next_addr(&mut self, rng: &mut XorShift64Star, line_bytes: u64) -> u64 {
        match self.pattern {
            AccessPattern::WorkingSetLoop { bytes, stride } => {
                let addr = self.cursor;
                self.cursor = (self.cursor + stride) % bytes;
                addr
            }
            AccessPattern::Stream { bytes } => {
                let addr = self.cursor;
                self.cursor = (self.cursor + line_bytes) % bytes;
                addr
            }
            AccessPattern::UniformRandom { bytes } => {
                let lines = (bytes / line_bytes).max(1);
                rng.gen_range(0..lines) * line_bytes
            }
            AccessPattern::Zipf { bytes, exponent } => {
                let lines = (bytes / line_bytes).max(1);
                let rank = zipf_rank(rng, lines, exponent);
                rank * line_bytes
            }
            AccessPattern::PointerChase { bytes } => {
                let lines = (bytes / line_bytes).max(1);
                // Weyl-style permutation walk: stepping by an odd constant
                // modulo `lines` visits every line once per cycle when
                // `lines` and the step are coprime; the large odd step
                // destroys spatial locality like a real pointer chase.
                let step = (lines / 2) | 1;
                let idx = self.cursor % lines;
                self.cursor = (idx + step) % lines;
                idx * line_bytes
            }
        }
    }
}

/// Samples a Zipf-like rank in `[0, n)` via the continuous inverse-CDF
/// approximation of the generalized harmonic CDF. Approximate but cheap
/// and monotone in skew, which is all the workload models need.
fn zipf_rank(rng: &mut XorShift64Star, n: u64, s: f64) -> u64 {
    debug_assert!(
        s > 0.0 && (s - 1.0).abs() > 1e-9,
        "exponent {s} unsupported"
    );
    let u: f64 = rng.gen_range(0.0..1.0);
    let nf = n as f64;
    let one_minus_s = 1.0 - s;
    // H(n) ≈ (n^(1-s) - 1) / (1-s); invert H(k)/H(n) = u for k.
    let h_n = (nf.powf(one_minus_s) - 1.0) / one_minus_s;
    let k = (one_minus_s * u * h_n + 1.0).powf(1.0 / one_minus_s);
    (k as u64).min(n - 1)
}

/// Frozen mid-stream position of a [`TraceGenerator`]: the per-phase
/// cursors, the RNG stream position, and the burst bookkeeping. Applied
/// to a generator rebuilt over the *same* phase mixture (any seed), it
/// resumes the address stream exactly where the original left off.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenSnapshot {
    /// Phase cursors, in phase order.
    pub cursors: Vec<u64>,
    /// The generator RNG's raw state word.
    pub rng_state: u64,
    /// Index of the phase currently emitting its burst.
    pub active: usize,
    /// Accesses left in the current burst.
    pub burst_left: u32,
}

/// A deterministic, seedable trace generator over a phase mixture.
///
/// All addresses are offsets within the application's private address
/// space; the machine adds a per-application base so tags never collide
/// across applications.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    phases: Vec<PhaseState>,
    line_bytes: u64,
    rng: XorShift64Star,
    active: usize,
    burst_left: u32,
    total_weight: f64,
}

impl TraceGenerator {
    /// Builds a generator over `(weight, pattern)` phases.
    ///
    /// # Panics
    ///
    /// Panics if the mixture is empty or all weights are non-positive;
    /// phase tables are static calibration data, so this is a programming
    /// error.
    pub fn new(phases: &[(f64, AccessPattern)], line_bytes: u64, seed: u64) -> TraceGenerator {
        assert!(!phases.is_empty(), "phase mixture must be non-empty");
        let states: Vec<PhaseState> = phases
            .iter()
            .map(|(w, p)| PhaseState {
                pattern: p.clone(),
                weight: *w,
                cursor: 0,
            })
            .collect();
        let total_weight: f64 = states.iter().map(|p| p.weight).sum();
        assert!(
            total_weight > 0.0,
            "phase weights must sum to a positive value"
        );
        TraceGenerator {
            phases: states,
            line_bytes,
            rng: XorShift64Star::seed_from_u64(seed),
            active: 0,
            burst_left: 0,
            total_weight,
        }
    }

    /// Produces the next line-aligned address offset.
    pub fn next_addr(&mut self) -> u64 {
        if self.burst_left == 0 {
            self.active = self.pick_phase();
            self.burst_left = BURST_LEN;
        }
        self.burst_left -= 1;
        let line = self.line_bytes;
        let addr = self.phases[self.active].next_addr(&mut self.rng, line);
        addr & !(line - 1)
    }

    fn pick_phase(&mut self) -> usize {
        let mut t = self.rng.gen_range(0.0..self.total_weight);
        for (i, p) in self.phases.iter().enumerate() {
            if t < p.weight {
                return i;
            }
            t -= p.weight;
        }
        self.phases.len() - 1
    }

    /// Draws a Bernoulli sample with probability `p` from the generator's
    /// own RNG stream (used for write decisions, keeping runs
    /// reproducible from the single seed).
    pub fn flip(&mut self, p: f64) -> bool {
        self.rng.gen_range(0.0..1.0) < p
    }

    /// Captures the generator's mid-stream position.
    pub fn snapshot(&self) -> TraceGenSnapshot {
        TraceGenSnapshot {
            cursors: self.phases.iter().map(|p| p.cursor).collect(),
            rng_state: self.rng.state(),
            active: self.active,
            burst_left: self.burst_left,
        }
    }

    /// Resumes from a captured position. The generator must have been
    /// rebuilt over the same phase mixture the snapshot was taken from.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's cursor count does not match the phase
    /// count or its active index is out of range — that means the
    /// snapshot belongs to a different mixture.
    pub fn restore(&mut self, snap: &TraceGenSnapshot) {
        assert_eq!(
            snap.cursors.len(),
            self.phases.len(),
            "snapshot phase count mismatch"
        );
        assert!(snap.active < self.phases.len(), "active phase out of range");
        for (phase, cursor) in self.phases.iter_mut().zip(&snap.cursors) {
            phase.cursor = *cursor;
        }
        self.rng = XorShift64Star::from_state(snap.rng_state);
        self.active = snap.active;
        self.burst_left = snap.burst_left;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn gen_one(pattern: AccessPattern, n: usize) -> Vec<u64> {
        let mut g = TraceGenerator::new(&[(1.0, pattern)], 64, 42);
        (0..n).map(|_| g.next_addr()).collect()
    }

    #[test]
    fn working_set_loop_cycles_exactly() {
        let addrs = gen_one(
            AccessPattern::WorkingSetLoop {
                bytes: 4 * 64,
                stride: 64,
            },
            8,
        );
        assert_eq!(addrs, vec![0, 64, 128, 192, 0, 64, 128, 192]);
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let addrs = gen_one(AccessPattern::Stream { bytes: 3 * 64 }, 4);
        assert_eq!(addrs, vec![0, 64, 128, 0]);
    }

    #[test]
    fn uniform_random_stays_in_bounds_and_is_aligned() {
        let bytes = 1024 * 64;
        let addrs = gen_one(AccessPattern::UniformRandom { bytes }, 10_000);
        assert!(addrs.iter().all(|&a| a < bytes && a % 64 == 0));
        // Should touch a large fraction of the 1024 lines.
        let distinct: HashSet<_> = addrs.iter().collect();
        assert!(
            distinct.len() > 900,
            "only {} distinct lines",
            distinct.len()
        );
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let bytes = 4096 * 64;
        let addrs = gen_one(
            AccessPattern::Zipf {
                bytes,
                exponent: 1.2,
            },
            50_000,
        );
        assert!(addrs.iter().all(|&a| a < bytes && a % 64 == 0));
        let hot = addrs.iter().filter(|&&a| a < 64 * 64).count();
        // Top 64 of 4096 lines should draw far more than the uniform share
        // (64/4096 ≈ 1.6 %).
        assert!(
            hot as f64 / 50_000.0 > 0.3,
            "hot fraction {}",
            hot as f64 / 50_000.0
        );
    }

    #[test]
    fn pointer_chase_visits_every_line_without_locality() {
        let lines = 257u64; // Prime: any odd step is coprime.
        let addrs = gen_one(
            AccessPattern::PointerChase { bytes: lines * 64 },
            lines as usize,
        );
        let distinct: HashSet<_> = addrs.iter().collect();
        assert_eq!(
            distinct.len(),
            lines as usize,
            "one full cycle covers every line exactly once"
        );
        // No spatial locality: consecutive addresses are far apart.
        let close = addrs
            .windows(2)
            .filter(|w| w[0].abs_diff(w[1]) <= 64)
            .count();
        assert!(close <= 2, "{close} near-sequential steps");
    }

    #[test]
    fn mixture_respects_weights_roughly() {
        // 90 % tiny loop (addresses < 256), 10 % distant stream.
        let mut g = TraceGenerator::new(
            &[
                (
                    0.9,
                    AccessPattern::WorkingSetLoop {
                        bytes: 4 * 64,
                        stride: 64,
                    },
                ),
                (0.1, AccessPattern::UniformRandom { bytes: 1 << 30 }),
            ],
            64,
            9,
        );
        let n = 100_000;
        let near = (0..n).filter(|_| g.next_addr() < 256).count();
        let frac = near as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.05, "loop fraction {frac}");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let p = [(1.0, AccessPattern::UniformRandom { bytes: 1 << 20 })];
        let mut a = TraceGenerator::new(&p, 64, 5);
        let mut b = TraceGenerator::new(&p, 64, 5);
        let mut c = TraceGenerator::new(&p, 64, 6);
        let va: Vec<u64> = (0..100).map(|_| a.next_addr()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_addr()).collect();
        let vc: Vec<u64> = (0..100).map(|_| c.next_addr()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn scaling_shrinks_footprints_with_floor() {
        let p = AccessPattern::Stream { bytes: 1 << 20 };
        assert_eq!(p.scaled(64, 64).bytes(), (1 << 20) / 64);
        let tiny = AccessPattern::Stream { bytes: 512 };
        assert_eq!(tiny.scaled(64, 64).bytes(), 4 * 64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mixture_panics() {
        let _ = TraceGenerator::new(&[], 64, 0);
    }

    #[test]
    fn snapshot_restore_resumes_mid_burst() {
        let phases = [
            (
                0.7,
                AccessPattern::WorkingSetLoop {
                    bytes: 16 * 64,
                    stride: 64,
                },
            ),
            (
                0.3,
                AccessPattern::Zipf {
                    bytes: 1 << 16,
                    exponent: 1.1,
                },
            ),
        ];
        let mut original = TraceGenerator::new(&phases, 64, 77);
        // Advance to an arbitrary point mid-burst.
        for _ in 0..203 {
            original.next_addr();
        }
        original.flip(0.5);
        let snap = original.snapshot();
        // A freshly built generator with a different seed adopts the
        // snapshot completely: the seed only matters at construction.
        let mut resumed = TraceGenerator::new(&phases, 64, 9999);
        resumed.restore(&snap);
        for _ in 0..500 {
            assert_eq!(original.next_addr(), resumed.next_addr());
        }
        assert_eq!(original.flip(0.25), resumed.flip(0.25));
    }

    #[test]
    #[should_panic(expected = "phase count mismatch")]
    fn restore_rejects_foreign_snapshot() {
        let a = TraceGenerator::new(&[(1.0, AccessPattern::Stream { bytes: 1 << 12 })], 64, 1);
        let mut b = TraceGenerator::new(
            &[
                (1.0, AccessPattern::Stream { bytes: 1 << 12 }),
                (1.0, AccessPattern::UniformRandom { bytes: 1 << 12 }),
            ],
            64,
            1,
        );
        b.restore(&a.snapshot());
    }
}
