//! Per-window analytic timing: miss ratios + bandwidth → IPS.
//!
//! Within one adaptation window the simulator knows, per application, the
//! LLC miss ratio (from the cache model) and the MBA configuration. This
//! module closes the loop between execution speed and memory traffic:
//!
//! * cycles per instruction decompose into a compute term (`1/ipc_peak`)
//!   and an exposed-memory term proportional to misses per instruction,
//!   the effective memory latency, and the inverse of the application's
//!   memory-level parallelism;
//! * effective memory latency is the unloaded latency, inflated by MBA
//!   throttling (latency-bound applications feel throttling even below
//!   their bandwidth cap);
//! * the achieved IPS is then the *roofline* minimum of the latency-bound
//!   rate and the bandwidth-bound rate `grant / bytes-per-instruction`,
//!   where grants come from the max–min fair bus model under each
//!   application's MBA cap.

use crate::bandwidth::{self, AllocScratch, BandwidthRequest};

/// Machine-level constants the timing model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Core frequency in Hz.
    pub freq_hz: f64,
    /// Unloaded memory latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Total memory-bus bandwidth in bytes/second.
    pub total_bw: f64,
    /// Cache-line size in bytes (unit of memory traffic).
    pub line_bytes: f64,
}

/// Static per-application execution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppTimingParams {
    /// Dedicated cores.
    pub cores: u32,
    /// Peak per-core IPC when never missing the LLC.
    pub ipc_peak: f64,
    /// LLC accesses per kilo-instruction.
    pub apki: f64,
    /// Memory-level parallelism: average outstanding misses that overlap.
    /// Values below 1 model dependent-miss chains whose effective cost
    /// exceeds the raw latency.
    pub mlp: f64,
}

/// Per-window observations and configuration for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowInputs {
    /// LLC miss ratio observed this window, in `[0, 1]`.
    pub miss_ratio: f64,
    /// Writebacks per LLC access observed this window.
    pub wb_per_access: f64,
    /// MBA bandwidth cap in bytes/second.
    pub bw_cap: f64,
    /// MBA latency-inflation factor (1.0 when unthrottled).
    pub lat_factor: f64,
}

/// The solved steady state of one application for the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppWindowResult {
    /// Achieved instructions per second (all cores combined).
    pub ips: f64,
    /// Memory traffic the application wanted, bytes/second.
    pub demand_bw: f64,
    /// Memory traffic it was granted, bytes/second.
    pub granted_bw: f64,
    /// Final congestion factor (demand/grant, ≥ 1).
    pub congestion: f64,
}

/// Reusable buffers for [`solve_window_into`]: the per-application
/// intermediates of the roofline solve plus the bus-arbitration scratch.
#[derive(Debug, Default, Clone)]
pub struct WindowScratch {
    bytes_per_inst: Vec<f64>,
    requests: Vec<BandwidthRequest>,
    grants: Vec<f64>,
    bw: AllocScratch,
}

/// Solves the window roofline for all applications jointly.
///
/// Applications with zero miss traffic are purely compute-bound and come
/// out at `cores × freq × ipc_peak` instructions per second. Applications
/// whose demanded traffic exceeds their max–min fair grant are
/// bandwidth-bound and come out at `grant / bytes-per-instruction`.
pub fn solve_window(
    cfg: &TimingConfig,
    apps: &[(AppTimingParams, WindowInputs)],
) -> Vec<AppWindowResult> {
    let mut results = Vec::new();
    solve_window_into(cfg, apps, &mut results, &mut WindowScratch::default());
    results
}

/// [`solve_window`], writing into a caller-owned results vector and
/// reusing `scratch` across windows. Byte-identical to [`solve_window`].
pub fn solve_window_into(
    cfg: &TimingConfig,
    apps: &[(AppTimingParams, WindowInputs)],
    results: &mut Vec<AppWindowResult>,
    scratch: &mut WindowScratch,
) {
    let n = apps.len();
    results.clear();
    if n == 0 {
        return;
    }

    let lat_cycles_base = cfg.mem_latency_ns * 1e-9 * cfg.freq_hz;

    // Latency-bound pass: MBA-inflated latency → unconstrained IPS and the
    // memory traffic that IPS would generate.
    let WindowScratch {
        bytes_per_inst,
        requests,
        grants,
        bw,
    } = scratch;
    bytes_per_inst.clear();
    requests.clear();
    for (p, w) in apps {
        let misses_per_inst = (p.apki / 1000.0) * w.miss_ratio.clamp(0.0, 1.0);
        // MLP below 1 models dependent-miss chains (each miss costs more
        // than the raw latency); the floor keeps the model numerically sane.
        let exposed_lat = lat_cycles_base * w.lat_factor / p.mlp.max(0.25);
        let cpi = 1.0 / p.ipc_peak + misses_per_inst * exposed_lat;
        let ips = f64::from(p.cores) * cfg.freq_hz / cpi;
        let traffic_per_access = w.miss_ratio.clamp(0.0, 1.0) + w.wb_per_access.max(0.0);
        let bpi = (p.apki / 1000.0) * traffic_per_access * cfg.line_bytes;
        let demand = ips * bpi;
        bytes_per_inst.push(bpi);
        results.push(AppWindowResult {
            ips,
            demand_bw: demand,
            granted_bw: 0.0,
            congestion: 1.0,
        });
        requests.push(BandwidthRequest {
            demand,
            cap: w.bw_cap,
        });
    }

    // Bandwidth-bound pass: grants clamp IPS from above. Grants never
    // exceed demand, so the clamp can only lower IPS.
    bandwidth::allocate_into(cfg.total_bw, requests, grants, bw);
    for i in 0..n {
        results[i].granted_bw = grants[i];
        if results[i].demand_bw > 0.0 {
            if grants[i] > 0.0 {
                results[i].ips = results[i].ips.min(grants[i] / bytes_per_inst[i]);
                results[i].congestion = (results[i].demand_bw / grants[i]).max(1.0);
            } else {
                results[i].ips = 0.0;
                results[i].congestion = f64::INFINITY;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1.0e9;

    fn cfg() -> TimingConfig {
        TimingConfig {
            freq_hz: 2.1e9,
            mem_latency_ns: 80.0,
            total_bw: 28.0 * GB,
            line_bytes: 64.0,
        }
    }

    fn params(cores: u32, ipc: f64, apki: f64, mlp: f64) -> AppTimingParams {
        AppTimingParams {
            cores,
            ipc_peak: ipc,
            apki,
            mlp,
        }
    }

    fn inputs(miss_ratio: f64, cap_gb: f64) -> WindowInputs {
        WindowInputs {
            miss_ratio,
            wb_per_access: 0.0,
            bw_cap: cap_gb * GB,
            lat_factor: 1.0,
        }
    }

    #[test]
    fn compute_bound_app_reaches_peak_ips() {
        let r = solve_window(&cfg(), &[(params(4, 1.5, 5.0, 4.0), inputs(0.0, 48.0))]);
        let expect = 4.0 * 2.1e9 * 1.5;
        assert!((r[0].ips - expect).abs() / expect < 1e-9);
        assert_eq!(r[0].demand_bw, 0.0);
        assert!((r[0].congestion - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_miss_ratio_means_lower_ips() {
        let base = params(4, 1.5, 30.0, 6.0);
        let lo = solve_window(&cfg(), &[(base, inputs(0.05, 48.0))]);
        let hi = solve_window(&cfg(), &[(base, inputs(0.5, 48.0))]);
        assert!(
            hi[0].ips < lo[0].ips * 0.7,
            "{} vs {}",
            hi[0].ips,
            lo[0].ips
        );
    }

    #[test]
    fn mba_cap_throttles_heavy_streamer() {
        let p = params(4, 1.2, 120.0, 12.0);
        let free = solve_window(&cfg(), &[(p, inputs(0.9, 48.0))]);
        let capped = solve_window(&cfg(), &[(p, inputs(0.9, 2.0))]);
        assert!(capped[0].granted_bw <= 2.0 * GB + 1.0);
        assert!(
            capped[0].ips < free[0].ips * 0.6,
            "capped {} vs free {}",
            capped[0].ips,
            free[0].ips
        );
    }

    #[test]
    fn bandwidth_bound_ips_tracks_grant() {
        // When fully bandwidth-bound, IPS ≈ grant / bytes-per-instruction.
        let p = params(4, 2.0, 200.0, 16.0);
        let r = solve_window(&cfg(), &[(p, inputs(1.0, 4.0))]);
        let bytes_per_inst = 200.0 / 1000.0 * 64.0;
        let predicted = 4.0 * GB / bytes_per_inst;
        assert!(
            (r[0].ips - predicted).abs() / predicted < 0.15,
            "ips {} vs predicted {predicted}",
            r[0].ips
        );
    }

    #[test]
    fn two_streamers_share_the_bus() {
        let p = params(8, 1.2, 150.0, 12.0);
        let alone = solve_window(&cfg(), &[(p, inputs(0.9, 96.0))]);
        let pair = solve_window(&cfg(), &[(p, inputs(0.9, 96.0)), (p, inputs(0.9, 96.0))]);
        assert!(pair[0].ips < alone[0].ips * 0.75);
        assert!((pair[0].ips - pair[1].ips).abs() / pair[0].ips < 1e-6);
        let total: f64 = pair.iter().map(|r| r.granted_bw).sum();
        assert!(total <= 28.0 * GB * 1.0001);
    }

    #[test]
    fn latency_inflation_hits_low_mlp_hardest() {
        let low_mlp = params(4, 1.5, 40.0, 2.0);
        let high_mlp = params(4, 1.5, 40.0, 16.0);
        let mk = |lat_factor| WindowInputs {
            miss_ratio: 0.6,
            wb_per_access: 0.0,
            bw_cap: 48.0 * GB,
            lat_factor,
        };
        let base_lo = solve_window(&cfg(), &[(low_mlp, mk(1.0))])[0].ips;
        let thr_lo = solve_window(&cfg(), &[(low_mlp, mk(3.0))])[0].ips;
        let base_hi = solve_window(&cfg(), &[(high_mlp, mk(1.0))])[0].ips;
        let thr_hi = solve_window(&cfg(), &[(high_mlp, mk(3.0))])[0].ips;
        let drop_lo = 1.0 - thr_lo / base_lo;
        let drop_hi = 1.0 - thr_hi / base_hi;
        assert!(
            drop_lo > drop_hi + 0.1,
            "low-MLP drop {drop_lo} should exceed high-MLP drop {drop_hi}"
        );
    }

    #[test]
    fn writebacks_add_to_demand() {
        let p = params(4, 1.5, 60.0, 8.0);
        let clean = solve_window(&cfg(), &[(p, inputs(0.5, 48.0))]);
        let dirty = solve_window(
            &cfg(),
            &[(
                p,
                WindowInputs {
                    miss_ratio: 0.5,
                    wb_per_access: 0.25,
                    bw_cap: 48.0 * GB,
                    lat_factor: 1.0,
                },
            )],
        );
        assert!(dirty[0].demand_bw > clean[0].demand_bw * 1.3);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(solve_window(&cfg(), &[]).is_empty());
    }

    #[test]
    fn roofline_is_stable_and_finite() {
        // A pathological mix should still produce finite, positive IPS.
        let apps: Vec<_> = (0..6)
            .map(|k| {
                (
                    params(2, 1.0 + k as f64 * 0.2, 150.0, 4.0),
                    inputs(0.95, 1.2),
                )
            })
            .collect();
        for r in solve_window(&cfg(), &apps) {
            assert!(r.ips.is_finite() && r.ips > 0.0);
            assert!(r.congestion >= 1.0 && r.congestion.is_finite());
        }
    }
}
