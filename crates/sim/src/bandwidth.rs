//! Memory-bus contention model: MBA caps plus max–min fair sharing.
//!
//! Each application demands memory traffic (misses + writebacks); MBA
//! throttling caps its request rate at a fraction of its cores' link
//! bandwidth; whatever demand survives the caps then contends for the
//! machine's total memory bandwidth. The memory controller is modelled as
//! max–min fair: low-traffic applications get their full demand, heavy
//! streamers split the residual capacity evenly — the usual first-order
//! model of a fair DRAM scheduler.

/// One application's bandwidth request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthRequest {
    /// Unconstrained demand, in bytes/second.
    pub demand: f64,
    /// MBA-imposed cap, in bytes/second.
    pub cap: f64,
}

impl BandwidthRequest {
    /// The demand after clamping by the MBA cap.
    pub fn effective_demand(&self) -> f64 {
        self.demand.min(self.cap).max(0.0)
    }
}

/// Reusable buffers for [`allocate_into`], so steady-state callers (one
/// bus arbitration per simulated window) allocate nothing after warm-up.
#[derive(Debug, Default, Clone)]
pub struct AllocScratch {
    demands: Vec<f64>,
    active: Vec<usize>,
    satisfied: Vec<usize>,
}

/// Allocates `total` bytes/second across the requests with max–min
/// fairness under each request's cap.
///
/// Guarantees (see the property tests):
/// * `0 ≤ grant_i ≤ min(demand_i, cap_i)`,
/// * `Σ grant_i ≤ total`, with equality when demand saturates the bus,
/// * max–min fairness: every unsatisfied application receives the same
///   grant, and no application receives more than that.
pub fn allocate(total: f64, requests: &[BandwidthRequest]) -> Vec<f64> {
    let mut grants = Vec::new();
    allocate_into(total, requests, &mut grants, &mut AllocScratch::default());
    grants
}

/// [`allocate`], writing into a caller-owned grants vector and reusing
/// `scratch` across calls. Byte-identical results to [`allocate`].
pub fn allocate_into(
    total: f64,
    requests: &[BandwidthRequest],
    grants: &mut Vec<f64>,
    scratch: &mut AllocScratch,
) {
    let n = requests.len();
    grants.clear();
    grants.resize(n, 0.0);
    if n == 0 || total <= 0.0 {
        return;
    }

    let AllocScratch {
        demands,
        active,
        satisfied,
    } = scratch;
    demands.clear();
    demands.extend(requests.iter().map(|r| r.effective_demand()));
    active.clear();
    active.extend((0..n).filter(|&i| demands[i] > 0.0));
    let mut remaining = total;

    while !active.is_empty() && remaining > 0.0 {
        let fair = remaining / active.len() as f64;
        satisfied.clear();
        for &i in active.iter() {
            if demands[i] <= fair {
                satisfied.push(i);
            }
        }
        if satisfied.is_empty() {
            // Everyone still active wants more than the fair share: split
            // the remainder evenly and stop.
            for &i in active.iter() {
                grants[i] = fair;
            }
            return;
        }
        for &i in satisfied.iter() {
            grants[i] = demands[i];
            remaining -= demands[i];
        }
        active.retain(|i| !satisfied.contains(i));
        remaining = remaining.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_rng::XorShift64Star;

    const GB: f64 = 1.0e9;

    fn req(demand: f64, cap: f64) -> BandwidthRequest {
        BandwidthRequest { demand, cap }
    }

    #[test]
    fn undersubscribed_bus_grants_all_demands() {
        let g = allocate(
            28.0 * GB,
            &[req(3.0 * GB, 48.0 * GB), req(5.0 * GB, 48.0 * GB)],
        );
        assert!((g[0] - 3.0 * GB).abs() < 1.0);
        assert!((g[1] - 5.0 * GB).abs() < 1.0);
    }

    #[test]
    fn mba_cap_clamps_before_contention() {
        let g = allocate(28.0 * GB, &[req(10.0 * GB, 4.8 * GB)]);
        assert!((g[0] - 4.8 * GB).abs() < 1.0, "cap binds: {}", g[0]);
    }

    #[test]
    fn oversubscribed_bus_splits_evenly_among_heavy_streamers() {
        let g = allocate(
            28.0 * GB,
            &[
                req(20.0 * GB, 48.0 * GB),
                req(20.0 * GB, 48.0 * GB),
                req(20.0 * GB, 48.0 * GB),
            ],
        );
        for &x in &g {
            assert!((x - 28.0 * GB / 3.0).abs() < 1.0);
        }
    }

    #[test]
    fn light_app_is_protected_from_streamers() {
        let g = allocate(
            28.0 * GB,
            &[
                req(1.0 * GB, 48.0 * GB),
                req(100.0 * GB, 48.0 * GB),
                req(100.0 * GB, 48.0 * GB),
            ],
        );
        assert!((g[0] - 1.0 * GB).abs() < 1.0, "light app gets full demand");
        assert!((g[1] - 13.5 * GB).abs() < GB * 1e-6);
        assert!((g[2] - 13.5 * GB).abs() < GB * 1e-6);
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert!(allocate(28.0 * GB, &[]).is_empty());
        assert_eq!(allocate(0.0, &[req(GB, GB)]), vec![0.0]);
        assert_eq!(allocate(GB, &[req(0.0, GB)]), vec![0.0]);
    }

    #[test]
    fn negative_demand_is_treated_as_zero() {
        let g = allocate(GB, &[req(-5.0, GB), req(0.5 * GB, GB)]);
        assert_eq!(g[0], 0.0);
        assert!((g[1] - 0.5 * GB).abs() < 1.0);
    }

    /// Random request vectors for the two property-style sweeps below.
    fn random_reqs(rng: &mut XorShift64Star) -> Vec<BandwidthRequest> {
        let n = rng.gen_range(1..10usize);
        (0..n)
            .map(|_| req(rng.gen_range(0.0..40.0) * GB, rng.gen_range(0.1..50.0) * GB))
            .collect()
    }

    #[test]
    fn grants_respect_caps_demands_and_bus() {
        let mut rng = XorShift64Star::seed_from_u64(0xBB_0001);
        for _ in 0..500 {
            let total = rng.gen_range(1.0..64.0) * GB;
            let reqs = random_reqs(&mut rng);
            let g = allocate(total, &reqs);
            assert_eq!(g.len(), reqs.len());
            let mut sum = 0.0;
            for (gi, r) in g.iter().zip(&reqs) {
                assert!(*gi >= -1e-6);
                assert!(*gi <= r.effective_demand() + 1e-3);
                sum += gi;
            }
            assert!(sum <= total + 1e-3);
            // Conservation: if demand saturates the bus, the bus is fully
            // used; otherwise everyone is satisfied.
            let eff: f64 = reqs.iter().map(|r| r.effective_demand()).sum();
            if eff >= total {
                assert!((sum - total).abs() < total * 1e-9 + 1e-3);
            } else {
                for (gi, r) in g.iter().zip(&reqs) {
                    assert!((gi - r.effective_demand()).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn max_min_fairness_holds() {
        let mut rng = XorShift64Star::seed_from_u64(0xBB_0002);
        for _ in 0..500 {
            let total = rng.gen_range(1.0..40.0) * GB;
            let reqs = random_reqs(&mut rng);
            let g = allocate(total, &reqs);
            // Every unsatisfied app receives the maximum grant.
            let max_grant = g.iter().cloned().fold(0.0f64, f64::max);
            for (gi, r) in g.iter().zip(&reqs) {
                if *gi + 1e-3 < r.effective_demand() {
                    assert!(
                        *gi >= max_grant - 1e-3,
                        "unsatisfied app got {gi} < max grant {max_grant}"
                    );
                }
            }
        }
    }
}
