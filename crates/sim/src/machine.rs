//! The composed server: CLOS table, applications, PMCs, clock.

use std::collections::BTreeMap;
use std::fmt;

use copart_telemetry::CounterSnapshot;

use crate::cache::{CacheConfig, SampledCache};
use crate::timing::{
    self, AppTimingParams, AppWindowResult, TimingConfig, WindowInputs, WindowScratch,
};
use crate::trace::{AccessPattern, TraceGenerator, BURST_LEN};
use crate::{CbmMask, ClosId, MachineConfig, MaskError, MbaLevel};

/// A static description of an application's execution behaviour.
///
/// These parameters — plus the phase mixture — fully determine how the
/// application responds to LLC capacity and memory bandwidth, and are the
/// calibration surface of the workload models in `copart-workloads`.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Human-readable name (e.g. `"water_nsquared"`).
    pub name: String,
    /// Dedicated cores (threads are pinned, as in §3.3 of the paper).
    pub cores: u32,
    /// Peak per-core IPC when never missing in the LLC.
    pub ipc_peak: f64,
    /// LLC accesses per kilo-instruction.
    pub apki: f64,
    /// Fraction of LLC accesses that are writes (drives writeback traffic).
    pub write_fraction: f64,
    /// Memory-level parallelism (overlapping outstanding misses).
    pub mlp: f64,
    /// Weighted access-phase mixture describing the memory reference
    /// stream.
    pub phases: Vec<(f64, AccessPattern)>,
}

/// Handle identifying an application inside a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppHandle(u32);

impl AppHandle {
    /// The raw slot index — the snapshot/restore seam for backend group
    /// tables that must persist handle values across a crash.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from its raw slot index. Only meaningful for
    /// values previously obtained from [`AppHandle::raw`] against the
    /// same (or a faithfully restored) machine.
    pub fn from_raw(raw: u32) -> AppHandle {
        AppHandle(raw)
    }
}

impl fmt::Display for AppHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Errors from machine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Not enough free cores to admit the application.
    NoCoresAvailable {
        /// Cores requested.
        requested: u32,
        /// Cores currently free.
        free: u32,
    },
    /// The application handle does not exist (or was removed).
    UnknownApp(AppHandle),
    /// The CLOS has not been configured.
    UnknownClos(ClosId),
    /// An invalid CAT mask.
    Mask(MaskError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoCoresAvailable { requested, free } => {
                write!(f, "requested {requested} cores but only {free} are free")
            }
            SimError::UnknownApp(h) => write!(f, "unknown application {h}"),
            SimError::UnknownClos(c) => write!(f, "unconfigured {c}"),
            SimError::Mask(e) => write!(f, "invalid CAT mask: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MaskError> for SimError {
    fn from(e: MaskError) -> Self {
        SimError::Mask(e)
    }
}

/// Per-window simulation results for one application, useful for
/// experiment harnesses and debugging; the controller itself only reads
/// the PMCs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowReport {
    /// The application.
    pub app: AppHandle,
    /// Achieved instructions per second.
    pub ips: f64,
    /// LLC miss ratio this window.
    pub miss_ratio: f64,
    /// Memory traffic demanded, bytes/second.
    pub demand_bw: f64,
    /// Memory traffic granted, bytes/second.
    pub granted_bw: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ClosConfig {
    mask: CbmMask,
    mba: MbaLevel,
}

/// Frozen state of one live application inside a [`MachineSnapshot`]:
/// the full spec, CLOS assignment, trace-generator position, estimator
/// state, and cumulative PMC accumulators (kept as `f64` exactly as the
/// machine accumulates them, so a restored run produces bit-identical
/// counter readings).
#[derive(Debug, Clone, PartialEq)]
pub struct SimAppSnapshot {
    /// The application's full spec (unscaled phases).
    pub spec: AppSpec,
    /// Raw CLOS id the application runs under.
    pub clos: u16,
    /// Mid-stream position of the trace generator.
    pub gen: crate::trace::TraceGenSnapshot,
    /// IPS estimate used to size the next window's access quota.
    pub ips_estimate: f64,
    /// Smoothed miss ratio.
    pub miss_ratio: f64,
    /// Smoothed writebacks per access.
    pub wb_per_access: f64,
    /// Cumulative instructions (f64 accumulator).
    pub instructions: f64,
    /// Cumulative cycles (f64 accumulator).
    pub cycles: f64,
    /// Cumulative LLC accesses (f64 accumulator).
    pub accesses: f64,
    /// Cumulative LLC misses (f64 accumulator).
    pub misses: f64,
    /// Cumulative memory traffic in bytes (f64 accumulator).
    pub mem_traffic_bytes: f64,
}

/// Complete dynamic state of a [`Machine`]: virtual time, the CLOS table,
/// every application slot (removed-app holes preserved, so handles stay
/// stable), and the shared cache contents. Together with the
/// [`MachineConfig`] the machine was built from, this fully determines
/// all future behaviour — restoring it mid-run continues the simulation
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnapshot {
    /// Virtual time in nanoseconds.
    pub time_ns: u64,
    /// CLOS table as `(raw id, CAT mask bits, MBA percent)` triples.
    pub clos_table: Vec<(u16, u32, u8)>,
    /// Application slots in handle order; `None` marks a removed app.
    pub apps: Vec<Option<SimAppSnapshot>>,
    /// Shared LLC contents.
    pub cache: crate::cache::CacheSnapshot,
}

#[derive(Debug)]
struct SimApp {
    spec: AppSpec,
    clos: ClosId,
    gen: TraceGenerator,
    /// IPS estimate used to size the next window's access quota.
    ips_estimate: f64,
    /// Smoothed miss ratio and writebacks-per-access.
    miss_ratio: f64,
    wb_per_access: f64,
    /// Cumulative counters (f64 accumulators, exported as integers).
    instructions: f64,
    cycles: f64,
    accesses: f64,
    misses: f64,
    /// Cumulative memory traffic in bytes (the MBM `mbm_total_bytes`
    /// monitoring event: misses + writebacks actually served).
    mem_traffic_bytes: f64,
}

/// Reusable per-window buffers so steady-state [`Machine::tick`] calls
/// stay off the heap: the live-app index, sampling quotas and tallies,
/// timing inputs/outputs, and the report vector handed back to callers.
#[derive(Debug, Default)]
struct TickScratch {
    live: Vec<usize>,
    quotas: Vec<u64>,
    remaining: Vec<u64>,
    sampled_hits: Vec<u64>,
    sampled_accesses: Vec<u64>,
    sampled_writebacks: Vec<u64>,
    sampled_prefetch_fills: Vec<u64>,
    timing_in: Vec<(AppTimingParams, WindowInputs)>,
    solved: Vec<AppWindowResult>,
    timing: WindowScratch,
    reports: Vec<WindowReport>,
}

/// The simulated server.
///
/// A `Machine` owns the shared LLC, the CLOS configuration table, and the
/// consolidated applications. Time advances only through [`Machine::tick`],
/// which simulates one adaptation window: sampled cache accesses are
/// interleaved across applications, the timing fixed point is solved, and
/// the per-application PMCs advance.
pub struct Machine {
    cfg: MachineConfig,
    timing_cfg: TimingConfig,
    cache: SampledCache,
    clos_table: BTreeMap<ClosId, ClosConfig>,
    apps: Vec<Option<SimApp>>,
    cores_used: u32,
    time_ns: u64,
    scratch: TickScratch,
}

impl Machine {
    /// Builds a machine; CLOS 0 starts configured with the full way mask
    /// and an unthrottled MBA level, matching resctrl's default group.
    pub fn new(cfg: MachineConfig) -> Machine {
        cfg.assert_valid();
        let cache = SampledCache::new(CacheConfig {
            sets: cfg.sim_sets(),
            ways: cfg.llc_ways,
            line_bytes: cfg.line_bytes,
        });
        let timing_cfg = TimingConfig {
            freq_hz: cfg.freq_hz,
            mem_latency_ns: cfg.mem_latency_ns,
            total_bw: cfg.mem_bw_bytes_per_sec,
            line_bytes: cfg.line_bytes as f64,
        };
        let mut clos_table = BTreeMap::new();
        clos_table.insert(
            ClosId(0),
            ClosConfig {
                mask: CbmMask::full(cfg.llc_ways),
                mba: MbaLevel::MAX,
            },
        );
        Machine {
            cfg,
            timing_cfg,
            cache,
            clos_table,
            apps: Vec::new(),
            cores_used: 0,
            time_ns: 0,
            scratch: TickScratch::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.time_ns
    }

    /// Cores not yet dedicated to any application.
    pub fn free_cores(&self) -> u32 {
        self.cfg.n_cores - self.cores_used
    }

    /// Admits an application, assigning it to `clos`.
    ///
    /// # Errors
    ///
    /// Fails if the CLOS is unconfigured or not enough cores are free.
    pub fn add_app(&mut self, spec: AppSpec, clos: ClosId) -> Result<AppHandle, SimError> {
        if !self.clos_table.contains_key(&clos) {
            return Err(SimError::UnknownClos(clos));
        }
        let free = self.free_cores();
        if spec.cores == 0 || spec.cores > free {
            return Err(SimError::NoCoresAvailable {
                requested: spec.cores,
                free,
            });
        }
        let handle = AppHandle(self.apps.len() as u32);
        // Scale pattern footprints to match the sampled cache, and give
        // each application a private tag space.
        let scaled: Vec<(f64, AccessPattern)> = spec
            .phases
            .iter()
            .map(|(w, p)| (*w, p.scaled(self.cfg.scale, self.cfg.line_bytes)))
            .collect();
        let seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(handle.0));
        let mut gen = TraceGenerator::new(&scaled, self.cfg.line_bytes, seed);
        // Pre-roll so phase cursors are decorrelated across apps.
        for _ in 0..(u64::from(handle.0) * 97 % 1024) {
            let _ = gen.next_addr();
        }
        let bootstrap_ips = f64::from(spec.cores) * self.cfg.freq_hz * spec.ipc_peak * 0.5;
        self.cores_used += spec.cores;
        self.apps.push(Some(SimApp {
            spec,
            clos,
            gen,
            ips_estimate: bootstrap_ips,
            miss_ratio: 0.5,
            wb_per_access: 0.0,
            instructions: 0.0,
            cycles: 0.0,
            accesses: 0.0,
            misses: 0.0,
            mem_traffic_bytes: 0.0,
        }));
        Ok(handle)
    }

    /// Removes an application, freeing its cores. Its cache lines remain
    /// resident until naturally evicted, as on real hardware.
    pub fn remove_app(&mut self, app: AppHandle) -> Result<(), SimError> {
        let slot = self
            .apps
            .get_mut(app.0 as usize)
            .ok_or(SimError::UnknownApp(app))?;
        let sim_app = slot.take().ok_or(SimError::UnknownApp(app))?;
        self.cores_used -= sim_app.spec.cores;
        Ok(())
    }

    /// Live application handles, in admission order.
    pub fn apps(&self) -> Vec<AppHandle> {
        self.apps
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|_| AppHandle(i as u32)))
            .collect()
    }

    /// The spec of a live application.
    pub fn app_spec(&self, app: AppHandle) -> Result<&AppSpec, SimError> {
        self.live(app).map(|a| &a.spec)
    }

    /// Configures (or creates) a CLOS with the given CAT mask.
    ///
    /// # Errors
    ///
    /// Fails if the mask is invalid for this machine's way count.
    pub fn set_cbm(&mut self, clos: ClosId, mask: CbmMask) -> Result<(), SimError> {
        CbmMask::new(mask.bits(), self.cfg.llc_ways)?;
        self.clos_table
            .entry(clos)
            .or_insert(ClosConfig {
                mask,
                mba: MbaLevel::MAX,
            })
            .mask = mask;
        Ok(())
    }

    /// Configures (or creates) a CLOS with the given MBA level.
    pub fn set_mba(&mut self, clos: ClosId, level: MbaLevel) {
        self.clos_table
            .entry(clos)
            .or_insert(ClosConfig {
                mask: CbmMask::full(self.cfg.llc_ways),
                mba: MbaLevel::MAX,
            })
            .mba = level;
    }

    /// Reads a CLOS configuration, if defined.
    pub fn clos_config(&self, clos: ClosId) -> Option<(CbmMask, MbaLevel)> {
        self.clos_table.get(&clos).map(|c| (c.mask, c.mba))
    }

    /// Reassigns a live application to a different (configured) CLOS.
    pub fn assign_clos(&mut self, app: AppHandle, clos: ClosId) -> Result<(), SimError> {
        if !self.clos_table.contains_key(&clos) {
            return Err(SimError::UnknownClos(clos));
        }
        self.live_mut(app)?.clos = clos;
        Ok(())
    }

    /// The CLOS a live application currently runs under — the ground
    /// truth that backend-level group tables (e.g. `SimBackend`'s) must
    /// stay consistent with.
    ///
    /// # Errors
    ///
    /// Fails on an unknown or removed application.
    pub fn app_clos(&self, app: AppHandle) -> Result<ClosId, SimError> {
        Ok(self.live(app)?.clos)
    }

    /// LLC occupancy (bytes, unscaled) attributed to the application's
    /// CLOS, emulating the `llc_occupancy` monitoring event.
    pub fn llc_occupancy_bytes(&self, app: AppHandle) -> Result<u64, SimError> {
        let clos = self.live(app)?.clos;
        Ok(self.cache.occupancy_lines(clos) * self.cfg.line_bytes * u64::from(self.cfg.scale))
    }

    /// Replaces a live application's access-phase mixture and execution
    /// parameters mid-run, modelling a program phase change (e.g. an
    /// in-memory analytics job moving from scan to aggregate). Counters
    /// and the CLOS assignment are preserved; the trace generator restarts
    /// on the new mixture.
    ///
    /// # Errors
    ///
    /// Fails on an unknown application.
    pub fn set_app_behaviour(
        &mut self,
        app: AppHandle,
        ipc_peak: f64,
        apki: f64,
        mlp: f64,
        phases: Vec<(f64, AccessPattern)>,
    ) -> Result<(), SimError> {
        let scale = self.cfg.scale;
        let line_bytes = self.cfg.line_bytes;
        let seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(app.0) ^ 0x5eed);
        let a = self.live_mut(app)?;
        a.spec.ipc_peak = ipc_peak;
        a.spec.apki = apki;
        a.spec.mlp = mlp;
        let scaled: Vec<(f64, AccessPattern)> = phases
            .iter()
            .map(|(w, p)| (*w, p.scaled(scale, line_bytes)))
            .collect();
        a.spec.phases = phases;
        a.gen = TraceGenerator::new(&scaled, line_bytes, seed);
        // Let the estimators re-learn the new behaviour quickly.
        a.miss_ratio = 0.5;
        a.wb_per_access = 0.0;
        Ok(())
    }

    /// Cumulative memory traffic in bytes attributed to the application,
    /// emulating RDT's `mbm_total_bytes` monitoring event.
    pub fn mbm_total_bytes(&self, app: AppHandle) -> Result<u64, SimError> {
        Ok(self.live(app)?.mem_traffic_bytes as u64)
    }

    /// Reads the application's cumulative PMCs.
    pub fn counters(&self, app: AppHandle) -> Result<CounterSnapshot, SimError> {
        let a = self.live(app)?;
        Ok(CounterSnapshot {
            timestamp_ns: self.time_ns,
            instructions: a.instructions as u64,
            cycles: a.cycles as u64,
            llc_accesses: a.accesses as u64,
            llc_misses: a.misses as u64,
        })
    }

    /// Advances virtual time by `window_ns`, simulating one window.
    ///
    /// Returns one report per live application (admission order); the
    /// slice is backed by an internal buffer and stays valid until the
    /// next `tick`. Steady-state ticks reuse all window buffers and do
    /// not touch the heap.
    pub fn tick(&mut self, window_ns: u64) -> &[WindowReport] {
        let Machine {
            cfg,
            timing_cfg,
            cache,
            clos_table,
            apps,
            time_ns,
            scratch,
            ..
        } = self;
        let TickScratch {
            live,
            quotas,
            remaining,
            sampled_hits,
            sampled_accesses,
            sampled_writebacks,
            sampled_prefetch_fills,
            timing_in,
            solved,
            timing,
            reports,
        } = scratch;

        let dt = window_ns as f64 / 1e9;
        live.clear();
        live.extend((0..apps.len()).filter(|&i| apps[i].is_some()));
        reports.clear();
        if live.is_empty() {
            *time_ns += window_ns;
            return reports;
        }

        // --- Phase 1: sampled cache simulation, interleaved. ---
        // Quota per app: expected accesses this window, reduced by the
        // sampling scale; if any quota exceeds the budget, shrink all
        // proportionally so relative cache pressure is preserved.
        quotas.clear();
        quotas.extend(live.iter().map(|&i| {
            let a = apps[i].as_ref().expect("live");
            let expected = a.ips_estimate * a.spec.apki / 1000.0 * dt;
            (expected / f64::from(cfg.scale)).round() as u64
        }));
        let max_quota = quotas.iter().copied().max().unwrap_or(0);
        let budget = u64::from(cfg.window_sample_budget);
        if max_quota > budget {
            let shrink = budget as f64 / max_quota as f64;
            for q in quotas.iter_mut() {
                *q = ((*q as f64) * shrink).round() as u64;
            }
        }

        sampled_hits.clear();
        sampled_hits.resize(live.len(), 0);
        sampled_accesses.clear();
        sampled_accesses.resize(live.len(), 0);
        sampled_writebacks.clear();
        sampled_writebacks.resize(live.len(), 0);
        sampled_prefetch_fills.clear();
        sampled_prefetch_fills.resize(live.len(), 0);
        remaining.clear();
        remaining.extend_from_slice(quotas);
        loop {
            let mut any = false;
            for (k, &i) in live.iter().enumerate() {
                if remaining[k] == 0 {
                    continue;
                }
                any = true;
                let burst = remaining[k].min(u64::from(BURST_LEN));
                remaining[k] -= burst;
                let a = apps[i].as_mut().expect("live");
                let clos = a.clos;
                let cc = clos_table[&clos];
                let base = u64::from(i as u32 + 1) << 44;
                for _ in 0..burst {
                    let addr = base + a.gen.next_addr();
                    let is_write = a.gen.flip(a.spec.write_fraction);
                    let out = cache.access(clos, cc.mask, addr, is_write);
                    sampled_accesses[k] += 1;
                    if out.hit {
                        sampled_hits[k] += 1;
                    }
                    if out.writeback {
                        sampled_writebacks[k] += 1;
                    }
                    if !out.hit && cfg.prefetch_next_line {
                        let pf = cache.prefetch(clos, cc.mask, addr + cfg.line_bytes);
                        if !pf.hit {
                            sampled_prefetch_fills[k] += 1;
                        }
                        if pf.writeback {
                            sampled_writebacks[k] += 1;
                        }
                    }
                }
            }
            if !any {
                break;
            }
        }

        // --- Phase 2: timing fixed point. ---
        timing_in.clear();
        for (k, &i) in live.iter().enumerate() {
            let a = apps[i].as_mut().expect("live");
            if sampled_accesses[k] > 0 {
                let mr = 1.0 - sampled_hits[k] as f64 / sampled_accesses[k] as f64;
                let wb = sampled_writebacks[k] as f64 / sampled_accesses[k] as f64;
                // Light smoothing across windows: the cache state already
                // carries history, this just damps sampling noise.
                a.miss_ratio = 0.5 * a.miss_ratio + 0.5 * mr;
                a.wb_per_access = 0.5 * a.wb_per_access + 0.5 * wb;
            } else {
                a.miss_ratio = 0.0;
                a.wb_per_access = 0.0;
            }
            // Prefetch fills consume bus bandwidth like demand misses.
            let prefetch_per_access = if sampled_accesses[k] > 0 {
                sampled_prefetch_fills[k] as f64 / sampled_accesses[k] as f64
            } else {
                0.0
            };
            let cc = clos_table[&a.clos];
            timing_in.push((
                AppTimingParams {
                    cores: a.spec.cores,
                    ipc_peak: a.spec.ipc_peak,
                    apki: a.spec.apki,
                    mlp: a.spec.mlp,
                },
                WindowInputs {
                    miss_ratio: a.miss_ratio,
                    wb_per_access: a.wb_per_access + prefetch_per_access,
                    bw_cap: cfg.mba_bandwidth_cap(a.spec.cores, cc.mba),
                    lat_factor: cfg.mba_latency_factor(cc.mba),
                },
            ));
        }
        timing::solve_window_into(timing_cfg, timing_in, solved, timing);

        // --- Phase 3: advance PMCs. ---
        for (k, &i) in live.iter().enumerate() {
            let a = apps[i].as_mut().expect("live");
            let r = solved[k];
            let instr = r.ips * dt;
            let accesses = instr * a.spec.apki / 1000.0;
            a.instructions += instr;
            a.accesses += accesses;
            a.misses += accesses * a.miss_ratio;
            a.cycles += f64::from(a.spec.cores) * cfg.freq_hz * dt;
            // Achieved memory traffic: bounded by the bandwidth grant, so
            // this is what a memory-bandwidth monitor would count.
            a.mem_traffic_bytes +=
                accesses * (a.miss_ratio + a.wb_per_access) * cfg.line_bytes as f64;
            a.ips_estimate = r.ips;
            reports.push(WindowReport {
                app: AppHandle(i as u32),
                ips: r.ips,
                miss_ratio: a.miss_ratio,
                demand_bw: r.demand_bw,
                granted_bw: r.granted_bw,
            });
        }
        *time_ns += window_ns;
        reports
    }

    /// Runs `n` windows of `window_ns`, returning the average IPS of each
    /// live application over the last `measure` windows (a convenience for
    /// profiling and experiments: warm up, then measure).
    pub fn run_windows(&mut self, window_ns: u64, n: u32, measure: u32) -> Vec<(AppHandle, f64)> {
        assert!(
            measure >= 1 && measure <= n,
            "measure must be within run length"
        );
        let mut sums: BTreeMap<AppHandle, (f64, u32)> = BTreeMap::new();
        for round in 0..n {
            let reports = self.tick(window_ns);
            if round >= n - measure {
                for r in reports {
                    let e = sums.entry(r.app).or_insert((0.0, 0));
                    e.0 += r.ips;
                    e.1 += 1;
                }
            }
        }
        sums.into_iter()
            .map(|(h, (s, c))| (h, s / f64::from(c.max(1))))
            .collect()
    }

    fn live(&self, app: AppHandle) -> Result<&SimApp, SimError> {
        self.apps
            .get(app.0 as usize)
            .and_then(|a| a.as_ref())
            .ok_or(SimError::UnknownApp(app))
    }

    fn live_mut(&mut self, app: AppHandle) -> Result<&mut SimApp, SimError> {
        self.apps
            .get_mut(app.0 as usize)
            .and_then(|a| a.as_mut())
            .ok_or(SimError::UnknownApp(app))
    }

    /// Captures the machine's complete dynamic state.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            time_ns: self.time_ns,
            clos_table: self
                .clos_table
                .iter()
                .map(|(id, c)| (id.0, c.mask.bits(), c.mba.percent()))
                .collect(),
            apps: self
                .apps
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|a| SimAppSnapshot {
                        spec: a.spec.clone(),
                        clos: a.clos.0,
                        gen: a.gen.snapshot(),
                        ips_estimate: a.ips_estimate,
                        miss_ratio: a.miss_ratio,
                        wb_per_access: a.wb_per_access,
                        instructions: a.instructions,
                        cycles: a.cycles,
                        accesses: a.accesses,
                        misses: a.misses,
                        mem_traffic_bytes: a.mem_traffic_bytes,
                    })
                })
                .collect(),
            cache: self.cache.snapshot(),
        }
    }

    /// Restores dynamic state captured from a machine built with the same
    /// [`MachineConfig`]. Removed-app holes are reproduced so application
    /// handles keep their original meaning; trace generators are rebuilt
    /// over each spec's scaled phase mixture and resumed mid-stream.
    ///
    /// # Errors
    ///
    /// Fails if a CLOS mask in the snapshot is invalid for this machine's
    /// way count (the snapshot belongs to a different geometry).
    ///
    /// # Panics
    ///
    /// Panics if the cache snapshot or a trace-generator snapshot does
    /// not match this machine's geometry or the spec's phase mixture.
    pub fn restore(&mut self, snap: &MachineSnapshot) -> Result<(), SimError> {
        let mut clos_table = BTreeMap::new();
        for &(id, bits, percent) in &snap.clos_table {
            let mask = CbmMask::new(bits, self.cfg.llc_ways)?;
            clos_table.insert(
                ClosId(id),
                ClosConfig {
                    mask,
                    mba: MbaLevel::new(percent),
                },
            );
        }
        let mut apps: Vec<Option<SimApp>> = Vec::with_capacity(snap.apps.len());
        let mut cores_used = 0;
        for slot in &snap.apps {
            apps.push(slot.as_ref().map(|s| {
                cores_used += s.spec.cores;
                let scaled: Vec<(f64, AccessPattern)> = s
                    .spec
                    .phases
                    .iter()
                    .map(|(w, p)| (*w, p.scaled(self.cfg.scale, self.cfg.line_bytes)))
                    .collect();
                let mut gen = TraceGenerator::new(&scaled, self.cfg.line_bytes, 0);
                gen.restore(&s.gen);
                SimApp {
                    spec: s.spec.clone(),
                    clos: ClosId(s.clos),
                    gen,
                    ips_estimate: s.ips_estimate,
                    miss_ratio: s.miss_ratio,
                    wb_per_access: s.wb_per_access,
                    instructions: s.instructions,
                    cycles: s.cycles,
                    accesses: s.accesses,
                    misses: s.misses,
                    mem_traffic_bytes: s.mem_traffic_bytes,
                }
            }));
        }
        self.cache.restore(&snap.cache);
        self.clos_table = clos_table;
        self.apps = apps;
        self.cores_used = cores_used;
        self.time_ns = snap.time_ns;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_spec(name: &str, cores: u32) -> AppSpec {
        AppSpec {
            name: name.into(),
            cores,
            ipc_peak: 1.5,
            apki: 0.01,
            write_fraction: 0.0,
            mlp: 4.0,
            phases: vec![(
                1.0,
                AccessPattern::WorkingSetLoop {
                    bytes: 16 * 64,
                    stride: 64,
                },
            )],
        }
    }

    fn stream_spec(name: &str, cores: u32) -> AppSpec {
        AppSpec {
            name: name.into(),
            cores,
            ipc_peak: 1.2,
            apki: 120.0,
            write_fraction: 0.3,
            mlp: 12.0,
            phases: vec![(1.0, AccessPattern::Stream { bytes: 1 << 30 })],
        }
    }

    #[test]
    fn admission_respects_core_budget() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        m.add_app(compute_spec("a", 2), ClosId(0)).unwrap();
        m.add_app(compute_spec("b", 2), ClosId(0)).unwrap();
        let err = m.add_app(compute_spec("c", 1), ClosId(0)).unwrap_err();
        assert!(matches!(err, SimError::NoCoresAvailable { free: 0, .. }));
    }

    #[test]
    fn removal_frees_cores() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = m.add_app(compute_spec("a", 4), ClosId(0)).unwrap();
        m.remove_app(a).unwrap();
        assert_eq!(m.free_cores(), 4);
        assert!(matches!(m.remove_app(a), Err(SimError::UnknownApp(_))));
        assert!(m.add_app(compute_spec("b", 4), ClosId(0)).is_ok());
    }

    #[test]
    fn unknown_clos_is_rejected() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let err = m.add_app(compute_spec("a", 1), ClosId(7)).unwrap_err();
        assert!(matches!(err, SimError::UnknownClos(ClosId(7))));
    }

    #[test]
    fn counters_advance_monotonically() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = m.add_app(compute_spec("a", 2), ClosId(0)).unwrap();
        let s0 = m.counters(a).unwrap();
        m.tick(100_000_000);
        let s1 = m.counters(a).unwrap();
        m.tick(100_000_000);
        let s2 = m.counters(a).unwrap();
        assert!(s1.instructions > s0.instructions);
        assert!(s2.instructions > s1.instructions);
        assert!(s1.delta_since(&s0).is_some());
        assert_eq!(m.now_ns(), 200_000_000);
    }

    #[test]
    fn compute_bound_app_runs_near_peak() {
        let cfg = MachineConfig::tiny_test();
        let peak = 2.0 * cfg.freq_hz * 1.5;
        let mut m = Machine::new(cfg);
        let a = m.add_app(compute_spec("a", 2), ClosId(0)).unwrap();
        let avg = m.run_windows(100_000_000, 10, 5);
        let (h, ips) = avg[0];
        assert_eq!(h, a);
        assert!(ips > peak * 0.95, "ips {ips} vs peak {peak}");
    }

    #[test]
    fn streamer_is_hurt_by_mba_throttling() {
        let cfg = MachineConfig::tiny_test();
        let mut free_m = Machine::new(cfg.clone());
        free_m.add_app(stream_spec("s", 2), ClosId(0)).unwrap();
        let free_ips = free_m.run_windows(100_000_000, 20, 10)[0].1;

        let mut thr_m = Machine::new(cfg);
        thr_m.set_mba(ClosId(0), MbaLevel::MIN);
        thr_m.add_app(stream_spec("s", 2), ClosId(0)).unwrap();
        let thr_ips = thr_m.run_windows(100_000_000, 20, 10)[0].1;
        assert!(
            thr_ips < free_ips * 0.6,
            "throttled {thr_ips} vs free {free_ips}"
        );
    }

    #[test]
    fn cache_partition_protects_a_fitting_working_set() {
        // App A loops over three ways' worth of cache; app B streams. With
        // CAT isolation A keeps hitting; sharing all ways, B thrashes A.
        let cfg = MachineConfig::tiny_test();
        let ws_bytes = 3 * cfg.llc_way_bytes; // Fits in 3 of 4 ways.
        let loop_spec = AppSpec {
            name: "loop".into(),
            cores: 2,
            ipc_peak: 1.5,
            apki: 40.0,
            write_fraction: 0.0,
            mlp: 4.0,
            phases: vec![(
                1.0,
                AccessPattern::WorkingSetLoop {
                    bytes: ws_bytes,
                    stride: 64,
                },
            )],
        };

        let run = |isolated: bool| {
            let mut m = Machine::new(MachineConfig::tiny_test());
            if isolated {
                m.set_cbm(ClosId(0), CbmMask::new(0b0111, 4).unwrap())
                    .unwrap();
                m.set_cbm(ClosId(1), CbmMask::new(0b1000, 4).unwrap())
                    .unwrap();
            } else {
                m.set_cbm(ClosId(0), CbmMask::full(4)).unwrap();
                m.set_cbm(ClosId(1), CbmMask::full(4)).unwrap();
            }
            let a = m.add_app(loop_spec.clone(), ClosId(0)).unwrap();
            m.add_app(stream_spec("s", 2), ClosId(1)).unwrap();
            let avg = m.run_windows(100_000_000, 30, 10);
            avg.iter().find(|(h, _)| *h == a).unwrap().1
        };

        let isolated_ips = run(true);
        let shared_ips = run(false);
        assert!(
            isolated_ips > shared_ips * 1.1,
            "isolated {isolated_ips} vs shared {shared_ips}"
        );
    }

    #[test]
    fn occupancy_reflects_partition_size() {
        let cfg = MachineConfig::tiny_test();
        let mut m = Machine::new(cfg.clone());
        m.set_cbm(ClosId(0), CbmMask::new(0b0001, 4).unwrap())
            .unwrap();
        let a = m.add_app(stream_spec("s", 2), ClosId(0)).unwrap();
        m.run_windows(100_000_000, 10, 1);
        let occ = m.llc_occupancy_bytes(a).unwrap();
        // A streamer fills its one permitted way but cannot exceed it.
        assert!(occ <= cfg.llc_way_bytes + cfg.line_bytes * u64::from(cfg.scale));
        assert!(occ > cfg.llc_way_bytes / 2);
    }

    #[test]
    fn reports_cover_live_apps_only() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = m.add_app(compute_spec("a", 1), ClosId(0)).unwrap();
        let b = m.add_app(compute_spec("b", 1), ClosId(0)).unwrap();
        m.remove_app(a).unwrap();
        let reports = m.tick(50_000_000);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].app, b);
        assert_eq!(m.apps(), vec![b]);
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let mut original = Machine::new(MachineConfig::tiny_test());
        original.add_app(stream_spec("s", 2), ClosId(0)).unwrap();
        let gone = original.add_app(compute_spec("x", 1), ClosId(0)).unwrap();
        let kept = original.add_app(compute_spec("c", 1), ClosId(0)).unwrap();
        original
            .set_cbm(ClosId(1), CbmMask::new(0b0011, 4).unwrap())
            .unwrap();
        original.set_mba(ClosId(1), MbaLevel::new(40));
        original.remove_app(gone).unwrap();
        for _ in 0..7 {
            original.tick(100_000_000);
        }
        let snap = original.snapshot();
        let mut resumed = Machine::new(MachineConfig::tiny_test());
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.now_ns(), original.now_ns());
        assert_eq!(resumed.apps(), original.apps());
        assert_eq!(resumed.free_cores(), original.free_cores());
        assert_eq!(
            resumed.clos_config(ClosId(1)),
            original.clos_config(ClosId(1))
        );
        for _ in 0..10 {
            let a = original.tick(100_000_000).to_vec();
            let b = resumed.tick(100_000_000).to_vec();
            assert_eq!(a, b, "reports diverge after restore");
        }
        assert_eq!(
            original.counters(kept).unwrap(),
            resumed.counters(kept).unwrap()
        );
        assert_eq!(original.snapshot(), resumed.snapshot());
    }

    #[test]
    fn determinism_across_identical_machines() {
        let build = || {
            let mut m = Machine::new(MachineConfig::tiny_test());
            m.add_app(stream_spec("s", 2), ClosId(0)).unwrap();
            m.add_app(compute_spec("c", 1), ClosId(0)).unwrap();
            m
        };
        let mut m1 = build();
        let mut m2 = build();
        for _ in 0..5 {
            let r1 = m1.tick(100_000_000);
            let r2 = m2.tick(100_000_000);
            assert_eq!(r1, r2);
        }
    }
}

#[cfg(test)]
mod mbm_tests {
    use super::*;

    #[test]
    fn mbm_counts_streamer_traffic_but_not_compute() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let streamer = m
            .add_app(
                AppSpec {
                    name: "s".into(),
                    cores: 2,
                    ipc_peak: 1.2,
                    apki: 120.0,
                    write_fraction: 0.3,
                    mlp: 12.0,
                    phases: vec![(1.0, AccessPattern::Stream { bytes: 1 << 30 })],
                },
                ClosId(0),
            )
            .unwrap();
        let compute = m
            .add_app(
                AppSpec {
                    name: "c".into(),
                    cores: 1,
                    ipc_peak: 1.5,
                    apki: 0.01,
                    write_fraction: 0.0,
                    mlp: 4.0,
                    phases: vec![(
                        1.0,
                        AccessPattern::WorkingSetLoop {
                            bytes: 16 * 64,
                            stride: 64,
                        },
                    )],
                },
                ClosId(0),
            )
            .unwrap();
        for _ in 0..20 {
            m.tick(100_000_000);
        }
        let s_bytes = m.mbm_total_bytes(streamer).unwrap();
        let c_bytes = m.mbm_total_bytes(compute).unwrap();
        assert!(
            s_bytes > 100 * c_bytes.max(1),
            "streamer {s_bytes} should dwarf compute {c_bytes}"
        );
        // 2 seconds of traffic bounded by 2 s × bus bandwidth.
        let bound = (2.0 * m.config().mem_bw_bytes_per_sec) as u64;
        assert!(s_bytes <= bound, "{s_bytes} exceeds the bus bound {bound}");
    }

    #[test]
    fn mbm_is_monotone() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = m
            .add_app(
                AppSpec {
                    name: "s".into(),
                    cores: 1,
                    ipc_peak: 1.0,
                    apki: 50.0,
                    write_fraction: 0.2,
                    mlp: 8.0,
                    phases: vec![(1.0, AccessPattern::Stream { bytes: 1 << 28 })],
                },
                ClosId(0),
            )
            .unwrap();
        let mut prev = 0;
        for _ in 0..5 {
            m.tick(50_000_000);
            let now = m.mbm_total_bytes(a).unwrap();
            assert!(now >= prev);
            prev = now;
        }
        assert!(prev > 0);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;

    fn latency_bound_streamer() -> AppSpec {
        AppSpec {
            name: "lb-stream".into(),
            cores: 2,
            ipc_peak: 1.2,
            apki: 20.0,
            write_fraction: 0.1,
            mlp: 1.5, // Latency-bound: prefetching should help.
            phases: vec![(1.0, AccessPattern::Stream { bytes: 1 << 28 })],
        }
    }

    fn run_ips(prefetch: bool) -> f64 {
        let mut cfg = MachineConfig::tiny_test();
        cfg.prefetch_next_line = prefetch;
        let mut m = Machine::new(cfg);
        m.add_app(latency_bound_streamer(), ClosId(0)).unwrap();
        m.run_windows(100_000_000, 30, 10)[0].1
    }

    #[test]
    fn next_line_prefetch_helps_latency_bound_streams() {
        let off = run_ips(false);
        let on = run_ips(true);
        assert!(
            on > off * 1.2,
            "prefetching should speed a latency-bound stream: {on:.3e} vs {off:.3e}"
        );
    }

    #[test]
    fn prefetch_does_not_disturb_fitting_working_sets() {
        let spec = AppSpec {
            name: "loop".into(),
            cores: 2,
            ipc_peak: 1.5,
            apki: 40.0,
            write_fraction: 0.0,
            mlp: 4.0,
            phases: vec![(
                1.0,
                AccessPattern::WorkingSetLoop {
                    bytes: 2 * 64 * 1024, // 2 of 4 ways.
                    stride: 64,
                },
            )],
        };
        let run = |prefetch: bool| {
            let mut cfg = MachineConfig::tiny_test();
            cfg.prefetch_next_line = prefetch;
            let mut m = Machine::new(cfg);
            m.add_app(spec.clone(), ClosId(0)).unwrap();
            m.run_windows(100_000_000, 20, 10)[0].1
        };
        let off = run(false);
        let on = run(true);
        assert!(
            (on - off).abs() / off < 0.05,
            "an all-hit loop should be unaffected: {on:.3e} vs {off:.3e}"
        );
    }
}
