//! Hardware resource-control types: CLOSes, CAT way masks, MBA levels.

use std::fmt;

/// A class of service (CLOS) identifier.
///
/// On RDT hardware every core (or task group) is associated with a CLOS;
/// CAT way masks and MBA levels are programmed per CLOS. The evaluated
/// Xeon Gold 6130 exposes a small number of CLOSes; the simulator allows
/// any number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClosId(pub u16);

impl fmt::Display for ClosId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COS{}", self.0)
    }
}

/// The two partitionable resources CoPart coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Last-level cache capacity (CAT ways).
    Llc,
    /// Memory bandwidth (MBA level).
    MemoryBandwidth,
}

/// Errors constructing or validating a CAT capacity bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskError {
    /// The mask has no bits set; CAT requires at least one way.
    Empty,
    /// The mask has bits above the machine's way count.
    OutOfRange {
        /// Number of ways the machine supports.
        ways: u32,
    },
    /// The set bits are not contiguous, which Intel CAT forbids.
    NotContiguous,
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskError::Empty => write!(f, "CAT mask must have at least one way"),
            MaskError::OutOfRange { ways } => {
                write!(f, "CAT mask has bits beyond the {ways} supported ways")
            }
            MaskError::NotContiguous => write!(f, "CAT mask bits must be contiguous"),
        }
    }
}

impl std::error::Error for MaskError {}

/// A CAT capacity bitmask (CBM): bit *i* grants way *i*.
///
/// Intel CAT requires masks to be non-empty and contiguous; this type
/// enforces both at construction. Masks of different CLOSes may overlap —
/// overlapped ways are shared.
///
/// # Examples
///
/// ```
/// use copart_sim::CbmMask;
///
/// let mask = CbmMask::contiguous(2, 3, 11).unwrap(); // Ways 2, 3, 4.
/// assert_eq!(mask.bits(), 0b1_1100);
/// assert_eq!(mask.way_count(), 3);
/// assert!(CbmMask::new(0b101, 11).is_err()); // Not contiguous.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CbmMask(u32);

impl CbmMask {
    /// Builds a mask from raw bits, enforcing CAT validity rules for a
    /// machine with `ways` ways.
    pub fn new(bits: u32, ways: u32) -> Result<CbmMask, MaskError> {
        if bits == 0 {
            return Err(MaskError::Empty);
        }
        if ways < 32 && bits >> ways != 0 {
            return Err(MaskError::OutOfRange { ways });
        }
        // Contiguity: shifting out trailing zeros must leave 2^k - 1.
        let norm = bits >> bits.trailing_zeros();
        if norm & (norm + 1) != 0 {
            return Err(MaskError::NotContiguous);
        }
        Ok(CbmMask(bits))
    }

    /// A contiguous mask of `count` ways starting at way `start`.
    pub fn contiguous(start: u32, count: u32, ways: u32) -> Result<CbmMask, MaskError> {
        if count == 0 {
            return Err(MaskError::Empty);
        }
        if start + count > ways || count > 31 {
            return Err(MaskError::OutOfRange { ways });
        }
        CbmMask::new(((1u32 << count) - 1) << start, ways)
    }

    /// A mask granting all `ways` ways.
    pub fn full(ways: u32) -> CbmMask {
        assert!((1..=31).contains(&ways), "way count out of range: {ways}");
        CbmMask((1u32 << ways) - 1)
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Number of ways granted.
    pub fn way_count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether way `w` is granted.
    pub fn contains(self, w: u32) -> bool {
        w < 32 && self.0 & (1 << w) != 0
    }

    /// Iterator over the granted way indices, ascending.
    pub fn ways(self) -> impl Iterator<Item = u32> {
        let bits = self.0;
        (0..32).filter(move |w| bits & (1 << w) != 0)
    }

    /// Whether the two masks share any way.
    pub fn overlaps(self, other: CbmMask) -> bool {
        self.0 & other.0 != 0
    }
}

impl fmt::Display for CbmMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// An MBA throttling level in percent.
///
/// The evaluated CPU exposes levels 10 % (maximum throttling) through
/// 100 % (no throttling) in steps of 10 % (§3.1). The type clamps and
/// snaps arbitrary values onto that grid.
///
/// # Examples
///
/// ```
/// use copart_sim::MbaLevel;
///
/// assert_eq!(MbaLevel::new(34).percent(), 30); // Snapped to the grid.
/// assert_eq!(MbaLevel::new(50).step_up().percent(), 60);
/// assert_eq!(MbaLevel::MIN.step_down(), MbaLevel::MIN); // Saturates.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MbaLevel(u8);

impl MbaLevel {
    /// Minimum level (maximum throttling) exposed by the hardware.
    pub const MIN: MbaLevel = MbaLevel(10);
    /// Maximum level (no throttling).
    pub const MAX: MbaLevel = MbaLevel(100);
    /// Step between adjacent levels.
    pub const STEP: u8 = 10;

    /// Creates a level, snapping to the nearest multiple of 10 within
    /// `[10, 100]`.
    pub fn new(percent: u8) -> MbaLevel {
        let snapped = ((percent as u32 + 5) / 10 * 10).clamp(10, 100);
        MbaLevel(snapped as u8)
    }

    /// The level in percent, a multiple of 10 in `[10, 100]`.
    pub fn percent(self) -> u8 {
        self.0
    }

    /// The level as a fraction in `[0.1, 1.0]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.0) / 100.0
    }

    /// One step less throttled, saturating at 100 %.
    pub fn step_up(self) -> MbaLevel {
        MbaLevel((self.0 + Self::STEP).min(100))
    }

    /// One step more throttled, saturating at 10 %.
    pub fn step_down(self) -> MbaLevel {
        MbaLevel((self.0.saturating_sub(Self::STEP)).max(10))
    }

    /// All levels from most to least throttled.
    pub fn all() -> impl Iterator<Item = MbaLevel> {
        (1..=10).map(|k| MbaLevel(k * 10))
    }
}

impl fmt::Display for MbaLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_masks_are_accepted() {
        let m = CbmMask::new(0b0111_0000, 11).unwrap();
        assert_eq!(m.way_count(), 3);
        assert!(m.contains(4) && m.contains(6) && !m.contains(7));
        assert_eq!(m.ways().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn empty_mask_rejected() {
        assert_eq!(CbmMask::new(0, 11), Err(MaskError::Empty));
    }

    #[test]
    fn out_of_range_mask_rejected() {
        assert_eq!(
            CbmMask::new(1 << 11, 11),
            Err(MaskError::OutOfRange { ways: 11 })
        );
    }

    #[test]
    fn non_contiguous_mask_rejected() {
        assert_eq!(CbmMask::new(0b101, 11), Err(MaskError::NotContiguous));
    }

    #[test]
    fn full_mask_covers_all_ways() {
        let m = CbmMask::full(11);
        assert_eq!(m.way_count(), 11);
        assert_eq!(m.bits(), 0x7ff);
    }

    #[test]
    fn contiguous_constructor() {
        let m = CbmMask::contiguous(3, 4, 11).unwrap();
        assert_eq!(m.bits(), 0b0111_1000);
        assert!(CbmMask::contiguous(8, 4, 11).is_err());
        assert!(CbmMask::contiguous(0, 0, 11).is_err());
    }

    #[test]
    fn overlap_detection() {
        let a = CbmMask::contiguous(0, 4, 11).unwrap();
        let b = CbmMask::contiguous(3, 2, 11).unwrap();
        let c = CbmMask::contiguous(4, 2, 11).unwrap();
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
    }

    #[test]
    fn mba_levels_snap_and_clamp() {
        assert_eq!(MbaLevel::new(0).percent(), 10);
        assert_eq!(MbaLevel::new(14).percent(), 10);
        assert_eq!(MbaLevel::new(15).percent(), 20);
        assert_eq!(MbaLevel::new(95).percent(), 100);
        assert_eq!(MbaLevel::new(255).percent(), 100);
    }

    #[test]
    fn mba_steps_saturate() {
        assert_eq!(MbaLevel::MAX.step_up(), MbaLevel::MAX);
        assert_eq!(MbaLevel::MIN.step_down(), MbaLevel::MIN);
        assert_eq!(MbaLevel::new(50).step_up().percent(), 60);
        assert_eq!(MbaLevel::new(50).step_down().percent(), 40);
    }

    #[test]
    fn mba_all_levels() {
        let all: Vec<u8> = MbaLevel::all().map(|l| l.percent()).collect();
        assert_eq!(all, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn mba_fraction() {
        assert!((MbaLevel::new(30).fraction() - 0.3).abs() < 1e-12);
    }
}
