//! A commodity-server simulator for the CoPart reproduction.
//!
//! The original CoPart prototype (EuroSys '19) ran on an Intel Xeon Gold
//! 6130 with Resource Director Technology: Cache Allocation Technology
//! (CAT) partitions the 11-way, 22 MB LLC by *ways* across classes of
//! service (CLOSes), and Memory Bandwidth Allocation (MBA) throttles the
//! L2↔LLC traffic of each CLOS in 10 % steps. CoPart itself only ever
//! observes three per-application counters (instructions, LLC accesses,
//! LLC misses) and actuates CAT way masks and MBA levels — so a simulator
//! that models exactly that surface lets the controller run unmodified.
//!
//! This crate provides that simulator:
//!
//! * [`MachineConfig`] — topology and timing constants, defaulting to the
//!   paper's testbed (Table 1),
//! * [`cache::SampledCache`] — a way-partitioned, set-sampled LRU LLC with
//!   true CAT allocation semantics (way masks restrict *victim selection*,
//!   hits are served from any way),
//! * [`trace`] — synthetic address-trace generators (working-set loops,
//!   streams, uniform and Zipf mixes) used to model application memory
//!   behaviour,
//! * [`bandwidth`] — an MBA-throttled, max–min fair memory-bus contention
//!   model,
//! * [`timing`] — the per-window analytic timing model that converts miss
//!   ratios and achieved bandwidth into instructions per second, and
//! * [`Machine`] — the composed server: CLOS table, consolidated
//!   applications, per-application PMCs, and a `tick`-driven clock.
//!
//! # Fidelity and scaling
//!
//! The LLC is simulated at a configurable `1/scale` of its true size (both
//! sets and application footprints are scaled together), which preserves
//! reuse distances and therefore miss ratios — the standard set-sampling
//! argument. A regression test compares a scaled run against a full-size
//! run on a small configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod cache;
mod config;
mod machine;
mod resources;
pub mod timing;
pub mod trace;

pub use config::MachineConfig;
pub use machine::{
    AppHandle, AppSpec, Machine, MachineSnapshot, SimAppSnapshot, SimError, WindowReport,
};
pub use resources::{CbmMask, ClosId, MaskError, MbaLevel, ResourceKind};
