//! Machine topology and model constants.

use crate::MbaLevel;

/// Topology, timing, and model constants of the simulated server.
///
/// [`MachineConfig::xeon_gold_6130`] reproduces the paper's testbed
/// (Table 1): 16 cores at 2.1 GHz, a shared 22 MB 11-way LLC, two DDR4
/// DIMMs providing ~28 GB/s, and MBA levels 10–100 % in steps of 10.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of physical cores (Hyper-Threading disabled, as in §3.1).
    pub n_cores: u32,
    /// Core clock frequency in Hz (Turbo Boost disabled, as in §3.1).
    pub freq_hz: f64,
    /// Number of LLC ways available for CAT partitioning.
    pub llc_ways: u32,
    /// Capacity of a single LLC way in bytes.
    pub llc_way_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Total memory bandwidth of the machine in bytes/second
    /// (empirically ~28 GB/s on the testbed, measured with STREAM).
    pub mem_bw_bytes_per_sec: f64,
    /// Unthrottled per-core L2↔LLC link bandwidth in bytes/second. MBA
    /// throttles a fraction of this per core.
    pub per_core_link_bw: f64,
    /// Unloaded memory access latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Strength of the latency inflation MBA throttling imposes on
    /// latency-bound applications (see [`MachineConfig::mba_latency_factor`]).
    pub throttle_latency_coeff: f64,
    /// Set-sampling scale factor: the simulated LLC has `1/scale` of the
    /// true sets and application footprints are scaled to match,
    /// preserving reuse distances and miss ratios.
    pub scale: u32,
    /// Maximum number of sampled accesses simulated per application per
    /// window; bounds simulation cost without changing steady-state miss
    /// ratios.
    pub window_sample_budget: u32,
    /// Seed for all stochastic trace generation; runs are reproducible.
    pub seed: u64,
    /// Enable a next-line hardware prefetcher: every demand miss also
    /// fills the following line. Off by default — the calibrated workload
    /// models fold average prefetching benefit into their timing
    /// constants; this knob exists for ablation studies.
    pub prefetch_next_line: bool,
}

impl MachineConfig {
    /// The paper's testbed (Table 1), at a 1/64 cache-sampling scale.
    pub fn xeon_gold_6130() -> MachineConfig {
        MachineConfig {
            n_cores: 16,
            freq_hz: 2.1e9,
            llc_ways: 11,
            llc_way_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            mem_bw_bytes_per_sec: 28.0e9,
            per_core_link_bw: 12.0e9,
            mem_latency_ns: 80.0,
            throttle_latency_coeff: 0.12,
            scale: 64,
            window_sample_budget: 32_768,
            seed: 0xC0_9A27,
            prefetch_next_line: false,
        }
    }

    /// A deliberately tiny machine for fast unit tests: 4 cores, 4 ways of
    /// 64 KiB, unscaled.
    pub fn tiny_test() -> MachineConfig {
        MachineConfig {
            n_cores: 4,
            freq_hz: 1.0e9,
            llc_ways: 4,
            llc_way_bytes: 64 * 1024,
            line_bytes: 64,
            mem_bw_bytes_per_sec: 8.0e9,
            per_core_link_bw: 6.0e9,
            mem_latency_ns: 80.0,
            throttle_latency_coeff: 0.12,
            scale: 1,
            window_sample_budget: 16_384,
            seed: 7,
            prefetch_next_line: false,
        }
    }

    /// True number of LLC sets (`way_bytes / line_bytes`).
    pub fn true_sets(&self) -> u64 {
        self.llc_way_bytes / self.line_bytes
    }

    /// Number of *simulated* sets after set sampling.
    pub fn sim_sets(&self) -> u64 {
        (self.true_sets() / u64::from(self.scale)).max(1)
    }

    /// Total LLC capacity in bytes.
    pub fn llc_bytes(&self) -> u64 {
        self.llc_way_bytes * u64::from(self.llc_ways)
    }

    /// Fraction of the per-core link bandwidth an MBA level permits.
    ///
    /// Intel documents MBA as *approximate and non-linear*; a linear map
    /// is the simulator's default and matches the testbed closely enough
    /// for the controller, which only ever steps levels up or down.
    pub fn mba_bandwidth_fraction(&self, level: MbaLevel) -> f64 {
        level.fraction()
    }

    /// Memory-latency inflation factor imposed by MBA throttling.
    ///
    /// MBA inserts delays between L2→LLC requests, so even an application
    /// whose *bandwidth* fits under the throttled cap observes higher
    /// effective memory latency when throttled hard. Latency-bound
    /// applications (low memory-level parallelism) feel this strongly;
    /// bandwidth-bound streamers are dominated by the cap instead. At
    /// level 100 the factor is exactly 1.
    pub fn mba_latency_factor(&self, level: MbaLevel) -> f64 {
        let f = self.mba_bandwidth_fraction(level);
        1.0 + self.throttle_latency_coeff * (1.0 - f) / f
    }

    /// Per-application bandwidth cap in bytes/second for `cores` cores at
    /// the given MBA level.
    pub fn mba_bandwidth_cap(&self, cores: u32, level: MbaLevel) -> f64 {
        self.mba_bandwidth_fraction(level) * f64::from(cores) * self.per_core_link_bw
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a nonsensical configuration (zero cores/ways, a way
    /// smaller than a line, or a scale larger than the set count); these
    /// are construction-time programming errors, not runtime conditions.
    pub fn assert_valid(&self) {
        assert!(self.n_cores > 0, "machine needs at least one core");
        assert!(
            self.llc_ways >= 1 && self.llc_ways <= 31,
            "way count out of range"
        );
        assert!(
            self.llc_way_bytes >= self.line_bytes,
            "a way must hold at least one line"
        );
        assert!(
            u64::from(self.scale) <= self.true_sets(),
            "scale exceeds set count"
        );
        assert!(self.freq_hz > 0.0 && self.mem_bw_bytes_per_sec > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_geometry_matches_table_1() {
        let cfg = MachineConfig::xeon_gold_6130();
        cfg.assert_valid();
        assert_eq!(cfg.n_cores, 16);
        assert_eq!(cfg.llc_ways, 11);
        assert_eq!(cfg.llc_bytes(), 22 * 1024 * 1024);
        assert_eq!(cfg.true_sets(), 32_768);
        assert_eq!(cfg.sim_sets(), 512);
    }

    #[test]
    fn mba_cap_scales_with_cores_and_level() {
        let cfg = MachineConfig::xeon_gold_6130();
        let full = cfg.mba_bandwidth_cap(4, MbaLevel::MAX);
        let half = cfg.mba_bandwidth_cap(4, MbaLevel::new(50));
        assert!((full - 48.0e9).abs() < 1.0);
        assert!((half / full - 0.5).abs() < 1e-12);
        assert!((cfg.mba_bandwidth_cap(8, MbaLevel::MAX) / full - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_factor_is_one_unthrottled_and_grows() {
        let cfg = MachineConfig::xeon_gold_6130();
        assert!((cfg.mba_latency_factor(MbaLevel::MAX) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for level in MbaLevel::all() {
            let f = cfg.mba_latency_factor(level);
            if prev > 0.0 {
                assert!(f < prev, "latency factor must fall as level rises");
            }
            prev = f;
        }
        assert!(cfg.mba_latency_factor(MbaLevel::MIN) > 2.0);
    }

    #[test]
    fn tiny_config_is_valid_and_unscaled() {
        let cfg = MachineConfig::tiny_test();
        cfg.assert_valid();
        assert_eq!(cfg.sim_sets(), cfg.true_sets());
    }
}
