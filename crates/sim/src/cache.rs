//! Way-partitioned, set-sampled LRU last-level cache with CAT semantics.
//!
//! Intel Cache Allocation Technology partitions the LLC by *ways*: the
//! capacity bitmask of a CLOS restricts which ways new lines may be
//! **allocated** into, while lookups are served from any way. Overlapping
//! masks share ways. This module implements exactly those semantics over a
//! classic set-associative LRU cache.
//!
//! The cache is simulated at a reduced set count (set sampling; see the
//! crate docs): miss *ratios* are preserved as long as application
//! footprints are scaled by the same factor, which
//! [`crate::trace::AccessPattern::scaled`] does.

use crate::{CbmMask, ClosId};

/// Geometry of the simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of simulated sets (after sampling).
    pub sets: u64,
    /// Associativity (CAT-partitionable ways).
    pub ways: u32,
    /// Line size in bytes; must be a power of two.
    pub line_bytes: u64,
}

/// The outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit in the LLC.
    pub hit: bool,
    /// Whether the access evicted a dirty line (memory writeback traffic).
    pub writeback: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    lru: u64,
    owner: ClosId,
    valid: bool,
    dirty: bool,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    lru: 0,
    owner: ClosId(0),
    valid: false,
    dirty: false,
};

/// One valid line in a [`CacheSnapshot`], addressed by its flat index
/// into the `sets × ways` line array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLineSnapshot {
    /// Flat index (`set * ways + way`) of the line.
    pub index: u64,
    /// The line's tag.
    pub tag: u64,
    /// LRU stamp (value of the access clock when last touched).
    pub lru: u64,
    /// Raw CLOS id of the last toucher.
    pub owner: u16,
    /// Whether the line holds unwritten-back data.
    pub dirty: bool,
}

/// Full content state of a [`SampledCache`]: the access clock and every
/// valid line. Invalid lines are implicit, keeping snapshots of a cold or
/// partially-warm cache compact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// The access clock (monotone LRU timestamp source).
    pub clock: u64,
    /// Every valid line, in flat-index order.
    pub lines: Vec<CacheLineSnapshot>,
}

/// A way-partitioned set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct SampledCache {
    cfg: CacheConfig,
    /// `sets × ways` lines, row-major by set.
    lines: Vec<Line>,
    line_shift: u32,
    clock: u64,
}

impl SampledCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (zero sets/ways or a non-power-of-
    /// two line size); geometry comes from [`crate::MachineConfig`] and is
    /// a programming error if invalid.
    pub fn new(cfg: CacheConfig) -> SampledCache {
        assert!(cfg.sets > 0 && cfg.ways > 0, "degenerate cache geometry");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let n = usize::try_from(cfg.sets).expect("set count fits usize") * cfg.ways as usize;
        SampledCache {
            cfg,
            lines: vec![INVALID_LINE; n],
            line_shift: cfg.line_bytes.trailing_zeros(),
            clock: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Performs one access on behalf of `clos`, whose CAT mask is `mask`.
    ///
    /// A hit is served from any way; on a miss the victim is chosen among
    /// the ways permitted by `mask` (invalid first, then least recently
    /// used), matching CAT allocation semantics.
    pub fn access(
        &mut self,
        clos: ClosId,
        mask: CbmMask,
        addr: u64,
        is_write: bool,
    ) -> AccessOutcome {
        self.clock += 1;
        let line_addr = addr >> self.line_shift;
        let set = (line_addr % self.cfg.sets) as usize;
        let tag = line_addr / self.cfg.sets;
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];

        // Lookup across all ways (hits are not restricted by the mask).
        for line in set_lines.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.clock;
                line.dirty |= is_write;
                line.owner = clos;
                return AccessOutcome {
                    hit: true,
                    writeback: false,
                };
            }
        }

        // Miss: pick a victim among the permitted ways. CbmMask guarantees
        // at least one permitted way exists.
        let victim_way = {
            let mut choice: Option<usize> = None;
            for w in 0..ways {
                if !mask.contains(w as u32) {
                    continue;
                }
                if !set_lines[w].valid {
                    choice = Some(w);
                    break;
                }
                match choice {
                    None => choice = Some(w),
                    Some(c) => {
                        if set_lines[w].lru < set_lines[c].lru {
                            choice = Some(w);
                        }
                    }
                }
            }
            choice.expect("CAT mask is non-empty by construction")
        };

        let victim = &mut set_lines[victim_way];
        let writeback = victim.valid && victim.dirty;
        *victim = Line {
            tag,
            lru: self.clock,
            owner: clos,
            valid: true,
            dirty: is_write,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Installs `addr`'s line on behalf of `clos` if it is absent — a
    /// prefetch. Returns whether a fill happened (prefetches that hit an
    /// already-resident line are free) and whether a dirty victim was
    /// written back. The line is installed *least*-recently-used rather
    /// than most, the usual conservative prefetch insertion policy, so a
    /// useless prefetch is evicted first.
    pub fn prefetch(&mut self, clos: ClosId, mask: CbmMask, addr: u64) -> AccessOutcome {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr % self.cfg.sets) as usize;
        let tag = line_addr / self.cfg.sets;
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];
        if set_lines.iter().any(|l| l.valid && l.tag == tag) {
            return AccessOutcome {
                hit: true,
                writeback: false,
            };
        }
        // Victim selection identical to a demand miss.
        let mut choice: Option<usize> = None;
        for w in 0..ways {
            if !mask.contains(w as u32) {
                continue;
            }
            if !set_lines[w].valid {
                choice = Some(w);
                break;
            }
            match choice {
                None => choice = Some(w),
                Some(c) => {
                    if set_lines[w].lru < set_lines[c].lru {
                        choice = Some(w);
                    }
                }
            }
        }
        let victim_way = choice.expect("CAT mask is non-empty by construction");
        let victim = &mut set_lines[victim_way];
        let writeback = victim.valid && victim.dirty;
        // LRU-position insertion: stamp with the victim's old recency so a
        // never-used prefetch leaves first.
        let lru = victim.lru;
        *victim = Line {
            tag,
            lru,
            owner: clos,
            valid: true,
            dirty: false,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Number of valid lines currently owned by `clos` (last toucher),
    /// emulating RDT's `llc_occupancy` monitoring event.
    pub fn occupancy_lines(&self, clos: ClosId) -> u64 {
        self.lines
            .iter()
            .filter(|l| l.valid && l.owner == clos)
            .count() as u64
    }

    /// Invalidate every line (e.g., between experiments). Dirty lines are
    /// dropped without writeback accounting.
    pub fn flush(&mut self) {
        self.lines.fill(INVALID_LINE);
    }

    /// Captures the full content state (clock + every valid line).
    pub fn snapshot(&self) -> CacheSnapshot {
        let lines = self
            .lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid)
            .map(|(i, l)| CacheLineSnapshot {
                index: i as u64,
                tag: l.tag,
                lru: l.lru,
                owner: l.owner.0,
                dirty: l.dirty,
            })
            .collect();
        CacheSnapshot {
            clock: self.clock,
            lines,
        }
    }

    /// Restores content state captured from a cache of the same geometry.
    ///
    /// # Panics
    ///
    /// Panics if any line index is out of range for this geometry — the
    /// snapshot belongs to a differently-sized cache.
    pub fn restore(&mut self, snap: &CacheSnapshot) {
        self.flush();
        self.clock = snap.clock;
        for line in &snap.lines {
            let idx = usize::try_from(line.index).expect("line index fits usize");
            assert!(idx < self.lines.len(), "snapshot line index out of range");
            self.lines[idx] = Line {
                tag: line.tag,
                lru: line.lru,
                owner: ClosId(line.owner),
                valid: true,
                dirty: line.dirty,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SampledCache {
        SampledCache::new(CacheConfig {
            sets: 4,
            ways: 4,
            line_bytes: 64,
        })
    }

    fn full_mask() -> CbmMask {
        CbmMask::full(4)
    }

    const C0: ClosId = ClosId(0);
    const C1: ClosId = ClosId(1);

    /// Address that maps to `set` with tag `tag` (4 sets, 64 B lines).
    fn addr(set: u64, tag: u64) -> u64 {
        (tag * 4 + set) * 64
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small();
        assert!(!c.access(C0, full_mask(), addr(0, 1), false).hit);
        assert!(c.access(C0, full_mask(), addr(0, 1), false).hit);
    }

    #[test]
    fn working_set_within_ways_all_hits_after_warmup() {
        let mut c = small();
        let m = full_mask();
        for round in 0..3 {
            for t in 0..4 {
                let out = c.access(C0, m, addr(2, t), false);
                if round > 0 {
                    assert!(out.hit, "round {round} tag {t} should hit");
                }
            }
        }
    }

    #[test]
    fn cyclic_sweep_beyond_ways_thrashes_lru() {
        // 5 tags over a 4-way set under LRU: every access misses.
        let mut c = small();
        let m = full_mask();
        let mut misses = 0;
        for _ in 0..5 {
            for t in 0..5 {
                if !c.access(C0, m, addr(1, t), false).hit {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 25, "classic LRU thrashing on a cyclic sweep");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        let m = full_mask();
        for t in 0..4 {
            c.access(C0, m, addr(0, t), false);
        }
        // Touch tags 1..3 so tag 0 is LRU, then install tag 9.
        for t in 1..4 {
            assert!(c.access(C0, m, addr(0, t), false).hit);
        }
        c.access(C0, m, addr(0, 9), false);
        assert!(!c.access(C0, m, addr(0, 0), false).hit, "tag 0 was evicted");
        assert!(c.access(C0, m, addr(0, 9), false).hit);
    }

    #[test]
    fn cat_mask_restricts_allocation_but_not_hits() {
        let mut c = small();
        let left = CbmMask::new(0b0011, 4).unwrap();
        let right = CbmMask::new(0b1100, 4).unwrap();
        // CLOS 0 fills its two permitted ways in set 0.
        c.access(C0, left, addr(0, 1), false);
        c.access(C0, left, addr(0, 2), false);
        // CLOS 1 installs into the other two ways only.
        c.access(C1, right, addr(0, 10), false);
        c.access(C1, right, addr(0, 11), false);
        c.access(C1, right, addr(0, 12), false); // Evicts within right half.
                                                 // CLOS 0's lines must have survived CLOS 1's thrashing.
        assert!(c.access(C0, left, addr(0, 1), false).hit);
        assert!(c.access(C0, left, addr(0, 2), false).hit);
        // Hits cross the partition: CLOS 0 may hit a line in the right
        // half.
        assert!(c.access(C0, left, addr(0, 12), false).hit);
    }

    #[test]
    fn one_way_mask_keeps_reusing_the_same_way() {
        let mut c = small();
        let narrow = CbmMask::new(0b0001, 4).unwrap();
        c.access(C0, narrow, addr(0, 1), false);
        c.access(C0, narrow, addr(0, 2), false); // Must evict tag 1.
        assert!(!c.access(C0, narrow, addr(0, 1), false).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let narrow = CbmMask::new(0b0001, 4).unwrap();
        c.access(C0, narrow, addr(0, 1), true); // Dirty install.
        let out = c.access(C0, narrow, addr(0, 2), false);
        assert!(!out.hit);
        assert!(out.writeback, "evicting a dirty line writes back");
        // The new line is clean; evicting it is silent.
        let out2 = c.access(C0, narrow, addr(0, 3), false);
        assert!(!out2.writeback);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = small();
        let narrow = CbmMask::new(0b0001, 4).unwrap();
        c.access(C0, narrow, addr(0, 1), false); // Clean install.
        c.access(C0, narrow, addr(0, 1), true); // Dirty on write hit.
        let out = c.access(C0, narrow, addr(0, 2), false);
        assert!(out.writeback);
    }

    #[test]
    fn occupancy_tracks_owner() {
        let mut c = small();
        let m = full_mask();
        for t in 0..3 {
            c.access(C0, m, addr(0, t), false);
        }
        c.access(C1, m, addr(1, 0), false);
        assert_eq!(c.occupancy_lines(C0), 3);
        assert_eq!(c.occupancy_lines(C1), 1);
        c.flush();
        assert_eq!(c.occupancy_lines(C0), 0);
    }

    #[test]
    fn snapshot_restore_reproduces_hits_and_occupancy() {
        let mut c = small();
        let m = full_mask();
        for t in 0..7 {
            c.access(C0, m, addr(t % 4, t), t % 2 == 0);
        }
        c.access(C1, m, addr(1, 40), true);
        let snap = c.snapshot();
        let mut restored = small();
        restored.restore(&snap);
        assert_eq!(restored.occupancy_lines(C0), c.occupancy_lines(C0));
        assert_eq!(restored.occupancy_lines(C1), c.occupancy_lines(C1));
        // Identical future behaviour, including LRU victim choice and
        // dirty-writeback accounting.
        for t in 0..20u64 {
            let a = addr(t % 4, 100 + t);
            assert_eq!(
                c.access(C0, m, a, t % 3 == 0),
                restored.access(C0, m, a, t % 3 == 0)
            );
        }
        assert_eq!(c.snapshot(), restored.snapshot());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn restore_rejects_foreign_geometry() {
        let mut big = SampledCache::new(CacheConfig {
            sets: 8,
            ways: 8,
            line_bytes: 64,
        });
        let m = CbmMask::full(8);
        for t in 0..60 {
            big.access(C0, m, t * 64, false);
        }
        let mut tiny = small();
        tiny.restore(&big.snapshot());
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        let mut c = small();
        let m = full_mask();
        for t in 0..4 {
            c.access(C0, m, addr(3, t), false);
        }
        // All four distinct tags must be resident (no premature eviction).
        for t in 0..4 {
            assert!(c.access(C0, m, addr(3, t), false).hit);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use copart_rng::XorShift64Star;

    /// A CLOS whose mask grants `k` ways can never occupy more than
    /// `k × sets` lines, no matter the access pattern (seeded random
    /// sweep over mask placements and address streams).
    #[test]
    fn occupancy_bounded_by_mask() {
        let mut rng = XorShift64Star::seed_from_u64(0x0CC_0001);
        for _ in 0..60 {
            let start = rng.gen_range(0..6u32);
            let count = rng.gen_range(1..6u32);
            if start + count > 8 {
                continue;
            }
            let sets = 16u64;
            let mut cache = SampledCache::new(CacheConfig {
                sets,
                ways: 8,
                line_bytes: 64,
            });
            let mask = CbmMask::contiguous(start, count, 8).unwrap();
            for _ in 0..rng.gen_range(1..2000usize) {
                let a = rng.gen_range(0..1_000_000u64);
                let _ = cache.access(ClosId(1), mask, a * 64, false);
            }
            assert!(cache.occupancy_lines(ClosId(1)) <= u64::from(count) * sets);
        }
    }

    /// Accesses are idempotent on the second touch: any address
    /// accessed twice in a row hits the second time.
    #[test]
    fn immediate_reuse_always_hits() {
        let mut rng = XorShift64Star::seed_from_u64(0x0CC_0002);
        for _ in 0..500 {
            let addr = rng.gen_range(0..1_000_000u64);
            let mut cache = SampledCache::new(CacheConfig {
                sets: 64,
                ways: 4,
                line_bytes: 64,
            });
            let mask = CbmMask::full(4);
            let _ = cache.access(ClosId(0), mask, addr * 64, false);
            assert!(cache.access(ClosId(0), mask, addr * 64, false).hit);
        }
    }
}

#[cfg(test)]
mod prefetch_unit_tests {
    use super::*;

    #[test]
    fn prefetch_installs_absent_lines_and_skips_resident_ones() {
        let mut c = SampledCache::new(CacheConfig {
            sets: 4,
            ways: 4,
            line_bytes: 64,
        });
        let m = CbmMask::full(4);
        let out = c.prefetch(ClosId(0), m, 0);
        assert!(!out.hit, "first prefetch fills");
        assert!(c.access(ClosId(0), m, 0, false).hit, "prefetched line hits");
        assert!(c.prefetch(ClosId(0), m, 0).hit, "re-prefetch is free");
    }

    #[test]
    fn prefetched_lines_are_evicted_before_demand_lines() {
        let mut c = SampledCache::new(CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 64,
        });
        let m = CbmMask::full(2);
        c.access(ClosId(0), m, 0, false); // Demand line, tag 0.
        c.prefetch(ClosId(0), m, 64); // Prefetch line, tag 1 (LRU insert).
        c.access(ClosId(0), m, 128, false); // Fill: must evict the prefetch.
        assert!(c.access(ClosId(0), m, 0, false).hit, "demand line survived");
        assert!(
            !c.access(ClosId(0), m, 64, false).hit,
            "prefetch was victim"
        );
    }

    #[test]
    fn prefetch_respects_cat_masks() {
        let mut c = SampledCache::new(CacheConfig {
            sets: 1,
            ways: 4,
            line_bytes: 64,
        });
        let left = CbmMask::new(0b0011, 4).unwrap();
        let right = CbmMask::new(0b1100, 4).unwrap();
        // CLOS 1 owns the right half.
        c.access(ClosId(1), right, 64 * 10, false);
        c.access(ClosId(1), right, 64 * 11, false);
        // CLOS 0 prefetches heavily into its left half only.
        for t in 0..8 {
            c.prefetch(ClosId(0), left, 64 * t);
        }
        assert!(c.access(ClosId(1), right, 64 * 10, false).hit);
        assert!(c.access(ClosId(1), right, 64 * 11, false).hit);
    }

    #[test]
    fn prefetch_writeback_of_dirty_victim_is_reported() {
        let mut c = SampledCache::new(CacheConfig {
            sets: 1,
            ways: 1,
            line_bytes: 64,
        });
        let m = CbmMask::full(1);
        c.access(ClosId(0), m, 0, true); // Dirty.
        let out = c.prefetch(ClosId(0), m, 64);
        assert!(!out.hit);
        assert!(out.writeback, "dirty victim must be written back");
    }
}
