//! The fleet determinism contract: one configuration, one byte stream —
//! regardless of how many workers drive the node phase.
//!
//! Everything cross-node is decided serially; the parallel phase only
//! steps disjoint per-node state and reassembles in node-id order. These
//! tests pin that down by running the same fleet at `--jobs 1` and
//! `--jobs 8` inside one process and comparing every output byte:
//! trace, metrics document, and migration tickets.

use copart_fleet::{check_fleet_trace, run_fleet, FleetConfig};

/// One test drives both job counts: `set_jobs` is process-global, so
/// sequencing inside a single `#[test]` keeps the comparison honest.
#[test]
fn fleet_outputs_are_byte_identical_across_jobs() {
    let mut cfg = FleetConfig::new(6, 30, 97);
    cfg.horizon = 24;
    // Make rebalancing near-certain so the migration path is part of
    // what the comparison covers.
    cfg.rebalance.threshold = 0.005;
    cfg.rebalance.patience = 1;
    cfg.rebalance.cooldown = 2;

    copart_parallel::set_jobs(Some(1));
    let serial = run_fleet(&cfg).unwrap();
    copart_parallel::set_jobs(Some(8));
    let parallel = run_fleet(&cfg).unwrap();
    copart_parallel::set_jobs(None);

    assert_eq!(
        serial.trace, parallel.trace,
        "trace must not depend on jobs"
    );
    assert_eq!(serial.metrics_json, parallel.metrics_json);
    assert_eq!(serial.tickets, parallel.tickets);

    let stats = check_fleet_trace(&serial.trace).unwrap();
    assert_eq!(stats.epochs, 24);
    assert!(stats.placements > 0);
    assert!(
        stats.migrations > 0,
        "the comparison must cover the migration path"
    );

    // The faulted variant must hold the same contract: per-node fault
    // streams are seeded by node id, never by worker interleaving.
    let mut faulted = cfg.clone();
    faulted.faults = Some(
        copart_faults::ScopedFaultPlan::parse("seed=5,dropout=1/41,write=0.02,nodes=every/2")
            .unwrap(),
    );
    copart_parallel::set_jobs(Some(1));
    let serial = run_fleet(&faulted).unwrap();
    copart_parallel::set_jobs(Some(8));
    let parallel = run_fleet(&faulted).unwrap();
    copart_parallel::set_jobs(None);
    assert_eq!(serial.trace, parallel.trace, "faulted trace must match too");
    assert_eq!(serial.metrics_json, parallel.metrics_json);
    check_fleet_trace(&serial.trace).unwrap();
}
