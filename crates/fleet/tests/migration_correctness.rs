//! Migration correctness: what leaves the source is what the audit
//! trail says, and arriving via migration is indistinguishable from
//! having been admitted directly.
//!
//! Two layers:
//!
//! * At the [`NodeRuntime`] seam, a hand-driven migration (snapshot →
//!   ticket → evict → admit at the destination) must produce a
//!   destination trace byte-identical to a reference node that admitted
//!   the same tenant directly at the same point in its history, and the
//!   ticket must round-trip the tenant's controller state bit-exactly.
//! * At the fleet level, every migration event's digest must match the
//!   recomputed digest of the ticket in the audit trail, and the ticket
//!   must survive a JSONL round trip unchanged.

use copart_core::runtime::RuntimeConfig;
use copart_core::{CoPartParams, NodeRuntime, WaysBudget};
use copart_fleet::{run_fleet, FleetConfig, FleetEvent, MigrationTicket};
use copart_rdt::SimBackend;
use copart_sim::{Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::Benchmark;

fn node_cfg(machine: &MachineConfig, seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        params: CoPartParams {
            seed,
            ..CoPartParams::default()
        },
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(machine.llc_ways),
        stream: StreamReference::compute(machine, 1),
        resilience: Default::default(),
        planner: Default::default(),
    }
}

fn launch(machine: &MachineConfig, benches: &[Benchmark], seed: u64) -> NodeRuntime<SimBackend> {
    let specs: Vec<_> = benches
        .iter()
        .map(|b| {
            let mut s = b.spec_with_cores(1);
            s.name = format!("{}-solo", b.table2().short);
            s
        })
        .collect();
    let backend = SimBackend::new(Machine::new(machine.clone()));
    NodeRuntime::launch(backend, &specs, node_cfg(machine, seed), 1).unwrap()
}

fn step_trace(node: &mut NodeRuntime<SimBackend>, periods: usize) -> Vec<String> {
    (0..periods)
        .map(|_| format!("{:?}", node.runtime_mut().run_period().unwrap()))
        .collect()
}

#[test]
fn migrated_state_is_bit_exact_and_destination_matches_direct_admission() {
    let machine = MachineConfig::tiny_test();

    // Source node: two tenants, warmed up for a few periods.
    let mut source = launch(
        &machine,
        &[Benchmark::WaterNsquared, Benchmark::Swaptions],
        7,
    );
    step_trace(&mut source, 6);
    let victim = source.runtime().apps()[0].group;
    let state = source
        .snapshot()
        .apps
        .into_iter()
        .find(|a| a.group == victim.0)
        .expect("victim is under management");

    // The wire format preserves the captured state bit-exactly.
    let ticket = MigrationTicket {
        app: 0,
        epoch: 6,
        from: 0,
        to: 1,
        state: state.clone(),
    };
    let back = MigrationTicket::parse_json_line(&ticket.to_json_line()).unwrap();
    assert_eq!(back.state, state, "codec round trip must be lossless");
    assert_eq!(
        back.state.last_ips.to_bits(),
        state.last_ips.to_bits(),
        "floats travel as bits, not decimal approximations"
    );
    assert_eq!(back.digest(), ticket.digest());
    source.evict(victim).unwrap();

    // Destination node receiving the migrated tenant through the normal
    // admission path...
    let mut dest = launch(&machine, &[Benchmark::Ep], 9);
    step_trace(&mut dest, 6);
    let mut spec = Benchmark::WaterNsquared.spec_with_cores(1);
    spec.name = "WN-moved".to_string();
    dest.admit(spec, "WN-moved".to_string()).unwrap();
    let migrated_trace = step_trace(&mut dest, 8);

    // ...is byte-identical to a reference node that admitted the tenant
    // directly at the same point in an identical history.
    let mut reference = launch(&machine, &[Benchmark::Ep], 9);
    step_trace(&mut reference, 6);
    let mut spec = Benchmark::WaterNsquared.spec_with_cores(1);
    spec.name = "WN-moved".to_string();
    reference.admit(spec, "WN-moved".to_string()).unwrap();
    let direct_trace = step_trace(&mut reference, 8);

    assert_eq!(
        migrated_trace, direct_trace,
        "migration delivery must be indistinguishable from direct admission"
    );

    // The source keeps running consistently with one tenant gone.
    let record = source.runtime_mut().run_period().unwrap();
    assert_eq!(record.apps.len(), 1);
}

/// PR 10 bugfix pin: node snapshots carry their *true* derived seeds
/// end-to-end. The master seed sits above 2⁵³, so every derived value
/// (and the master itself) would be corrupted by the old JSON-number
/// encoding — the hex seed codec is load-bearing here.
#[test]
fn state_dir_snapshots_carry_true_derived_seeds_beyond_2_pow_53() {
    let master = (1u64 << 53) + 4099;
    let dir = std::env::temp_dir().join(format!("copart-fleet-big-seed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FleetConfig::new(3, 8, master);
    cfg.horizon = 12;
    cfg.state_dir = Some(dir.clone());
    let out = run_fleet(&cfg).unwrap();
    assert!(out.snapshots_written > 0, "at least one node stayed live");
    for id in 0..3u64 {
        let node_dir = dir.join(format!("node-{id:04}"));
        if !node_dir.exists() {
            continue;
        }
        let (doc, _) = copart_persist::latest_good(&node_dir)
            .unwrap()
            .expect("live node has a snapshot");
        let expect = copart_rng::derive_seed(master, id);
        assert_eq!(
            doc.meta.seed, expect,
            "node {id} must persist its derived seed bit-exactly"
        );
        assert_ne!(doc.meta.seed, master, "no master-seed workaround");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_migrations_carry_verifiable_tickets() {
    let mut cfg = FleetConfig::new(6, 30, 97);
    cfg.horizon = 24;
    // Aggressive rebalancing so churn reliably triggers migrations.
    cfg.rebalance.threshold = 0.005;
    cfg.rebalance.patience = 1;
    cfg.rebalance.cooldown = 2;
    let out = run_fleet(&cfg).unwrap();
    assert!(
        out.aggregator.migrations >= 1,
        "expected at least one migration, got metrics {}",
        out.metrics_json
    );
    assert_eq!(out.tickets.len() as u64, out.aggregator.migrations);

    // Pair every migration event with its audit ticket, in order.
    let events: Vec<FleetEvent> = out
        .trace
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| FleetEvent::parse_json_line(l).unwrap())
        .collect();
    let migrations: Vec<&FleetEvent> = events
        .iter()
        .filter(|e| matches!(e, FleetEvent::Migration { .. }))
        .collect();
    assert_eq!(migrations.len(), out.tickets.len());
    for (event, line) in migrations.iter().zip(&out.tickets) {
        let ticket = MigrationTicket::parse_json_line(line).unwrap();
        let FleetEvent::Migration {
            app,
            from,
            to,
            digest,
            epoch,
        } = event
        else {
            unreachable!("filtered to migrations");
        };
        assert_eq!(ticket.app, *app);
        assert_eq!(ticket.from, *from);
        assert_eq!(ticket.to, *to);
        assert_eq!(ticket.epoch, *epoch);
        assert_eq!(
            ticket.digest(),
            *digest,
            "trace digest must match the ticket that actually moved"
        );
        assert_eq!(
            MigrationTicket::parse_json_line(&ticket.to_json_line()).unwrap(),
            ticket,
            "ticket round trip is lossless"
        );
    }
}
