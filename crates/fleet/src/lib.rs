//! Multi-node fleet layer for the CoPart reproduction.
//!
//! The paper's controller manages one 16-core server. This crate
//! consolidates *fleets*: `N` per-node [`copart_core::NodeRuntime`]s
//! over `N` simulated machines, coordinated by one deterministic
//! controller (ROADMAP north-star item 1):
//!
//! * [`placement`] — the admission engine: bin-packing by predicted
//!   §3.3 sensitivity class plus node occupancy, with a pure decision
//!   kernel the `fleet-placement-deterministic` oracle replays;
//! * [`controller`] — the epoch loop: serial decisions (departures,
//!   rebalancing, placement) then a parallel node phase over the
//!   `copart-parallel` pool, byte-identical at any `--jobs` setting;
//! * [`migration`] — the rebalancer's wire format: one tenant's
//!   controller state, bit-exact through the PR-8 snapshot codec;
//! * [`trace`] — the JSONL fleet trace and the structural checker
//!   behind `copart trace-check --fleet`.
//!
//! Fleet-wide metric aggregation lives in
//! [`copart_telemetry::FleetAggregator`]; the zipf-skewed tenant churn
//! tape in [`copart_workloads::fleet`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod migration;
pub mod placement;
pub mod trace;

pub use controller::{run_fleet, FleetBackend, FleetConfig, FleetOutcome, RebalanceConfig};
pub use migration::MigrationTicket;
pub use placement::{placement_log, Demand, Occupancy, PlacementEngine};
pub use trace::{check_fleet_trace, FleetEvent, FleetTraceStats};
