//! The admission/placement engine: sensitivity-class-aware bin packing.
//!
//! Placement never simulates. It scores nodes from two integers the
//! fleet controller maintains anyway — how many tenants a node hosts
//! and how many of them contend for each resource class — using the
//! paper's §3.3 sensitivity categories as the *predicted* class of an
//! incoming tenant (LFOC+ argues the class is the right assignment
//! unit). That makes every decision a pure function of the committed
//! occupancy history, which is what the `fleet-placement-deterministic`
//! oracle pins down: same seed + arrival tape ⇒ byte-identical
//! placement log, independent of `--jobs`.
//!
//! Scoring: each resident costs `APP_COST`; each resident already
//! hungry for a resource the candidate also wants costs
//! `CONFLICT_COST` more. Lowest score wins; ties break toward the
//! lowest node id. Packing therefore prefers emptier nodes first and,
//! between equally-full nodes, the one whose residents contend least
//! with the newcomer — LLC-hungry tenants spread away from each other,
//! bandwidth-hungry tenants likewise.

use copart_workloads::{Benchmark, Category};

/// Score per resident already on a node (fill cost).
const APP_COST: u64 = 100;

/// Extra score per resident contending for a resource class the
/// candidate also wants.
const CONFLICT_COST: u64 = 40;

/// The predicted resource appetite of a tenant: which of the two
/// partitionable resources (LLC ways, memory bandwidth) it is
/// sensitive to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand {
    /// Wants LLC capacity (category C or LM).
    pub llc: bool,
    /// Wants memory bandwidth (category B or LM).
    pub bw: bool,
}

impl Demand {
    /// The demand predicted from a benchmark's §3.3 category.
    pub fn of(bench: Benchmark) -> Demand {
        match bench.category() {
            Category::LlcSensitive => Demand {
                llc: true,
                bw: false,
            },
            Category::BwSensitive => Demand {
                llc: false,
                bw: true,
            },
            Category::Both => Demand {
                llc: true,
                bw: true,
            },
            Category::Insensitive => Demand {
                llc: false,
                bw: false,
            },
        }
    }
}

/// One node's committed occupancy, as the engine sees it (placed plus
/// in-flight admissions the controller has committed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Occupancy {
    /// Tenants committed to the node.
    pub apps: u32,
    /// Of those, how many want LLC capacity.
    pub llc: u32,
    /// Of those, how many want memory bandwidth.
    pub bw: u32,
}

/// The fleet's bin-packing state: per-node occupancy plus the uniform
/// per-node capacity.
#[derive(Debug, Clone)]
pub struct PlacementEngine {
    capacity: u32,
    nodes: Vec<Occupancy>,
}

impl PlacementEngine {
    /// An empty fleet of `nodes` nodes taking up to `capacity` tenants
    /// each.
    pub fn new(nodes: usize, capacity: u32) -> PlacementEngine {
        PlacementEngine {
            capacity,
            nodes: vec![Occupancy::default(); nodes],
        }
    }

    /// Per-node tenant capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// A node's committed occupancy.
    pub fn occupancy(&self, node: usize) -> Occupancy {
        self.nodes[node]
    }

    fn score(&self, node: usize, d: Demand) -> u64 {
        let o = self.nodes[node];
        let mut s = u64::from(o.apps) * APP_COST;
        if d.llc {
            s += u64::from(o.llc) * CONFLICT_COST;
        }
        if d.bw {
            s += u64::from(o.bw) * CONFLICT_COST;
        }
        s
    }

    /// Picks the node for a tenant with demand `d`: lowest score among
    /// non-full nodes, ties to the lowest id. `None` when the fleet is
    /// full.
    pub fn place(&self, d: Demand) -> Option<usize> {
        self.place_excluding(d, usize::MAX)
    }

    /// [`PlacementEngine::place`] with one node barred — the migration
    /// path must not bounce a tenant back onto its source.
    pub fn place_excluding(&self, d: Demand, barred: usize) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(id, o)| *id != barred && o.apps < self.capacity)
            .min_by_key(|(id, _)| (self.score(*id, d), *id))
            .map(|(id, _)| id)
    }

    /// Commits a tenant to a node (after a successful [`place`]).
    ///
    /// # Panics
    ///
    /// Panics when the node is already full — callers commit only what
    /// `place` returned.
    ///
    /// [`place`]: PlacementEngine::place
    pub fn commit(&mut self, node: usize, d: Demand) {
        let o = &mut self.nodes[node];
        assert!(o.apps < self.capacity, "commit past capacity");
        o.apps += 1;
        o.llc += u32::from(d.llc);
        o.bw += u32::from(d.bw);
    }

    /// Releases a tenant's commitment (departure, migration source, or
    /// a rolled-back admission).
    ///
    /// # Panics
    ///
    /// Panics when the node has nothing to release.
    pub fn release(&mut self, node: usize, d: Demand) {
        let o = &mut self.nodes[node];
        assert!(o.apps > 0, "release from an empty node");
        o.apps -= 1;
        o.llc -= u32::from(d.llc);
        o.bw -= u32::from(d.bw);
    }
}

/// Replays a churn tape through the placement engine alone — no
/// simulation, no rebalancing — and returns the decision log, one line
/// per decision. This is the pure kernel the
/// `fleet-placement-deterministic` check oracle replays: determinism
/// here is a precondition for determinism of the full fleet run.
///
/// Lifetimes count placed epochs, as in the real controller; deferred
/// tenants retry FIFO each epoch ahead of new arrivals.
pub fn placement_log(
    n_nodes: usize,
    capacity: u32,
    n_apps: u64,
    horizon: u64,
    seed: u64,
) -> Vec<String> {
    use std::collections::VecDeque;

    let tape = copart_workloads::fleet::churn_tape(n_apps, horizon, seed);
    let mut engine = PlacementEngine::new(n_nodes, capacity);
    let mut log = Vec::new();
    // (app, bench, remaining) per placed tenant, keyed by node.
    let mut placed: Vec<Vec<(u64, Benchmark, u64)>> = vec![Vec::new(); n_nodes];
    let mut deferred: VecDeque<(u64, Benchmark, u64)> = VecDeque::new();
    let mut next_arrival = 0usize;

    for epoch in 0..horizon {
        // Departures first: tenants whose residence expired last epoch.
        for (node, residents) in placed.iter_mut().enumerate() {
            let mut i = 0;
            while i < residents.len() {
                if residents[i].2 == 0 {
                    let (app, bench, _) = residents.remove(i);
                    engine.release(node, Demand::of(bench));
                    log.push(format!("epoch={epoch} depart app={app} node={node}"));
                } else {
                    i += 1;
                }
            }
        }
        // Placement: deferred FIFO first, then this epoch's arrivals.
        let mut queue: Vec<(u64, Benchmark, u64)> = deferred.drain(..).collect();
        while next_arrival < tape.len() && tape[next_arrival].arrive == epoch {
            let a = &tape[next_arrival];
            queue.push((a.app, a.bench, a.lifetime));
            next_arrival += 1;
        }
        for (app, bench, lifetime) in queue {
            let d = Demand::of(bench);
            match engine.place(d) {
                Some(node) => {
                    engine.commit(node, d);
                    placed[node].push((app, bench, lifetime));
                    log.push(format!(
                        "epoch={epoch} place app={app} bench={} node={node}",
                        bench.table2().short
                    ));
                }
                None => {
                    deferred.push_back((app, bench, lifetime));
                    log.push(format!("epoch={epoch} defer app={app}"));
                }
            }
        }
        // Residence advances one epoch for every placed tenant.
        for residents in &mut placed {
            for r in residents {
                r.2 -= 1;
            }
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_prefers_empty_then_least_conflicting() {
        let mut e = PlacementEngine::new(3, 4);
        let llc = Demand {
            llc: true,
            bw: false,
        };
        let bw = Demand {
            llc: false,
            bw: true,
        };
        assert_eq!(e.place(llc), Some(0), "empty fleet ties break to node 0");
        e.commit(0, llc);
        assert_eq!(e.place(llc), Some(1));
        e.commit(1, llc);
        // Node 2 is empty; nodes 0 and 1 host one LLC-hungry tenant each.
        assert_eq!(e.place(llc), Some(2));
        e.commit(2, bw);
        // All nodes host one tenant; an LLC-hungry newcomer avoids the
        // LLC-hungry residents on 0 and 1.
        assert_eq!(e.place(llc), Some(2));
        // A bandwidth-hungry newcomer avoids node 2 instead.
        assert_eq!(e.place(bw), Some(0));
    }

    #[test]
    fn capacity_and_exclusion_are_honored() {
        let mut e = PlacementEngine::new(2, 1);
        let d = Demand {
            llc: false,
            bw: false,
        };
        e.commit(0, d);
        assert_eq!(e.place(d), Some(1));
        assert_eq!(e.place_excluding(d, 1), None, "node 0 full, node 1 barred");
        e.commit(1, d);
        assert_eq!(e.place(d), None, "fleet full");
        e.release(0, d);
        assert_eq!(e.place(d), Some(0));
    }

    #[test]
    fn placement_log_is_deterministic() {
        let a = placement_log(8, 4, 100, 32, 42);
        let b = placement_log(8, 4, 100, 32, 42);
        assert_eq!(a, b);
        assert!(a.iter().any(|l| l.contains(" place ")));
        let c = placement_log(8, 4, 100, 32, 43);
        assert_ne!(a, c, "different seeds place differently");
    }

    #[test]
    fn placement_log_never_exceeds_capacity() {
        // Replay the log and track per-node occupancy.
        let n_nodes = 4;
        let capacity = 3u32;
        let mut occ = vec![0i64; n_nodes];
        for line in placement_log(n_nodes, capacity, 200, 40, 7) {
            let field = |k: &str| -> Option<usize> {
                line.split_whitespace()
                    .find_map(|p| p.strip_prefix(k))
                    .map(|v| v.parse().unwrap())
            };
            if line.contains(" place ") {
                occ[field("node=").unwrap()] += 1;
            } else if line.contains(" depart ") {
                occ[field("node=").unwrap()] -= 1;
            }
            assert!(
                occ.iter().all(|&o| (0..=i64::from(capacity)).contains(&o)),
                "occupancy out of bounds after {line:?}: {occ:?}"
            );
        }
    }
}
