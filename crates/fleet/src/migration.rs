//! The migration wire format: one tenant's frozen controller state in
//! flight between nodes.
//!
//! Rebalancing hands a tenant from a hot node to a cooler one. The
//! ticket that travels is the PR-8 snapshot codec's per-application
//! record ([`copart_persist::codec::enc_app_runtime`]) wrapped in
//! routing metadata — the same bit-exact hex-float encoding the crash
//! snapshots use, so the state that leaves the source is provably the
//! state that arrives (the digest in the fleet trace's migration event
//! is the FNV-1a of this very encoding). The destination re-admits the
//! tenant through the ordinary §5.4.3 launch path — profiling restarts
//! because `IPS_full` is a per-machine quantity — and the ticket stays
//! in the audit trail as the proof of what was carried.

use copart_core::runtime::AppRuntimeSnapshot;
use copart_persist::codec::{dec_app_runtime, enc_app_runtime};
use copart_persist::store::fnv1a64;
use copart_persist::PersistError;
use copart_telemetry::Json;

/// One tenant's state in flight from `from` to `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationTicket {
    /// Fleet-unique application id.
    pub app: u64,
    /// Fleet epoch the migration was decided.
    pub epoch: u64,
    /// Source node id.
    pub from: u64,
    /// Destination node id.
    pub to: u64,
    /// The tenant's frozen controller state as captured on the source.
    pub state: AppRuntimeSnapshot,
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, PersistError> {
    match j {
        Json::Obj(members) => members
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| PersistError::Corrupt(format!("missing key {key:?}"))),
        _ => Err(PersistError::Corrupt("expected an object".to_string())),
    }
}

fn field_u64(j: &Json, key: &str) -> Result<u64, PersistError> {
    match field(j, key)? {
        Json::Num(n) => Ok(*n as u64),
        _ => Err(PersistError::Corrupt(format!("{key:?} is not a number"))),
    }
}

impl MigrationTicket {
    /// Encodes the ticket; floats travel as bit-exact hex strings.
    pub fn encode(&self) -> Json {
        Json::Obj(vec![
            ("app".to_string(), Json::Num(self.app as f64)),
            ("epoch".to_string(), Json::Num(self.epoch as f64)),
            ("from".to_string(), Json::Num(self.from as f64)),
            ("to".to_string(), Json::Num(self.to as f64)),
            ("state".to_string(), enc_app_runtime(&self.state)),
        ])
    }

    /// Decodes a ticket.
    ///
    /// # Errors
    ///
    /// Fails on missing keys or a malformed state record.
    pub fn decode(j: &Json) -> Result<MigrationTicket, PersistError> {
        Ok(MigrationTicket {
            app: field_u64(j, "app")?,
            epoch: field_u64(j, "epoch")?,
            from: field_u64(j, "from")?,
            to: field_u64(j, "to")?,
            state: dec_app_runtime(field(j, "state")?)?,
        })
    }

    /// One JSONL audit line.
    pub fn to_json_line(&self) -> String {
        self.encode().to_string()
    }

    /// Parses a JSONL audit line.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a malformed ticket.
    pub fn parse_json_line(line: &str) -> Result<MigrationTicket, PersistError> {
        let j = Json::parse(line)
            .map_err(|e| PersistError::Corrupt(format!("ticket is not JSON: {e}")))?;
        MigrationTicket::decode(&j)
    }

    /// FNV-1a digest of the encoded ticket — the value the fleet
    /// trace's migration event carries, binding the trace to the exact
    /// bytes that moved.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.to_json_line().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_core::fsm::AppState;

    fn ticket() -> MigrationTicket {
        MigrationTicket {
            app: 17,
            epoch: 9,
            from: 3,
            to: 5,
            state: AppRuntimeSnapshot {
                group: 2,
                name: "a17-WN".to_string(),
                // Deliberately awkward floats: bit-exactness is the test.
                ips_full: 1.0e9 + 1.0 / 3.0,
                weight: 1.0,
                sensor: copart_core::SensorSnapshot {
                    capacity: 8,
                    samples: Vec::new(),
                    ewma: [Some(1.5), None, None, Some(0.01)],
                },
                llc_state: AppState::Demand,
                mba_state: AppState::Supply,
                prev_ips: f64::MIN_POSITIVE,
                last_ips: 0.1 + 0.2,
                last_events: Default::default(),
            },
        }
    }

    #[test]
    fn ticket_roundtrips_bit_exactly() {
        let t = ticket();
        let line = t.to_json_line();
        let back = MigrationTicket::parse_json_line(&line).unwrap();
        assert_eq!(t, back);
        assert_eq!(
            t.state.last_ips.to_bits(),
            back.state.last_ips.to_bits(),
            "floats must survive bit-exactly"
        );
        assert_eq!(t.digest(), back.digest());
    }

    #[test]
    fn digest_tracks_state_changes() {
        let t = ticket();
        let mut u = ticket();
        u.state.last_ips = u.state.last_ips.next_up();
        assert_ne!(t.digest(), u.digest(), "one ULP must change the digest");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MigrationTicket::parse_json_line("{}").is_err());
        assert!(MigrationTicket::parse_json_line("not json").is_err());
    }
}
