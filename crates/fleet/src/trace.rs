//! The JSONL fleet trace: placement, migration, departure, and
//! per-epoch summary events, plus the structural checker behind
//! `copart trace-check --fleet`.
//!
//! The fleet trace is the controller's decision log, and — like the
//! per-node period trace — it is part of the determinism contract:
//! byte-identical across `--jobs` settings for the same configuration.
//! Every line is one JSON object with a `kind` discriminator. The
//! checker replays the lines against the fleet's lifecycle rules (a
//! tenant is placed exactly once before it departs, migrations move a
//! placed tenant between distinct live nodes, summary running-app
//! counts match the replayed membership) so a trace that drifts from
//! the controller's actual behaviour fails structurally, not just by
//! eyeball.

use std::collections::HashMap;

use copart_telemetry::Json;

/// One fleet trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// The run's configuration header (first line of every trace).
    Config {
        /// Node count.
        nodes: u64,
        /// Tenants on the churn tape.
        apps: u64,
        /// Per-node tenant capacity.
        capacity: u64,
        /// Fleet epochs driven.
        horizon: u64,
        /// Master seed.
        seed: u64,
    },
    /// A tenant was admitted onto a node.
    Placement {
        /// Fleet epoch.
        epoch: u64,
        /// Fleet-unique application id.
        app: u64,
        /// Table 2 short name of the tenant's workload.
        bench: String,
        /// Hosting node.
        node: u64,
        /// Whether this admission booted the node (first tenant).
        boot: bool,
    },
    /// A tenant could not be placed this epoch and stays queued.
    Deferred {
        /// Fleet epoch.
        epoch: u64,
        /// Fleet-unique application id.
        app: u64,
    },
    /// A tenant finished its service and left.
    Departure {
        /// Fleet epoch.
        epoch: u64,
        /// Fleet-unique application id.
        app: u64,
        /// The node it departed from.
        node: u64,
        /// Whether the departure emptied (tore down) the node.
        teardown: bool,
    },
    /// The rebalancer moved a tenant between nodes.
    Migration {
        /// Fleet epoch.
        epoch: u64,
        /// Fleet-unique application id.
        app: u64,
        /// Source node.
        from: u64,
        /// Destination node.
        to: u64,
        /// FNV-1a digest of the migration ticket that carried the state.
        digest: u64,
    },
    /// End-of-epoch fleet aggregate (cumulative counters).
    Summary {
        /// Fleet epoch.
        epoch: u64,
        /// Nodes hosting at least one tenant.
        active_nodes: u64,
        /// Tenants currently placed.
        running_apps: u64,
        /// Cumulative placements.
        placements: u64,
        /// Cumulative departures.
        departures: u64,
        /// Cumulative migrations.
        migrations: u64,
        /// p99 of per-node unfairness this epoch.
        unfairness_p99: f64,
        /// p99 of per-tenant slowdown this epoch.
        slowdown_p99: f64,
    },
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

impl FleetEvent {
    /// Renders the event as one JSONL line.
    pub fn to_json_line(&self) -> String {
        let obj = |kind: &str, mut rest: Vec<(String, Json)>| {
            let mut members = vec![("kind".to_string(), Json::Str(kind.to_string()))];
            members.append(&mut rest);
            Json::Obj(members).to_string()
        };
        match self {
            FleetEvent::Config {
                nodes,
                apps,
                capacity,
                horizon,
                seed,
            } => obj(
                "fleet-config",
                vec![
                    ("nodes".to_string(), num(*nodes)),
                    ("apps".to_string(), num(*apps)),
                    ("capacity".to_string(), num(*capacity)),
                    ("horizon".to_string(), num(*horizon)),
                    ("seed".to_string(), num(*seed)),
                ],
            ),
            FleetEvent::Placement {
                epoch,
                app,
                bench,
                node,
                boot,
            } => obj(
                "placement",
                vec![
                    ("epoch".to_string(), num(*epoch)),
                    ("app".to_string(), num(*app)),
                    ("bench".to_string(), Json::Str(bench.clone())),
                    ("node".to_string(), num(*node)),
                    ("boot".to_string(), Json::Bool(*boot)),
                ],
            ),
            FleetEvent::Deferred { epoch, app } => obj(
                "deferred",
                vec![
                    ("epoch".to_string(), num(*epoch)),
                    ("app".to_string(), num(*app)),
                ],
            ),
            FleetEvent::Departure {
                epoch,
                app,
                node,
                teardown,
            } => obj(
                "departure",
                vec![
                    ("epoch".to_string(), num(*epoch)),
                    ("app".to_string(), num(*app)),
                    ("node".to_string(), num(*node)),
                    ("teardown".to_string(), Json::Bool(*teardown)),
                ],
            ),
            FleetEvent::Migration {
                epoch,
                app,
                from,
                to,
                digest,
            } => obj(
                "migration",
                vec![
                    ("epoch".to_string(), num(*epoch)),
                    ("app".to_string(), num(*app)),
                    ("from".to_string(), num(*from)),
                    ("to".to_string(), num(*to)),
                    ("digest".to_string(), Json::Str(format!("{digest:016x}"))),
                ],
            ),
            FleetEvent::Summary {
                epoch,
                active_nodes,
                running_apps,
                placements,
                departures,
                migrations,
                unfairness_p99,
                slowdown_p99,
            } => obj(
                "summary",
                vec![
                    ("epoch".to_string(), num(*epoch)),
                    ("active_nodes".to_string(), num(*active_nodes)),
                    ("running_apps".to_string(), num(*running_apps)),
                    ("placements".to_string(), num(*placements)),
                    ("departures".to_string(), num(*departures)),
                    ("migrations".to_string(), num(*migrations)),
                    ("unfairness_p99".to_string(), Json::Num(*unfairness_p99)),
                    ("slowdown_p99".to_string(), Json::Num(*slowdown_p99)),
                ],
            ),
        }
    }

    /// Parses one JSONL line back into an event.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, an unknown `kind`, or missing fields.
    pub fn parse_json_line(line: &str) -> Result<FleetEvent, String> {
        let j = Json::parse(line).map_err(|e| format!("not JSON: {e}"))?;
        let members = match &j {
            Json::Obj(m) => m,
            _ => return Err("fleet event is not an object".to_string()),
        };
        let get = |key: &str| -> Result<&Json, String> {
            members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            match get(key)? {
                Json::Num(n) => Ok(*n as u64),
                _ => Err(format!("{key:?} is not a number")),
            }
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            match get(key)? {
                Json::Num(n) => Ok(*n),
                _ => Err(format!("{key:?} is not a number")),
            }
        };
        let get_bool = |key: &str| -> Result<bool, String> {
            match get(key)? {
                Json::Bool(b) => Ok(*b),
                _ => Err(format!("{key:?} is not a bool")),
            }
        };
        let get_str = |key: &str| -> Result<String, String> {
            match get(key)? {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(format!("{key:?} is not a string")),
            }
        };
        match get_str("kind")?.as_str() {
            "fleet-config" => Ok(FleetEvent::Config {
                nodes: get_u64("nodes")?,
                apps: get_u64("apps")?,
                capacity: get_u64("capacity")?,
                horizon: get_u64("horizon")?,
                seed: get_u64("seed")?,
            }),
            "placement" => Ok(FleetEvent::Placement {
                epoch: get_u64("epoch")?,
                app: get_u64("app")?,
                bench: get_str("bench")?,
                node: get_u64("node")?,
                boot: get_bool("boot")?,
            }),
            "deferred" => Ok(FleetEvent::Deferred {
                epoch: get_u64("epoch")?,
                app: get_u64("app")?,
            }),
            "departure" => Ok(FleetEvent::Departure {
                epoch: get_u64("epoch")?,
                app: get_u64("app")?,
                node: get_u64("node")?,
                teardown: get_bool("teardown")?,
            }),
            "migration" => Ok(FleetEvent::Migration {
                epoch: get_u64("epoch")?,
                app: get_u64("app")?,
                from: get_u64("from")?,
                to: get_u64("to")?,
                digest: u64::from_str_radix(&get_str("digest")?, 16)
                    .map_err(|e| format!("bad digest: {e}"))?,
            }),
            "summary" => Ok(FleetEvent::Summary {
                epoch: get_u64("epoch")?,
                active_nodes: get_u64("active_nodes")?,
                running_apps: get_u64("running_apps")?,
                placements: get_u64("placements")?,
                departures: get_u64("departures")?,
                migrations: get_u64("migrations")?,
                unfairness_p99: get_f64("unfairness_p99")?,
                slowdown_p99: get_f64("slowdown_p99")?,
            }),
            other => Err(format!("unknown fleet event kind {other:?}")),
        }
    }
}

/// What a structurally valid fleet trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetTraceStats {
    /// Events checked (including the config header).
    pub events: usize,
    /// Distinct epochs with a summary.
    pub epochs: u64,
    /// Placement events.
    pub placements: u64,
    /// Departure events.
    pub departures: u64,
    /// Migration events.
    pub migrations: u64,
    /// Deferral events.
    pub deferrals: u64,
}

/// Replays a fleet trace and checks it against the lifecycle rules.
///
/// # Errors
///
/// Returns a description of the first structural violation: malformed
/// line, missing/duplicated config header, an event that contradicts
/// the replayed membership (placing a placed tenant, departing from the
/// wrong node, migrating to a full or identical node), a node id out of
/// range, occupancy above capacity, non-monotonic epochs, or a summary
/// whose running-app count disagrees with the replay.
pub fn check_fleet_trace(text: &str) -> Result<FleetTraceStats, String> {
    let mut stats = FleetTraceStats::default();
    let mut cfg: Option<(u64, u64)> = None; // (nodes, capacity)
    let mut placed: HashMap<u64, u64> = HashMap::new(); // app -> node
    let mut occupancy: HashMap<u64, u64> = HashMap::new(); // node -> apps
    let mut last_epoch = 0u64;
    let mut last_summary_epoch: Option<u64> = None;

    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let event = FleetEvent::parse_json_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
        stats.events += 1;
        if stats.events == 1 {
            match event {
                FleetEvent::Config {
                    nodes, capacity, ..
                } => {
                    cfg = Some((nodes, capacity));
                    continue;
                }
                _ => return Err("line 1: first event must be fleet-config".to_string()),
            }
        }
        let (n_nodes, capacity) = cfg.expect("config checked on the first event");
        let epoch = match &event {
            FleetEvent::Config { .. } => {
                return Err(format!("line {lineno}: duplicate fleet-config"));
            }
            FleetEvent::Placement { epoch, .. }
            | FleetEvent::Deferred { epoch, .. }
            | FleetEvent::Departure { epoch, .. }
            | FleetEvent::Migration { epoch, .. }
            | FleetEvent::Summary { epoch, .. } => *epoch,
        };
        if epoch < last_epoch {
            return Err(format!(
                "line {lineno}: epoch {epoch} after epoch {last_epoch}"
            ));
        }
        last_epoch = epoch;
        match event {
            FleetEvent::Config { .. } => unreachable!("handled above"),
            FleetEvent::Placement {
                app, node, boot, ..
            } => {
                stats.placements += 1;
                if node >= n_nodes {
                    return Err(format!("line {lineno}: node {node} out of range"));
                }
                if let Some(on) = placed.get(&app) {
                    return Err(format!(
                        "line {lineno}: app {app} placed while already on node {on}"
                    ));
                }
                let occ = occupancy.entry(node).or_insert(0);
                if boot != (*occ == 0) {
                    return Err(format!(
                        "line {lineno}: boot flag {boot} but node {node} hosts {occ}"
                    ));
                }
                *occ += 1;
                if *occ > capacity {
                    return Err(format!(
                        "line {lineno}: node {node} over capacity ({occ} > {capacity})"
                    ));
                }
                placed.insert(app, node);
            }
            FleetEvent::Deferred { app, .. } => {
                stats.deferrals += 1;
                if let Some(on) = placed.get(&app) {
                    return Err(format!(
                        "line {lineno}: app {app} deferred while placed on node {on}"
                    ));
                }
            }
            FleetEvent::Departure {
                app,
                node,
                teardown,
                ..
            } => {
                stats.departures += 1;
                match placed.remove(&app) {
                    Some(on) if on == node => {}
                    Some(on) => {
                        return Err(format!(
                            "line {lineno}: app {app} departed node {node} but lives on {on}"
                        ));
                    }
                    None => {
                        return Err(format!("line {lineno}: app {app} departed unplaced"));
                    }
                }
                let occ = occupancy.entry(node).or_insert(0);
                *occ -= 1;
                if teardown != (*occ == 0) {
                    return Err(format!(
                        "line {lineno}: teardown flag {teardown} but node {node} hosts {occ}"
                    ));
                }
            }
            FleetEvent::Migration { app, from, to, .. } => {
                stats.migrations += 1;
                if from == to {
                    return Err(format!("line {lineno}: migration from a node to itself"));
                }
                if to >= n_nodes {
                    return Err(format!("line {lineno}: node {to} out of range"));
                }
                match placed.get(&app) {
                    Some(&on) if on == from => {}
                    Some(&on) => {
                        return Err(format!(
                            "line {lineno}: app {app} migrated from {from} but lives on {on}"
                        ));
                    }
                    None => {
                        return Err(format!("line {lineno}: app {app} migrated unplaced"));
                    }
                }
                *occupancy.entry(from).or_insert(1) -= 1;
                let occ = occupancy.entry(to).or_insert(0);
                *occ += 1;
                if *occ > capacity {
                    return Err(format!(
                        "line {lineno}: migration over capacity on node {to}"
                    ));
                }
                placed.insert(app, to);
            }
            FleetEvent::Summary {
                epoch,
                running_apps,
                active_nodes,
                ..
            } => {
                if last_summary_epoch == Some(epoch) {
                    return Err(format!(
                        "line {lineno}: duplicate summary for epoch {epoch}"
                    ));
                }
                last_summary_epoch = Some(epoch);
                stats.epochs += 1;
                let replayed = placed.len() as u64;
                if running_apps != replayed {
                    return Err(format!(
                        "line {lineno}: summary says {running_apps} running apps, replay says {replayed}"
                    ));
                }
                let replayed_nodes = occupancy.values().filter(|&&o| o > 0).count() as u64;
                if active_nodes != replayed_nodes {
                    return Err(format!(
                        "line {lineno}: summary says {active_nodes} active nodes, replay says {replayed_nodes}"
                    ));
                }
            }
        }
    }
    if cfg.is_none() {
        return Err("empty fleet trace (no fleet-config header)".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_line() -> String {
        FleetEvent::Config {
            nodes: 4,
            apps: 8,
            capacity: 2,
            horizon: 10,
            seed: 1,
        }
        .to_json_line()
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let events = vec![
            FleetEvent::Config {
                nodes: 4,
                apps: 8,
                capacity: 2,
                horizon: 10,
                seed: 1,
            },
            FleetEvent::Placement {
                epoch: 0,
                app: 3,
                bench: "WN".to_string(),
                node: 1,
                boot: true,
            },
            FleetEvent::Deferred { epoch: 0, app: 4 },
            FleetEvent::Migration {
                epoch: 2,
                app: 3,
                from: 1,
                to: 2,
                digest: 0xdead_beef_cafe_f00d,
            },
            FleetEvent::Departure {
                epoch: 3,
                app: 3,
                node: 2,
                teardown: true,
            },
            FleetEvent::Summary {
                epoch: 3,
                active_nodes: 0,
                running_apps: 0,
                placements: 1,
                departures: 1,
                migrations: 1,
                unfairness_p99: 0.25,
                slowdown_p99: 1.5,
            },
        ];
        for e in events {
            let line = e.to_json_line();
            assert_eq!(FleetEvent::parse_json_line(&line).unwrap(), e, "{line}");
        }
    }

    #[test]
    fn checker_accepts_a_consistent_trace() {
        let lines = [
            config_line(),
            FleetEvent::Placement {
                epoch: 0,
                app: 0,
                bench: "WN".to_string(),
                node: 0,
                boot: true,
            }
            .to_json_line(),
            FleetEvent::Placement {
                epoch: 0,
                app: 1,
                bench: "SP".to_string(),
                node: 1,
                boot: true,
            }
            .to_json_line(),
            FleetEvent::Migration {
                epoch: 1,
                app: 0,
                from: 0,
                to: 1,
                digest: 7,
            }
            .to_json_line(),
            FleetEvent::Departure {
                epoch: 2,
                app: 0,
                node: 1,
                teardown: false,
            }
            .to_json_line(),
            FleetEvent::Summary {
                epoch: 2,
                active_nodes: 1,
                running_apps: 1,
                placements: 2,
                departures: 1,
                migrations: 1,
                unfairness_p99: 0.0,
                slowdown_p99: 1.0,
            }
            .to_json_line(),
        ];
        let stats = check_fleet_trace(&lines.join("\n")).unwrap();
        assert_eq!(stats.placements, 2);
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.epochs, 1);
    }

    #[test]
    fn checker_rejects_lifecycle_violations() {
        let place = |app: u64, node: u64, boot: bool| {
            FleetEvent::Placement {
                epoch: 0,
                app,
                bench: "WN".to_string(),
                node,
                boot,
            }
            .to_json_line()
        };
        // Double placement.
        let t = [config_line(), place(0, 0, true), place(0, 1, true)].join("\n");
        assert!(check_fleet_trace(&t)
            .unwrap_err()
            .contains("already on node"));
        // Wrong boot flag.
        let t = [config_line(), place(0, 0, false)].join("\n");
        assert!(check_fleet_trace(&t).unwrap_err().contains("boot flag"));
        // Over capacity (capacity 2).
        let t = [
            config_line(),
            place(0, 0, true),
            place(1, 0, false),
            place(2, 0, false),
        ]
        .join("\n");
        assert!(check_fleet_trace(&t).unwrap_err().contains("over capacity"));
        // Departure of an unplaced app.
        let t = [
            config_line(),
            FleetEvent::Departure {
                epoch: 0,
                app: 9,
                node: 0,
                teardown: false,
            }
            .to_json_line(),
        ]
        .join("\n");
        assert!(check_fleet_trace(&t).unwrap_err().contains("unplaced"));
        // Missing header.
        assert!(check_fleet_trace(&place(0, 0, true))
            .unwrap_err()
            .contains("fleet-config"));
        // Epochs must not go backwards.
        let t = [
            config_line(),
            FleetEvent::Deferred { epoch: 3, app: 0 }.to_json_line(),
            FleetEvent::Deferred { epoch: 2, app: 1 }.to_json_line(),
        ]
        .join("\n");
        assert!(check_fleet_trace(&t).unwrap_err().contains("after epoch"));
    }
}
