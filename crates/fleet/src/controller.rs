//! The fleet controller: N per-node CoPart runtimes, one deterministic
//! epoch loop.
//!
//! Each fleet epoch runs four phases:
//!
//! 1. **Departures** (serial, node-id order): tenants whose placed
//!    residence expired are evicted; the last tenant out tears the node
//!    down.
//! 2. **Rebalancing** (serial, at most one migration per epoch): the
//!    lowest-id node whose unfairness EWMA has been above threshold for
//!    `patience` consecutive epochs gives up its slowest tenant. The
//!    tenant's controller state is captured as a [`MigrationTicket`]
//!    (the PR-8 snapshot codec is the wire format), the tenant is
//!    evicted, and delivery is queued on the best destination the
//!    placement engine offers.
//! 3. **Placement** (serial): previously deferred tenants retry FIFO,
//!    then the epoch's arrivals from the churn tape are placed by
//!    sensitivity class + occupancy ([`PlacementEngine`]).
//! 4. **Node epochs** (parallel): every node applies its queued
//!    admissions (booting if empty) and steps one adaptation period,
//!    fanned out over the `copart-parallel` pool. All cross-node
//!    decisions were fixed in phases 1–3, every node owns disjoint
//!    state, and results are reassembled in node-id order — so the
//!    fleet trace is byte-identical at any `--jobs` setting.
//!
//! A serial post-pass folds the epoch into the
//! [`FleetAggregator`] and the JSONL fleet trace. A node whose
//! adaptation period fails outright (possible only under injected
//! faults that outlast the resilience retries) is *retired*: its
//! tenants re-enter the admission queue with their remaining service,
//! modelling a node crash plus rescheduling rather than aborting the
//! fleet.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use copart_core::runtime::{PeriodRecord, Phase, RuntimeConfig};
use copart_core::{CoPartParams, NodeRuntime, WaysBudget};
use copart_faults::{FaultPlan, FaultyBackend, ScopedFaultPlan};
use copart_persist::{
    write_snapshot, MetricsFrozen, PersistableBackend, SnapshotDoc, SnapshotMeta,
};
use copart_rdt::{ClosId, SimBackend};
use copart_rng::derive_seed;
use copart_sim::{Machine, MachineConfig};
use copart_telemetry::{FleetAggregator, NodeGauges};
use copart_workloads::fleet::churn_tape;
use copart_workloads::stream::StreamReference;
use copart_workloads::Benchmark;

use crate::migration::MigrationTicket;
use crate::placement::{Demand, PlacementEngine};
use crate::trace::FleetEvent;

/// Cores each tenant is pinned to. Fleet nodes are the paper's
/// calibrated Xeon Gold 6130 machines, and tenants are the calibrated
/// 4-core benchmark models — so a node hosts up to four, exactly the
/// consolidation density of the paper's 4-app mixes.
const APP_CORES: u32 = 4;

/// The backend every fleet node runs: the simulator behind the fault
/// decorator. Out-of-scope nodes get [`FaultPlan::none`], which is
/// byte-transparent, so the node type is uniform fleet-wide.
pub type FleetBackend = FaultyBackend<SimBackend>;

/// Rebalancer tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// EWMA smoothing factor for per-node unfairness.
    pub alpha: f64,
    /// EWMA level above which a node counts as hot.
    pub threshold: f64,
    /// Consecutive hot epochs before a migration fires.
    pub patience: u32,
    /// Epochs a migration's source and destination sit out afterwards.
    pub cooldown: u32,
}

impl Default for RebalanceConfig {
    fn default() -> RebalanceConfig {
        // Tuned against the simulator's post-convergence unfairness on
        // consolidated Xeon nodes: CoPart itself holds per-node
        // unfairness near 0.01–0.03, with bad mixes sustaining 0.05+.
        // The threshold sits just above the converged band so only
        // mixes partitioning cannot fix trigger a migration.
        RebalanceConfig {
            alpha: 0.5,
            threshold: 0.025,
            patience: 2,
            cooldown: 4,
        }
    }
}

/// A fleet run's full configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Tenants on the churn tape.
    pub apps: u64,
    /// Fleet epochs to drive.
    pub horizon: u64,
    /// Master seed (tape, per-node controller seeds, fault streams).
    pub seed: u64,
    /// Tenants per node (defaults to the paper's 4-app density).
    pub capacity: u32,
    /// Profiling retry budget per admission (matters under faults).
    pub profile_attempts: u32,
    /// Optional fault plan with per-node scoping.
    pub faults: Option<ScopedFaultPlan>,
    /// Rebalancer tuning.
    pub rebalance: RebalanceConfig,
    /// When set, every live node's snapshot is written here at the end
    /// of the run (`node-NNNN/snap-*.json`, PR-8 format).
    pub state_dir: Option<PathBuf>,
}

impl FleetConfig {
    /// The default fleet shape: `nodes` Xeon nodes, `apps` tenants
    /// churning over 48 epochs.
    pub fn new(nodes: usize, apps: u64, seed: u64) -> FleetConfig {
        FleetConfig {
            nodes,
            apps,
            horizon: 48,
            seed,
            capacity: MachineConfig::xeon_gold_6130().n_cores / APP_CORES,
            profile_attempts: 3,
            faults: None,
            rebalance: RebalanceConfig::default(),
            state_dir: None,
        }
    }
}

/// What a fleet run produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The JSONL fleet trace (config header, events, per-epoch
    /// summaries), newline-terminated.
    pub trace: String,
    /// The fleet metrics aggregate as deterministic JSON.
    pub metrics_json: String,
    /// The aggregator itself, for programmatic inspection.
    pub aggregator: FleetAggregator,
    /// Audit trail: one JSONL [`MigrationTicket`] per migration.
    pub tickets: Vec<String>,
    /// Node snapshots written to `state_dir` (0 when unset).
    pub snapshots_written: u64,
}

/// One tenant resident on a node.
#[derive(Debug, Clone)]
struct Resident {
    app: u64,
    bench: Benchmark,
    group: ClosId,
    /// Placed epochs left before departure.
    remaining: u64,
    slowdown: f64,
}

/// An admission queued for the parallel phase.
#[derive(Debug, Clone)]
struct Pending {
    app: u64,
    bench: Benchmark,
    /// Service epochs the tenant still owes (full lifetime for fresh
    /// arrivals, carried over for migrations and crash reschedules).
    remaining: u64,
    migrated: bool,
}

/// Result of one queued admission, reported from the parallel phase.
#[derive(Debug)]
struct AdmitResult {
    pending: Pending,
    /// `Ok(booted)` or the admission error.
    result: Result<bool, String>,
}

/// What one node did during the parallel phase.
#[derive(Debug, Default)]
struct NodeEpochOutcome {
    admissions: Vec<AdmitResult>,
    /// Tenants lost to a node retirement (step failure under faults),
    /// in residence order.
    crashed: Vec<Pending>,
}

struct FleetNode {
    id: u64,
    runtime: Option<NodeRuntime<FleetBackend>>,
    residents: Vec<Resident>,
    pending: Vec<Pending>,
    unfairness: f64,
    ewma: f64,
    hot: u32,
    cooldown: u32,
    record: PeriodRecord,
}

/// Everything the parallel phase reads, shared immutably across nodes.
struct Shared {
    machine: MachineConfig,
    stream: StreamReference,
    seed: u64,
    profile_attempts: u32,
    faults: Option<ScopedFaultPlan>,
    rebalance: RebalanceConfig,
}

impl Shared {
    fn plan_for(&self, node: u64) -> FaultPlan {
        self.faults
            .as_ref()
            .map_or_else(FaultPlan::none, |s| s.plan_for_node(node))
    }

    fn node_cfg(&self, node: u64) -> RuntimeConfig {
        RuntimeConfig {
            params: CoPartParams {
                seed: derive_seed(self.seed, node),
                ..CoPartParams::default()
            },
            manage_llc: true,
            manage_mba: true,
            budget: WaysBudget::full_machine(self.machine.llc_ways),
            stream: self.stream.clone(),
            resilience: Default::default(),
            planner: Default::default(),
        }
    }
}

/// The STREAM reference table for the fleet's node machine, measured
/// once per process (the paper's controller measures it once per
/// machine; every fleet node is the same machine).
fn fleet_stream() -> &'static StreamReference {
    static STREAM: OnceLock<StreamReference> = OnceLock::new();
    STREAM.get_or_init(|| StreamReference::compute(&MachineConfig::xeon_gold_6130(), APP_CORES))
}

fn tenant_name(app: u64, bench: Benchmark) -> String {
    format!("a{app}-{}", bench.table2().short)
}

fn blank_record() -> PeriodRecord {
    PeriodRecord {
        time_ns: 0,
        phase: Phase::Exploring,
        state: Default::default(),
        apps: Vec::new(),
        unfairness: 0.0,
    }
}

/// Applies a node's queued admissions and steps one adaptation period.
/// Runs inside the parallel pool; touches only this node's state.
fn node_epoch(node: &mut FleetNode, shared: &Shared) -> NodeEpochOutcome {
    let mut out = NodeEpochOutcome::default();
    for p in std::mem::take(&mut node.pending) {
        let name = tenant_name(p.app, p.bench);
        let mut spec = p.bench.spec_with_cores(APP_CORES);
        spec.name = name.clone();
        let result = if let Some(rt) = node.runtime.as_mut() {
            rt.admit(spec, name).map(|group| (group, false))
        } else {
            let backend = FaultyBackend::new(
                SimBackend::new(Machine::new(shared.machine.clone())),
                shared.plan_for(node.id),
            );
            NodeRuntime::launch(
                backend,
                std::slice::from_ref(&spec),
                shared.node_cfg(node.id),
                shared.profile_attempts,
            )
            .map(|rt| {
                let group = rt.runtime().apps()[0].group;
                node.runtime = Some(rt);
                (group, true)
            })
        };
        let result = match result {
            Ok((group, booted)) => {
                node.residents.push(Resident {
                    app: p.app,
                    bench: p.bench,
                    group,
                    remaining: p.remaining,
                    slowdown: 0.0,
                });
                Ok(booted)
            }
            Err(e) => Err(e),
        };
        out.admissions.push(AdmitResult { pending: p, result });
    }

    if node.residents.is_empty() {
        node.unfairness = 0.0;
    } else {
        let rt = node.runtime.as_mut().expect("residents imply a runtime");
        match rt.step_into(&mut node.record) {
            Ok(()) => {
                node.unfairness = node.record.unfairness;
                for r in &mut node.residents {
                    r.remaining = r.remaining.saturating_sub(1);
                    let name = tenant_name(r.app, r.bench);
                    if let Some(a) = node.record.apps.iter().find(|a| a.name == name) {
                        r.slowdown = a.slowdown;
                    }
                }
            }
            Err(_) => {
                // Node retirement: the platform refused to advance even
                // through the resilience retries. Drop the runtime and
                // hand every tenant back for rescheduling.
                node.runtime = None;
                node.unfairness = 0.0;
                for r in node.residents.drain(..) {
                    out.crashed.push(Pending {
                        app: r.app,
                        bench: r.bench,
                        remaining: r.remaining,
                        migrated: false,
                    });
                }
            }
        }
    }

    // Rebalancer bookkeeping, last epoch's EWMA folded with this one.
    let rb = &shared.rebalance;
    node.ewma = rb.alpha * node.unfairness + (1.0 - rb.alpha) * node.ewma;
    if node.cooldown > 0 {
        node.cooldown -= 1;
        node.hot = 0;
    } else if node.ewma > rb.threshold && node.residents.len() >= 2 {
        node.hot += 1;
    } else {
        node.hot = 0;
    }
    out
}

/// A staged migration, decided serially and resolved after delivery.
struct StagedMigration {
    app: u64,
    from: u64,
    to: u64,
    digest: u64,
    /// Whether evicting the tenant tore the source down.
    teardown_src: bool,
    ticket_line: String,
}

/// Runs a whole fleet to completion.
///
/// # Errors
///
/// Fails on impossible configurations (zero nodes/capacity) or when
/// writing `state_dir` snapshots fails. Node-level fault damage is
/// handled inside the run (retirement + rescheduling), not surfaced as
/// an error.
///
/// # Panics
///
/// Panics only on internal bookkeeping bugs (a resident without a
/// runtime, an engine commit past capacity).
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetOutcome, String> {
    if cfg.nodes == 0 {
        return Err("a fleet needs at least one node".to_string());
    }
    if cfg.capacity == 0 || cfg.capacity * APP_CORES > MachineConfig::xeon_gold_6130().n_cores {
        return Err(format!(
            "capacity must be 1..={} tenants per node",
            MachineConfig::xeon_gold_6130().n_cores / APP_CORES
        ));
    }

    let machine = MachineConfig::xeon_gold_6130();
    let shared = Shared {
        stream: fleet_stream().clone(),
        machine,
        seed: cfg.seed,
        profile_attempts: cfg.profile_attempts.max(1),
        faults: cfg.faults.clone(),
        rebalance: cfg.rebalance,
    };

    let tape = churn_tape(cfg.apps, cfg.horizon, cfg.seed);
    let mut next_arrival = 0usize;
    let mut engine = PlacementEngine::new(cfg.nodes, cfg.capacity);
    let mut deferred: VecDeque<Pending> = VecDeque::new();
    let mut agg = FleetAggregator::new(cfg.nodes);
    let mut tickets: Vec<String> = Vec::new();
    let mut trace: Vec<String> = Vec::new();
    trace.push(
        FleetEvent::Config {
            nodes: cfg.nodes as u64,
            apps: cfg.apps,
            capacity: u64::from(cfg.capacity),
            horizon: cfg.horizon,
            seed: cfg.seed,
        }
        .to_json_line(),
    );

    let nodes: Vec<Mutex<FleetNode>> = (0..cfg.nodes)
        .map(|id| {
            Mutex::new(FleetNode {
                id: id as u64,
                runtime: None,
                residents: Vec::new(),
                pending: Vec::new(),
                unfairness: 0.0,
                ewma: 0.0,
                hot: 0,
                cooldown: 0,
                record: blank_record(),
            })
        })
        .collect();
    let lock = |i: usize| nodes[i].lock().expect("fleet node lock never poisoned");

    for epoch in 0..cfg.horizon {
        // Phase 1 — departures.
        for (id, slot) in nodes.iter().enumerate() {
            let mut node = slot.lock().expect("fleet node lock never poisoned");
            let mut i = 0;
            while i < node.residents.len() {
                if node.residents[i].remaining > 0 {
                    i += 1;
                    continue;
                }
                let r = node.residents[i].clone();
                let rt = node.runtime.as_mut().expect("resident implies runtime");
                if rt.evict(r.group).is_err() {
                    // The platform refused the eviction (faults); the
                    // tenant stays one more epoch and we retry.
                    i += 1;
                    continue;
                }
                node.residents.remove(i);
                let teardown = node.residents.is_empty();
                if teardown {
                    node.runtime = None;
                    agg.node_teardowns += 1;
                }
                engine.release(id, Demand::of(r.bench));
                agg.departures += 1;
                trace.push(
                    FleetEvent::Departure {
                        epoch,
                        app: r.app,
                        node: id as u64,
                        teardown,
                    }
                    .to_json_line(),
                );
            }
        }

        // Phase 2 — rebalancing (at most one migration per epoch).
        let mut staged: Option<StagedMigration> = None;
        let hot_src = (0..cfg.nodes).find(|&i| {
            let node = lock(i);
            node.cooldown == 0 && node.hot >= cfg.rebalance.patience && node.residents.len() >= 2
        });
        if let Some(src) = hot_src {
            let mut node = lock(src);
            // The slowest tenant (first index wins ties) is the one the
            // hot node gives up.
            let victim = node
                .residents
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.slowdown
                        .partial_cmp(&b.slowdown)
                        .expect("slowdowns are finite")
                        .then(ib.cmp(ia))
                })
                .map(|(i, _)| i)
                .expect("source has residents");
            let r = node.residents[victim].clone();
            let d = Demand::of(r.bench);
            if let Some(dst) = engine.place_excluding(d, src) {
                let rt = node.runtime.as_mut().expect("resident implies runtime");
                let state = rt
                    .snapshot()
                    .apps
                    .into_iter()
                    .find(|a| a.group == r.group.0);
                let evicted = state.is_some() && rt.evict(r.group).is_ok();
                if let (Some(state), true) = (state, evicted) {
                    node.residents.remove(victim);
                    let teardown_src = node.residents.is_empty();
                    if teardown_src {
                        node.runtime = None;
                        agg.node_teardowns += 1;
                    }
                    node.cooldown = cfg.rebalance.cooldown;
                    node.hot = 0;
                    drop(node);
                    engine.release(src, d);
                    engine.commit(dst, d);
                    let ticket = MigrationTicket {
                        app: r.app,
                        epoch,
                        from: src as u64,
                        to: dst as u64,
                        state,
                    };
                    let digest = ticket.digest();
                    let ticket_line = ticket.to_json_line();
                    let mut dest = lock(dst);
                    dest.cooldown = dest.cooldown.max(cfg.rebalance.cooldown);
                    dest.pending.push(Pending {
                        app: r.app,
                        bench: r.bench,
                        remaining: r.remaining,
                        migrated: true,
                    });
                    drop(dest);
                    staged = Some(StagedMigration {
                        app: r.app,
                        from: src as u64,
                        to: dst as u64,
                        digest,
                        teardown_src,
                        ticket_line,
                    });
                } else {
                    // Snapshot/evict refused under faults: sit out a
                    // cooldown rather than hot-looping.
                    node.cooldown = cfg.rebalance.cooldown;
                    node.hot = 0;
                }
            } else {
                // Fleet has nowhere to put the tenant; try again after
                // a cooldown.
                node.cooldown = cfg.rebalance.cooldown;
                node.hot = 0;
            }
        }

        // Phase 3 — placement: deferred FIFO first, then arrivals.
        let mut queue: Vec<Pending> = deferred.drain(..).collect();
        while next_arrival < tape.len() && tape[next_arrival].arrive == epoch {
            let a = &tape[next_arrival];
            queue.push(Pending {
                app: a.app,
                bench: a.bench,
                remaining: a.lifetime,
                migrated: false,
            });
            next_arrival += 1;
        }
        let mut deferred_events: Vec<u64> = Vec::new();
        for p in queue {
            let d = Demand::of(p.bench);
            match engine.place(d) {
                Some(node) => {
                    engine.commit(node, d);
                    lock(node).pending.push(p);
                }
                None => {
                    deferred_events.push(p.app);
                    agg.deferrals += 1;
                    deferred.push_back(p);
                }
            }
        }

        // Phase 4 — parallel node epochs.
        let mut outcomes: Vec<NodeEpochOutcome> = copart_parallel::par_map(&nodes, |slot| {
            let mut node = slot.lock().expect("fleet node lock never poisoned");
            node_epoch(&mut node, &shared)
        });

        // Post-pass (serial, node-id order): resolve the staged
        // migration first so every occupancy change appears in the
        // trace in the order the checker replays it.
        if let Some(m) = staged {
            let dst_out = &mut outcomes[m.to as usize];
            let delivery = dst_out
                .admissions
                .iter()
                .position(|a| a.pending.migrated && a.pending.app == m.app)
                .expect("staged migration has a delivery outcome");
            let delivered = dst_out.admissions.remove(delivery);
            match delivered.result {
                Ok(_) => {
                    agg.migrations += 1;
                    tickets.push(m.ticket_line);
                    trace.push(
                        FleetEvent::Migration {
                            epoch,
                            app: m.app,
                            from: m.from,
                            to: m.to,
                            digest: m.digest,
                        }
                        .to_json_line(),
                    );
                }
                Err(_) => {
                    // Delivery failed under faults: the tenant left the
                    // source but never landed — record the departure and
                    // put it back in the admission queue.
                    engine.release(m.to as usize, Demand::of(delivered.pending.bench));
                    agg.departures += 1;
                    trace.push(
                        FleetEvent::Departure {
                            epoch,
                            app: m.app,
                            node: m.from,
                            teardown: m.teardown_src,
                        }
                        .to_json_line(),
                    );
                    deferred_events.push(m.app);
                    agg.deferrals += 1;
                    deferred.push_back(delivered.pending);
                }
            }
        }

        let mut unfairness_samples: Vec<f64> = Vec::new();
        let mut slowdown_samples: Vec<f64> = Vec::new();
        for (id, outcome) in outcomes.into_iter().enumerate() {
            let node = lock(id);
            for a in outcome.admissions {
                match a.result {
                    Ok(booted) => {
                        if booted {
                            agg.node_boots += 1;
                        }
                        agg.placements += 1;
                        trace.push(
                            FleetEvent::Placement {
                                epoch,
                                app: a.pending.app,
                                bench: a.pending.bench.table2().short.to_string(),
                                node: id as u64,
                                boot: booted,
                            }
                            .to_json_line(),
                        );
                    }
                    Err(_) => {
                        // Admission rolled back; free the commitment and
                        // requeue.
                        engine.release(id, Demand::of(a.pending.bench));
                        deferred_events.push(a.pending.app);
                        agg.deferrals += 1;
                        deferred.push_back(a.pending);
                    }
                }
            }
            let n_crashed = outcome.crashed.len();
            for (i, p) in outcome.crashed.into_iter().enumerate() {
                engine.release(id, Demand::of(p.bench));
                agg.departures += 1;
                trace.push(
                    FleetEvent::Departure {
                        epoch,
                        app: p.app,
                        node: id as u64,
                        teardown: i + 1 == n_crashed,
                    }
                    .to_json_line(),
                );
                deferred_events.push(p.app);
                agg.deferrals += 1;
                deferred.push_back(p);
            }
            if n_crashed > 0 {
                agg.node_teardowns += 1;
            }
            if !node.residents.is_empty() {
                unfairness_samples.push(node.unfairness);
                slowdown_samples.extend(node.residents.iter().map(|r| r.slowdown));
            }
            agg.set_node(
                id,
                NodeGauges {
                    apps: node.residents.len() as u64,
                    unfairness: node.unfairness,
                    unfairness_ewma: node.ewma,
                },
            );
        }
        for app in deferred_events {
            trace.push(FleetEvent::Deferred { epoch, app }.to_json_line());
        }
        agg.observe_epoch(&mut unfairness_samples, &mut slowdown_samples);
        trace.push(
            FleetEvent::Summary {
                epoch,
                active_nodes: agg.active_nodes(),
                running_apps: agg.running_apps(),
                placements: agg.placements,
                departures: agg.departures,
                migrations: agg.migrations,
                unfairness_p99: agg.unfairness.p99,
                slowdown_p99: agg.slowdown.p99,
            }
            .to_json_line(),
        );
    }

    let mut snapshots_written = 0u64;
    if let Some(dir) = &cfg.state_dir {
        for (id, slot) in nodes.iter().enumerate() {
            let node = slot.lock().expect("fleet node lock never poisoned");
            let Some(rt) = node.runtime.as_ref() else {
                continue;
            };
            let doc = SnapshotDoc {
                meta: SnapshotMeta {
                    mix: "fleet".to_string(),
                    n_apps: node.residents.len() as u64,
                    policy: "copart".to_string(),
                    // The node's true derived seed. The codec carries the
                    // full u64 range losslessly since format version 2, so
                    // there is no need to smuggle the master seed and
                    // re-derive on read.
                    seed: derive_seed(cfg.seed, id as u64),
                    faults: cfg
                        .faults
                        .as_ref()
                        .map_or_else(|| "none".to_string(), |f| format!("nodes={}", f.scope)),
                    daemon_epochs: cfg.horizon,
                },
                runtime: rt.snapshot(),
                backend: rt.runtime().backend().capture(),
                metrics: MetricsFrozen::capture(&rt.runtime().metrics_snapshot()),
            };
            write_snapshot(&dir.join(format!("node-{id:04}")), &doc)
                .map_err(|e| format!("state-dir snapshot for node {id} failed: {e}"))?;
            snapshots_written += 1;
        }
    }

    let metrics_json = agg.render_json();
    Ok(FleetOutcome {
        trace: trace.join("\n") + "\n",
        metrics_json,
        aggregator: agg,
        tickets,
        snapshots_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::check_fleet_trace;

    #[test]
    fn small_fleet_runs_and_traces_cleanly() {
        let mut cfg = FleetConfig::new(4, 12, 11);
        cfg.horizon = 20;
        let out = run_fleet(&cfg).unwrap();
        let stats = check_fleet_trace(&out.trace).unwrap();
        assert!(stats.placements > 0, "someone must be placed");
        assert_eq!(stats.epochs, 20, "one summary per epoch");
        assert!(out.aggregator.placements >= 12 - out.aggregator.deferrals.min(12));
        assert!(out.metrics_json.contains("\"placements\""));
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let mut cfg = FleetConfig::new(3, 10, 5);
        cfg.horizon = 16;
        let a = run_fleet(&cfg).unwrap();
        let b = run_fleet(&cfg).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.metrics_json, b.metrics_json);
        assert_eq!(a.tickets, b.tickets);
    }

    #[test]
    fn state_dir_gets_one_snapshot_per_live_node() {
        let dir = std::env::temp_dir().join(format!("copart-fleet-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = FleetConfig::new(3, 8, 23);
        cfg.horizon = 12;
        cfg.state_dir = Some(dir.clone());
        let out = run_fleet(&cfg).unwrap();
        assert_eq!(out.snapshots_written, out.aggregator.active_nodes());
        for (id, gauges) in out.aggregator.nodes().iter().enumerate() {
            let node_dir = dir.join(format!("node-{id:04}"));
            if gauges.apps == 0 {
                assert!(!node_dir.exists(), "empty nodes write no snapshot");
                continue;
            }
            let (doc, _) = copart_persist::latest_good(&node_dir)
                .unwrap()
                .expect("live node has a snapshot");
            assert_eq!(doc.meta.mix, "fleet");
            assert_eq!(
                doc.meta.seed,
                copart_rng::derive_seed(23, id as u64),
                "meta carries the node's true derived seed"
            );
            assert_eq!(doc.meta.n_apps, gauges.apps);
            assert_eq!(doc.runtime.apps.len() as u64, gauges.apps);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_nodes_is_rejected() {
        assert!(run_fleet(&FleetConfig::new(0, 5, 1)).is_err());
        let mut cfg = FleetConfig::new(2, 5, 1);
        cfg.capacity = 99;
        assert!(run_fleet(&cfg).is_err());
    }
}
