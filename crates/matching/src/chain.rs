//! Instability-chaining allocation of consumers to resource categories.
//!
//! This module implements the first step of the paper's Algorithm 2
//! (`getNextSystemState`, lines 7–18) in its general form: a set of
//! *resource categories* with fixed capacities (the hospitals, whose
//! capacity is the number of producers willing to supply that category),
//! and a set of *consumers* with a numeric priority (their slowdown) and a
//! preference list over categories. Consumers are inserted one at a time;
//! when a category oversubscribes, the tentatively-admitted consumer with
//! the **lowest** priority is displaced and chained onto its next
//! preference — the Roth–Peranson instability-chaining discipline the paper
//! cites (its reference 35).
//!
//! Because each category effectively ranks consumers by priority, the
//! result coincides with the resident-optimal stable matching of the
//! induced Hospitals/Residents instance; a property test in this module
//! checks exactly that equivalence.

use crate::{Hospital, Instance, Matching, Resident};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A consumer competing for resource categories.
#[derive(Debug, Clone, PartialEq)]
pub struct Consumer {
    /// Claim strength; higher priority wins contested categories. In
    /// CoPart this is the application's slowdown.
    pub priority: f64,
    /// Category indices in decreasing order of desire.
    pub preference: Vec<usize>,
}

/// The result of an allocation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// For each consumer, the category it was granted, if any.
    pub consumer_to_category: Vec<Option<usize>>,
    /// Number of chaining iterations performed: every insertion attempt,
    /// including the extra attempts triggered by displacements. A measure
    /// of how contested the instance was (reported per epoch in trace
    /// events as `matching_rounds`).
    pub rounds: u32,
}

impl Allocation {
    /// Consumers granted category `c`, in insertion order.
    pub fn granted(&self, c: usize) -> Vec<usize> {
        self.consumer_to_category
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == Some(c)).then_some(i))
            .collect()
    }
}

/// A tentative holder of a category slot, ordered so a max-heap pops the
/// *weakest* holder first: lowest priority, ties toward the higher consumer
/// index — exactly the displacement rule of the reference scan in
/// [`allocate`].
#[derive(Debug, Clone, Copy)]
struct Holder {
    priority: f64,
    consumer: usize,
}

impl PartialEq for Holder {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Holder {}
impl PartialOrd for Holder {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Holder {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .priority
            .partial_cmp(&self.priority)
            .expect("priorities must not be NaN")
            .then(self.consumer.cmp(&other.consumer))
    }
}

/// Reusable buffers for [`allocate_into`]. Holding one of these across
/// epochs makes repeated chaining runs allocation-free once the buffers
/// have grown to the instance size.
#[derive(Debug, Default, Clone)]
pub struct ChainScratch {
    /// One tentative-holder heap per category (the indexed replacement for
    /// the reference scan's `Vec<Vec<usize>>` granted lists).
    heaps: Vec<BinaryHeap<Holder>>,
    /// Next preference position each consumer will try after a displacement.
    cursor: Vec<usize>,
}

/// Indexed instability chaining: identical contract and byte-identical
/// output (`assignment` and the returned `rounds`) to [`allocate`], but
/// each displacement is a heap pop instead of an O(capacity) scan, and all
/// working storage lives in `scratch` so steady-state calls allocate
/// nothing. Displacement picks the unique weakest holder under the total
/// order (priority ascending, then higher index first), so the heap and the
/// scan select the same consumer at every step.
///
/// # Panics
///
/// Panics if any preference index is out of range, as [`allocate`] does.
pub fn allocate_into(
    capacities: &[usize],
    consumers: &[Consumer],
    assignment: &mut Vec<Option<usize>>,
    scratch: &mut ChainScratch,
) -> u32 {
    for c in consumers {
        for &p in &c.preference {
            assert!(
                p < capacities.len(),
                "preference index {p} out of range ({} categories)",
                capacities.len()
            );
        }
    }

    if scratch.heaps.len() < capacities.len() {
        scratch.heaps.resize_with(capacities.len(), BinaryHeap::new);
    }
    for h in &mut scratch.heaps[..capacities.len()] {
        h.clear();
    }
    assignment.clear();
    assignment.resize(consumers.len(), None);
    scratch.cursor.clear();
    scratch.cursor.resize(consumers.len(), 0);
    let mut rounds = 0u32;

    for start in 0..consumers.len() {
        let mut current = start;
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(&cat) = consumers[current].preference.get(scratch.cursor[current]) else {
                break;
            };
            scratch.cursor[current] += 1;
            rounds += 1;
            if capacities[cat] == 0 {
                continue;
            }
            scratch.heaps[cat].push(Holder {
                priority: consumers[current].priority,
                consumer: current,
            });
            assignment[current] = Some(cat);
            if scratch.heaps[cat].len() <= capacities[cat] {
                break;
            }
            let displaced = scratch.heaps[cat]
                .pop()
                .expect("oversubscribed ⇒ non-empty")
                .consumer;
            assignment[displaced] = None;
            if displaced == current {
                continue;
            }
            current = displaced;
        }
    }

    rounds
}

/// Runs instability chaining — the straightforward reference
/// implementation ([`allocate_into`] is the indexed, scratch-reusing
/// equivalent used on the hot path; a differential test and the
/// `matching-incremental-vs-rebuild` oracle pin the two together).
///
/// `capacities[c]` is the number of grants category `c` can make. Ties in
/// priority are broken toward the lower consumer index, making the result
/// deterministic.
///
/// # Panics
///
/// Panics if any preference index is out of range; the caller constructs
/// the preference lists from its own category table, so an out-of-range
/// index is a programming error rather than an input error.
pub fn allocate(capacities: &[usize], consumers: &[Consumer]) -> Allocation {
    for c in consumers {
        for &p in &c.preference {
            assert!(
                p < capacities.len(),
                "preference index {p} out of range ({} categories)",
                capacities.len()
            );
        }
    }

    let mut granted: Vec<Vec<usize>> = vec![Vec::new(); capacities.len()];
    let mut assignment: Vec<Option<usize>> = vec![None; consumers.len()];
    // Next preference position each consumer will try after a displacement.
    let mut cursor = vec![0usize; consumers.len()];
    let mut rounds = 0u32;

    // Mirrors Algorithm 2 lines 7–18: iterate consumers; each insertion may
    // displace the weakest holder, who chains onto its own next preference.
    for start in 0..consumers.len() {
        let mut current = start;
        // Not a `while let`: `current` changes inside the body when a
        // displacement chains to another consumer.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(&cat) = consumers[current].preference.get(cursor[current]) else {
                break; // Preference list exhausted (line 10–11).
            };
            cursor[current] += 1;
            rounds += 1;
            if capacities[cat] == 0 {
                continue; // No producer supplies this category.
            }
            granted[cat].push(current);
            assignment[current] = Some(cat);
            if granted[cat].len() <= capacities[cat] {
                break; // Fits; chain ends (line 17–18).
            }
            // Oversubscribed: displace the minimum-priority holder
            // (line 14–16), favoring higher slowdowns as the paper does.
            let (weakest_pos, _) = granted[cat]
                .iter()
                .enumerate()
                .min_by(|&(_, &a), &(_, &b)| {
                    consumers[a]
                        .priority
                        .partial_cmp(&consumers[b].priority)
                        .expect("priorities must not be NaN")
                        .then(b.cmp(&a)) // Lower index wins ties, so higher
                                         // index is displaced first.
                })
                .expect("oversubscribed ⇒ non-empty");
            let displaced = granted[cat].swap_remove(weakest_pos);
            assignment[displaced] = None;
            if displaced == current {
                // Immediately bounced; keep walking our own list.
                continue;
            }
            current = displaced;
        }
    }

    Allocation {
        consumer_to_category: assignment,
        rounds,
    }
}

/// Builds the Hospitals/Residents instance induced by a chaining problem:
/// categories become hospitals preferring consumers by descending priority.
pub fn induced_instance(capacities: &[usize], consumers: &[Consumer]) -> Instance {
    let mut by_priority: Vec<usize> = (0..consumers.len()).collect();
    by_priority.sort_by(|&a, &b| {
        consumers[b]
            .priority
            .partial_cmp(&consumers[a].priority)
            .expect("priorities must not be NaN")
            .then(a.cmp(&b))
    });
    Instance {
        hospitals: capacities
            .iter()
            .map(|&capacity| Hospital {
                capacity,
                preference: by_priority.clone(),
            })
            .collect(),
        residents: consumers
            .iter()
            .map(|c| Resident {
                preference: c.preference.clone(),
            })
            .collect(),
    }
}

impl From<Allocation> for Matching {
    fn from(a: Allocation) -> Matching {
        Matching {
            resident_to_hospital: a.consumer_to_category,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_resident_optimal;
    use copart_rng::XorShift64Star;

    fn consumer(priority: f64, preference: Vec<usize>) -> Consumer {
        Consumer {
            priority,
            preference,
        }
    }

    #[test]
    fn single_slot_goes_to_highest_priority() {
        let alloc = allocate(&[1], &[consumer(1.2, vec![0]), consumer(2.0, vec![0])]);
        assert_eq!(alloc.consumer_to_category, vec![None, Some(0)]);
    }

    #[test]
    fn displaced_consumer_chains_to_second_choice() {
        // Consumer 0 takes cat 0 first, is displaced by consumer 1, and
        // lands on cat 1.
        let alloc = allocate(
            &[1, 1],
            &[consumer(1.0, vec![0, 1]), consumer(3.0, vec![0])],
        );
        assert_eq!(alloc.consumer_to_category, vec![Some(1), Some(0)]);
        // Three insertion attempts: consumer 0 → cat 0, consumer 1 → cat 0
        // (displacing 0), displaced consumer 0 → cat 1.
        assert_eq!(alloc.rounds, 3);
    }

    #[test]
    fn empty_category_is_skipped() {
        let alloc = allocate(&[0, 1], &[consumer(1.0, vec![0, 1])]);
        assert_eq!(alloc.consumer_to_category, vec![Some(1)]);
    }

    #[test]
    fn exhausted_preferences_leave_consumer_empty_handed() {
        let alloc = allocate(
            &[1],
            &[
                consumer(5.0, vec![0]),
                consumer(4.0, vec![0]),
                consumer(3.0, vec![0]),
            ],
        );
        assert_eq!(alloc.consumer_to_category, vec![Some(0), None, None]);
    }

    #[test]
    fn priority_ties_break_toward_lower_index() {
        let alloc = allocate(&[1], &[consumer(2.0, vec![0]), consumer(2.0, vec![0])]);
        assert_eq!(alloc.consumer_to_category, vec![Some(0), None]);
    }

    #[test]
    fn capacity_two_admits_two() {
        let alloc = allocate(
            &[2],
            &[
                consumer(1.0, vec![0]),
                consumer(2.0, vec![0]),
                consumer(3.0, vec![0]),
            ],
        );
        let granted = alloc.granted(0);
        assert_eq!(granted.len(), 2);
        assert!(granted.contains(&1) && granted.contains(&2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_preference_panics() {
        let _ = allocate(&[1], &[consumer(1.0, vec![3])]);
    }

    /// The chaining result is exactly the resident-optimal stable
    /// matching of the induced HR instance, over a seeded sweep of
    /// random instances (no proptest in the offline build).
    #[test]
    fn chaining_matches_deferred_acceptance() {
        let mut rng = XorShift64Star::seed_from_u64(0xC4A1_0001);
        for _ in 0..300 {
            let ncat = rng.gen_range(1..5usize);
            let capacities: Vec<usize> = (0..ncat).map(|_| rng.gen_range(0..3usize)).collect();
            let nconsumers = rng.gen_range(0..8usize);
            let consumers: Vec<Consumer> = (0..nconsumers)
                .map(|_| {
                    let p = rng.gen_range(0..1000u32);
                    let nprefs = rng.gen_range(0..5usize);
                    // Dedup preferences and clamp to range.
                    let mut seen = vec![false; ncat];
                    let preference = (0..nprefs)
                        .map(|_| rng.gen_range(0..5usize) % ncat)
                        .filter(|&c| !std::mem::replace(&mut seen[c], true))
                        .collect();
                    Consumer {
                        priority: p as f64,
                        preference,
                    }
                })
                .collect();
            let alloc = allocate(&capacities, &consumers);
            let inst = induced_instance(&capacities, &consumers);
            let matching: crate::Matching = alloc.into();
            assert!(matching.is_feasible(&inst));
            let reference = solve_resident_optimal(&inst).unwrap();
            // Ties in priority make the hospital order deterministic (by
            // index), so the two algorithms agree exactly.
            assert_eq!(matching, reference);
        }
    }

    /// The indexed heap allocator is byte-identical to the reference scan
    /// — assignment AND rounds — across a seeded random sweep, with one
    /// `ChainScratch` reused for every instance in the sweep.
    #[test]
    fn indexed_allocator_matches_reference_scan() {
        let mut rng = XorShift64Star::seed_from_u64(0xC4A1_0003);
        let mut scratch = ChainScratch::default();
        let mut assignment = Vec::new();
        for _ in 0..500 {
            let ncat = rng.gen_range(1..6usize);
            let capacities: Vec<usize> = (0..ncat).map(|_| rng.gen_range(0..4usize)).collect();
            let nconsumers = rng.gen_range(0..12usize);
            let consumers: Vec<Consumer> = (0..nconsumers)
                .map(|_| {
                    let nprefs = rng.gen_range(0..=ncat);
                    let mut seen = vec![false; ncat];
                    let preference = (0..nprefs)
                        .map(|_| rng.gen_range(0..ncat))
                        .filter(|&c| !std::mem::replace(&mut seen[c], true))
                        .collect();
                    Consumer {
                        // Coarse priorities force plenty of ties.
                        priority: rng.gen_range(0..6u32) as f64,
                        preference,
                    }
                })
                .collect();
            let reference = allocate(&capacities, &consumers);
            let rounds = allocate_into(&capacities, &consumers, &mut assignment, &mut scratch);
            assert_eq!(assignment, reference.consumer_to_category);
            assert_eq!(rounds, reference.rounds);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexed_allocator_rejects_out_of_range_preference() {
        let mut scratch = ChainScratch::default();
        let mut assignment = Vec::new();
        let _ = allocate_into(
            &[1],
            &[consumer(1.0, vec![3])],
            &mut assignment,
            &mut scratch,
        );
    }

    /// Stability: no consumer both lost a category it prefers and
    /// would have been accepted there.
    #[test]
    fn chaining_is_stable() {
        let mut rng = XorShift64Star::seed_from_u64(0xC4A1_0002);
        for _ in 0..300 {
            let ncat = rng.gen_range(1..4usize);
            let capacities: Vec<usize> = (0..ncat).map(|_| rng.gen_range(0..4usize)).collect();
            let nconsumers = rng.gen_range(1..8usize);
            let consumers: Vec<Consumer> = (0..nconsumers)
                .map(|i| Consumer {
                    priority: rng.gen_range(0..100u32) as f64,
                    // Rotate the full preference list per consumer.
                    preference: (0..ncat).map(|k| (k + i) % ncat).collect(),
                })
                .collect();
            let alloc = allocate(&capacities, &consumers);
            let inst = induced_instance(&capacities, &consumers);
            let matching: crate::Matching = alloc.into();
            assert!(
                matching.is_stable(&inst),
                "blocking pairs: {:?}",
                matching.blocking_pairs(&inst)
            );
        }
    }
}
