//! Hospitals/Residents (HR) stable matching.
//!
//! CoPart formulates its per-period resource reallocation as an instance of
//! the Hospitals/Residents problem (§5.4.2 of the paper): resource types
//! that applications are willing to *supply* act as hospitals (capacity =
//! number of suppliers), applications that *demand* a resource act as
//! residents, and preference order is derived from application slowdowns.
//! The paper's `getNextSystemState` is an instability-chaining step in the
//! spirit of Roth–Peranson; this crate provides the general machinery it is
//! built on and verified against:
//!
//! * [`Instance`] — hospitals with capacities and preference lists,
//!   residents with preference lists (incomplete lists allowed),
//! * [`solve_resident_optimal`] — resident-proposing deferred acceptance,
//! * [`solve_hospital_optimal`] — hospital-proposing deferred acceptance,
//! * [`Matching::blocking_pairs`] — stability verification, and
//! * [`chain::allocate`] — the incremental victim-chaining
//!   allocator that Algorithm 2 of the paper instantiates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
mod instance;
mod solver;

pub use instance::{Hospital, Instance, InstanceError, Matching, Resident};
pub use solver::{solve_hospital_optimal, solve_resident_optimal};
