//! Deferred-acceptance solvers.

use crate::{Instance, InstanceError, Matching};

/// Solves the instance with resident-proposing deferred acceptance,
/// producing the resident-optimal stable matching.
///
/// Each unassigned resident proposes to hospitals in preference order; a
/// hospital tentatively holds its best admits and bumps its least-preferred
/// admit when over capacity. Runs in `O(Σ |preference lists|)` proposals.
///
/// # Errors
///
/// Returns the instance's structural error if it fails validation.
///
/// # Examples
///
/// ```
/// use copart_matching::{Hospital, Instance, Resident, solve_resident_optimal};
///
/// let inst = Instance {
///     hospitals: vec![Hospital { capacity: 1, preference: vec![0, 1] }],
///     residents: vec![
///         Resident { preference: vec![0] },
///         Resident { preference: vec![0] },
///     ],
/// };
/// let m = solve_resident_optimal(&inst).unwrap();
/// assert_eq!(m.resident_to_hospital, vec![Some(0), None]);
/// assert!(m.is_stable(&inst));
/// ```
pub fn solve_resident_optimal(inst: &Instance) -> Result<Matching, InstanceError> {
    inst.validate()?;
    let nr = inst.residents.len();

    // Precompute hospital-side ranks for O(1) comparisons.
    let hospital_rank: Vec<Vec<Option<usize>>> = inst
        .hospitals
        .iter()
        .map(|h| {
            let mut ranks = vec![None; nr];
            for (rank, &r) in h.preference.iter().enumerate() {
                ranks[r] = Some(rank);
            }
            ranks
        })
        .collect();

    let mut assignment: Vec<Option<usize>> = vec![None; nr];
    // Residents currently held by each hospital.
    let mut admits: Vec<Vec<usize>> = vec![Vec::new(); inst.hospitals.len()];
    // Next preference index each resident will propose to.
    let mut next_choice = vec![0usize; nr];
    let mut free: Vec<usize> = (0..nr).rev().collect();

    while let Some(r) = free.pop() {
        let prefs = &inst.residents[r].preference;
        let Some(&h) = prefs.get(next_choice[r]) else {
            continue; // Exhausted list; resident stays unmatched.
        };
        next_choice[r] += 1;
        if hospital_rank[h][r].is_none() {
            free.push(r); // Unacceptable to the hospital; try the next one.
            continue;
        }
        admits[h].push(r);
        assignment[r] = Some(h);
        if admits[h].len() > inst.hospitals[h].capacity {
            // Bump the least-preferred admit.
            let (worst_pos, _) = admits[h]
                .iter()
                .enumerate()
                .max_by_key(|&(_, &res)| hospital_rank[h][res].expect("admitted ⇒ acceptable"))
                .expect("non-empty: just pushed");
            let bumped = admits[h].swap_remove(worst_pos);
            assignment[bumped] = None;
            free.push(bumped);
        }
    }

    Ok(Matching {
        resident_to_hospital: assignment,
    })
}

/// Solves the instance with hospital-proposing deferred acceptance,
/// producing the hospital-optimal stable matching.
///
/// Each hospital with spare capacity proposes down its list; a resident
/// holds the best offer seen so far. Used in tests to bracket the set of
/// stable matchings (by the Rural Hospitals theorem, both solvers match
/// the same set of residents).
///
/// # Errors
///
/// Returns the instance's structural error if it fails validation.
pub fn solve_hospital_optimal(inst: &Instance) -> Result<Matching, InstanceError> {
    inst.validate()?;
    let nr = inst.residents.len();
    let nh = inst.hospitals.len();

    let resident_rank: Vec<Vec<Option<usize>>> = inst
        .residents
        .iter()
        .map(|r| {
            let mut ranks = vec![None; nh];
            for (rank, &h) in r.preference.iter().enumerate() {
                ranks[h] = Some(rank);
            }
            ranks
        })
        .collect();

    let mut assignment: Vec<Option<usize>> = vec![None; nr];
    let mut load = vec![0usize; nh];
    let mut next_choice = vec![0usize; nh];
    let mut open: Vec<usize> = (0..nh).rev().collect();

    while let Some(h) = open.pop() {
        if load[h] >= inst.hospitals[h].capacity {
            continue;
        }
        let prefs = &inst.hospitals[h].preference;
        let Some(&r) = prefs.get(next_choice[h]) else {
            continue; // Exhausted list.
        };
        next_choice[h] += 1;
        let acceptable = resident_rank[r][h].is_some();
        let accepts = acceptable
            && match assignment[r] {
                None => true,
                Some(current) => resident_rank[r][h] < resident_rank[r][current],
            };
        if accepts {
            if let Some(prev) = assignment[r].replace(h) {
                load[prev] -= 1;
                open.push(prev); // The jilted hospital proposes again.
            }
            load[h] += 1;
        }
        // Whether or not the proposal stuck, the hospital keeps going if it
        // still has capacity and candidates.
        if load[h] < inst.hospitals[h].capacity && next_choice[h] < prefs.len() {
            open.push(h);
        }
    }

    Ok(Matching {
        resident_to_hospital: assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hospital, Resident};

    fn inst(hospitals: Vec<(usize, Vec<usize>)>, residents: Vec<Vec<usize>>) -> Instance {
        Instance {
            hospitals: hospitals
                .into_iter()
                .map(|(capacity, preference)| Hospital {
                    capacity,
                    preference,
                })
                .collect(),
            residents: residents
                .into_iter()
                .map(|preference| Resident { preference })
                .collect(),
        }
    }

    #[test]
    fn mutual_first_choices_match() {
        let i = inst(
            vec![(1, vec![0, 1]), (1, vec![1, 0])],
            vec![vec![0, 1], vec![1, 0]],
        );
        let m = solve_resident_optimal(&i).unwrap();
        assert_eq!(m.resident_to_hospital, vec![Some(0), Some(1)]);
        assert!(m.is_stable(&i));
    }

    #[test]
    fn contested_hospital_keeps_preferred_resident() {
        // Both residents want hospital 0 (capacity 1); it prefers 1.
        let i = inst(
            vec![(1, vec![1, 0]), (1, vec![0, 1])],
            vec![vec![0, 1], vec![0, 1]],
        );
        let m = solve_resident_optimal(&i).unwrap();
        assert_eq!(m.resident_to_hospital, vec![Some(1), Some(0)]);
        assert!(m.is_stable(&i));
    }

    #[test]
    fn capacity_two_admits_both() {
        let i = inst(vec![(2, vec![0, 1])], vec![vec![0], vec![0]]);
        let m = solve_resident_optimal(&i).unwrap();
        assert_eq!(m.matched_count(), 2);
        assert!(m.is_stable(&i));
    }

    #[test]
    fn unacceptable_pairs_stay_unmatched() {
        // Hospital finds resident 1 unacceptable; resident 0 refuses all.
        let i = inst(vec![(2, vec![0])], vec![vec![], vec![0]]);
        let m = solve_resident_optimal(&i).unwrap();
        assert_eq!(m.resident_to_hospital, vec![None, None]);
        assert!(m.is_stable(&i));
    }

    #[test]
    fn resident_optimal_weakly_beats_hospital_optimal_for_residents() {
        // Classic 3x3 marriage instance embedded as capacity-1 HR.
        let i = inst(
            vec![(1, vec![0, 1, 2]), (1, vec![1, 2, 0]), (1, vec![2, 0, 1])],
            vec![vec![1, 0, 2], vec![2, 1, 0], vec![0, 2, 1]],
        );
        let ro = solve_resident_optimal(&i).unwrap();
        let ho = solve_hospital_optimal(&i).unwrap();
        assert!(ro.is_stable(&i));
        assert!(ho.is_stable(&i));
        for r in 0..3 {
            let ro_rank = ro.resident_to_hospital[r].and_then(|h| i.resident_rank(r, h));
            let ho_rank = ho.resident_to_hospital[r].and_then(|h| i.resident_rank(r, h));
            assert!(
                ro_rank <= ho_rank,
                "resident {r}: resident-optimal rank {ro_rank:?} vs {ho_rank:?}"
            );
        }
    }

    #[test]
    fn rural_hospitals_same_matched_set() {
        let i = inst(
            vec![(1, vec![2, 0, 1]), (2, vec![0, 1, 2])],
            vec![vec![0, 1], vec![1], vec![1, 0]],
        );
        let ro = solve_resident_optimal(&i).unwrap();
        let ho = solve_hospital_optimal(&i).unwrap();
        let matched = |m: &Matching| {
            m.resident_to_hospital
                .iter()
                .map(|a| a.is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(matched(&ro), matched(&ho));
    }

    #[test]
    fn invalid_instance_is_rejected() {
        let i = inst(vec![(1, vec![5])], vec![vec![0]]);
        assert!(solve_resident_optimal(&i).is_err());
        assert!(solve_hospital_optimal(&i).is_err());
    }
}
