//! Problem instances and matchings.

use std::fmt;

/// A hospital: a capacity and a strict preference order over residents.
///
/// Residents absent from `preference` are unacceptable to the hospital and
/// will never be matched to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hospital {
    /// Maximum number of residents the hospital can admit.
    pub capacity: usize,
    /// Resident indices, most preferred first.
    pub preference: Vec<usize>,
}

/// A resident: a strict preference order over hospitals.
///
/// Hospitals absent from `preference` are unacceptable to the resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resident {
    /// Hospital indices, most preferred first.
    pub preference: Vec<usize>,
}

/// A Hospitals/Residents problem instance.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    /// The hospitals, indexed by position.
    pub hospitals: Vec<Hospital>,
    /// The residents, indexed by position.
    pub residents: Vec<Resident>,
}

/// Structural errors in an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// A preference list references an index out of range.
    IndexOutOfRange {
        /// Human-readable description of the offending list.
        context: &'static str,
        /// The offending index.
        index: usize,
    },
    /// A preference list mentions the same counterpart twice.
    DuplicatePreference {
        /// Human-readable description of the offending list.
        context: &'static str,
        /// The duplicated index.
        index: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::IndexOutOfRange { context, index } => {
                write!(
                    f,
                    "{context} preference references out-of-range index {index}"
                )
            }
            InstanceError::DuplicatePreference { context, index } => {
                write!(f, "{context} preference lists index {index} more than once")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl Instance {
    /// Validates index ranges and duplicate-free preference lists.
    pub fn validate(&self) -> Result<(), InstanceError> {
        let nh = self.hospitals.len();
        let nr = self.residents.len();
        for h in &self.hospitals {
            let mut seen = vec![false; nr];
            for &r in &h.preference {
                if r >= nr {
                    return Err(InstanceError::IndexOutOfRange {
                        context: "hospital",
                        index: r,
                    });
                }
                if seen[r] {
                    return Err(InstanceError::DuplicatePreference {
                        context: "hospital",
                        index: r,
                    });
                }
                seen[r] = true;
            }
        }
        for r in &self.residents {
            let mut seen = vec![false; nh];
            for &h in &r.preference {
                if h >= nh {
                    return Err(InstanceError::IndexOutOfRange {
                        context: "resident",
                        index: h,
                    });
                }
                if seen[h] {
                    return Err(InstanceError::DuplicatePreference {
                        context: "resident",
                        index: h,
                    });
                }
                seen[h] = true;
            }
        }
        Ok(())
    }

    /// Rank of resident `r` in hospital `h`'s list (0 = most preferred),
    /// or `None` if unacceptable.
    pub fn hospital_rank(&self, h: usize, r: usize) -> Option<usize> {
        self.hospitals[h].preference.iter().position(|&x| x == r)
    }

    /// Rank of hospital `h` in resident `r`'s list (0 = most preferred),
    /// or `None` if unacceptable.
    pub fn resident_rank(&self, r: usize, h: usize) -> Option<usize> {
        self.residents[r].preference.iter().position(|&x| x == h)
    }

    /// Whether the pair finds each other mutually acceptable.
    pub fn acceptable(&self, r: usize, h: usize) -> bool {
        self.hospital_rank(h, r).is_some() && self.resident_rank(r, h).is_some()
    }
}

/// An assignment of residents to hospitals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// For each resident, the hospital it is assigned to, if any.
    pub resident_to_hospital: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching over `n_residents` residents.
    pub fn empty(n_residents: usize) -> Self {
        Matching {
            resident_to_hospital: vec![None; n_residents],
        }
    }

    /// Residents assigned to hospital `h`.
    pub fn assigned_to(&self, h: usize) -> Vec<usize> {
        self.resident_to_hospital
            .iter()
            .enumerate()
            .filter_map(|(r, &a)| (a == Some(h)).then_some(r))
            .collect()
    }

    /// Number of matched residents.
    pub fn matched_count(&self) -> usize {
        self.resident_to_hospital.iter().flatten().count()
    }

    /// Whether the matching respects hospital capacities and mutual
    /// acceptability with respect to `inst`.
    pub fn is_feasible(&self, inst: &Instance) -> bool {
        if self.resident_to_hospital.len() != inst.residents.len() {
            return false;
        }
        let mut load = vec![0usize; inst.hospitals.len()];
        for (r, &assigned) in self.resident_to_hospital.iter().enumerate() {
            if let Some(h) = assigned {
                if h >= inst.hospitals.len() || !inst.acceptable(r, h) {
                    return false;
                }
                load[h] += 1;
            }
        }
        load.iter()
            .zip(&inst.hospitals)
            .all(|(&l, h)| l <= h.capacity)
    }

    /// All blocking pairs `(resident, hospital)` of the matching.
    ///
    /// A pair blocks when both sides find each other acceptable, the
    /// resident strictly prefers the hospital to its current assignment
    /// (or is unmatched), and the hospital either has spare capacity or
    /// strictly prefers the resident to its least-preferred admit.
    pub fn blocking_pairs(&self, inst: &Instance) -> Vec<(usize, usize)> {
        let mut blocking = Vec::new();
        for r in 0..inst.residents.len() {
            let current_rank = self.resident_to_hospital[r].and_then(|h| inst.resident_rank(r, h));
            for (rank, &h) in inst.residents[r].preference.iter().enumerate() {
                if let Some(cur) = current_rank {
                    if rank >= cur {
                        break; // Only strictly better hospitals can block.
                    }
                }
                if inst.hospital_rank(h, r).is_none() {
                    continue;
                }
                let admitted = self.assigned_to(h);
                let would_admit = if admitted.len() < inst.hospitals[h].capacity {
                    true
                } else {
                    // Hospital prefers r to its worst admitted resident.
                    let r_rank = inst.hospital_rank(h, r).expect("checked above");
                    admitted.iter().any(|&other| {
                        inst.hospital_rank(h, other)
                            .is_none_or(|other_rank| r_rank < other_rank)
                    })
                };
                if would_admit {
                    blocking.push((r, h));
                }
            }
        }
        blocking
    }

    /// Whether the matching is stable (feasible and without blocking
    /// pairs).
    pub fn is_stable(&self, inst: &Instance) -> bool {
        self.is_feasible(inst) && self.blocking_pairs(inst).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        // Two hospitals with capacity 1, two residents, opposed tastes.
        Instance {
            hospitals: vec![
                Hospital {
                    capacity: 1,
                    preference: vec![0, 1],
                },
                Hospital {
                    capacity: 1,
                    preference: vec![1, 0],
                },
            ],
            residents: vec![
                Resident {
                    preference: vec![0, 1],
                },
                Resident {
                    preference: vec![1, 0],
                },
            ],
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut inst = tiny();
        inst.residents[0].preference.push(9);
        assert!(matches!(
            inst.validate(),
            Err(InstanceError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicates() {
        let mut inst = tiny();
        inst.hospitals[0].preference.push(0);
        assert!(matches!(
            inst.validate(),
            Err(InstanceError::DuplicatePreference { .. })
        ));
    }

    #[test]
    fn mutually_preferred_assignment_is_stable() {
        let inst = tiny();
        let m = Matching {
            resident_to_hospital: vec![Some(0), Some(1)],
        };
        assert!(m.is_stable(&inst));
    }

    #[test]
    fn swapped_assignment_has_blocking_pairs() {
        // The textbook blocking-pair example from §5.4.2 of the paper:
        // (h_A, s_B) and (h_B, s_A) against everyone's preferences.
        let inst = tiny();
        let m = Matching {
            resident_to_hospital: vec![Some(1), Some(0)],
        };
        let blocks = m.blocking_pairs(&inst);
        assert!(blocks.contains(&(0, 0)));
        assert!(blocks.contains(&(1, 1)));
        assert!(!m.is_stable(&inst));
    }

    #[test]
    fn over_capacity_is_infeasible() {
        let inst = tiny();
        let m = Matching {
            resident_to_hospital: vec![Some(0), Some(0)],
        };
        assert!(!m.is_feasible(&inst));
    }

    #[test]
    fn unacceptable_assignment_is_infeasible() {
        let mut inst = tiny();
        inst.hospitals[0].preference = vec![1]; // Resident 0 unacceptable.
        let m = Matching {
            resident_to_hospital: vec![Some(0), None],
        };
        assert!(!m.is_feasible(&inst));
    }

    #[test]
    fn unmatched_resident_with_free_acceptable_hospital_blocks() {
        let inst = tiny();
        let m = Matching::empty(2);
        assert!(!m.is_stable(&inst));
        assert_eq!(m.matched_count(), 0);
    }
}
