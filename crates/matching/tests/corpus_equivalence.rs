//! Corpus-seeded equivalence between the instability-chaining allocator
//! (`chain::allocate`) and the deferred-acceptance solver.
//!
//! The blessed tapes in `tests/corpus/` pin down instances where the
//! two algorithms historically could diverge — equal-priority ties
//! resolved by index, displacement chains — and replay them through the
//! full differential oracle: feasibility, brute-force stability, and
//! exact equality with `solve_resident_optimal` on the induced
//! Hospitals/Residents instance.

use copart_check::corpus::{default_dir, load_dir};
use copart_check::oracles::matching::allocate_case;
use copart_check::{fnv1a64, Source};

#[test]
fn blessed_tapes_match_the_resident_optimal_solution() {
    let entries = load_dir(&default_dir()).expect("corpus directory must load");
    let matching: Vec<_> = entries
        .iter()
        .filter(|c| c.property == "matching-allocate-stable")
        .collect();
    assert!(
        !matching.is_empty(),
        "no blessed matching tapes under tests/corpus/"
    );
    for entry in matching {
        let mut src = Source::replay(&entry.tape);
        let out = allocate_case(&mut src);
        assert_eq!(
            fnv1a64(out.witness.as_bytes()),
            entry.witness_fnv,
            "{}: tape decodes to a different instance now ({}) — re-bless it",
            entry.name,
            out.witness
        );
        assert_eq!(
            out.verdict,
            Ok(()),
            "{}: allocate disagrees with the solver on {}",
            entry.name,
            out.witness
        );
    }
}
