//! A std-only fork-join pool for the workspace's embarrassingly parallel
//! sweeps: the ST offline search, the figure heatmaps, and the
//! per-mix experiment loops.
//!
//! The workspace is intentionally zero-third-party-dependency, so no
//! rayon: [`par_map`] and [`par_map_indexed`] spawn **scoped threads**
//! ([`std::thread::scope`]) over a shared chunk queue. Each worker
//! repeatedly claims the next unclaimed chunk of the input (an atomic
//! cursor — the degenerate but contention-free form of work stealing
//! where every worker steals from one shared tail), so a slow item never
//! idles the rest of the pool.
//!
//! # Determinism contract
//!
//! Parallel and serial runs must be **byte-identical**. Three rules make
//! that hold:
//!
//! 1. results are returned **in input order**, whatever order workers
//!    finished in (each worker tags results with their input index and
//!    the pool reassembles);
//! 2. the closure must depend only on `(index, item)` — never on thread
//!    identity, claim order, or shared mutable state;
//! 3. randomized tasks derive their stream from the task index via
//!    [`task_rng`], not from a generator that is advanced by *other*
//!    tasks.
//!
//! Under those rules `par_map(items, f)` equals
//! `items.iter().map(f).collect()` for every job count, and callers are
//! free to default to [`effective_jobs`] (the `--jobs N` /
//! `COPART_JOBS` knob, falling back to the machine's available
//! parallelism).
//!
//! # Panics
//!
//! A panicking task does not poison the pool: remaining workers drain
//! the queue, the scope joins, and the first panic (in worker order) is
//! re-raised on the caller thread with its original payload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use copart_rng::XorShift64Star;

/// Process-wide override installed by `--jobs N`. Zero means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count (the `--jobs N` flag). `None`
/// clears the override, returning control to `COPART_JOBS` / the
/// machine's available parallelism.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count sweeps run at: the [`set_jobs`] override if
/// installed, else a positive integer `COPART_JOBS`, else
/// [`std::thread::available_parallelism`] (1 when even that is unknown).
pub fn effective_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("COPART_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A deterministic per-task generator: the stream depends only on
/// `(base_seed, task_index)`, so a task draws the same randomness no
/// matter which worker claims it or how many workers exist.
///
/// The index is folded into the seed with the SplitMix64 increment
/// before one mixing round, so adjacent indices yield uncorrelated
/// streams even for small base seeds.
pub fn task_rng(base_seed: u64, task_index: u64) -> XorShift64Star {
    let mut s = base_seed
        ^ task_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    XorShift64Star::seed_from_u64(copart_rng::splitmix64(&mut s))
}

/// Utilization statistics of the most recent parallel sweep in this
/// process (serial fast-path runs report themselves as one busy worker).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Workers the sweep ran with.
    pub jobs: usize,
    /// Tasks (input items) executed.
    pub tasks: usize,
    /// Wall-clock nanoseconds from fork to join.
    pub wall_ns: u64,
    /// Summed per-worker busy nanoseconds (claim loop, task bodies).
    pub busy_ns: u64,
}

impl SweepStats {
    /// Fraction of the pool's capacity that was busy: `busy / (jobs ×
    /// wall)`. 1.0 means every worker computed for the whole sweep; low
    /// values mean workers idled at the join barrier.
    pub fn occupancy(&self) -> f64 {
        if self.wall_ns == 0 || self.jobs == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (self.wall_ns as f64 * self.jobs as f64)
    }
}

static LAST_SWEEP: Mutex<Option<SweepStats>> = Mutex::new(None);

/// Statistics of the most recent [`par_map`] / [`par_map_indexed`] call,
/// if any — the source for the bench's pool-occupancy telemetry gauge.
pub fn last_sweep() -> Option<SweepStats> {
    *LAST_SWEEP.lock().expect("stats mutex never poisoned")
}

fn record_sweep(stats: SweepStats) {
    *LAST_SWEEP.lock().expect("stats mutex never poisoned") = Some(stats);
}

/// Maps `f` over `items` on [`effective_jobs`] workers, returning
/// results in input order. See the module docs for the determinism
/// contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, 0, |_, item| f(item))
}

/// [`par_map`] with the task index passed to the closure and an explicit
/// chunk granularity: workers claim `chunk` consecutive items at a time
/// (0 picks a granularity of roughly four chunks per worker). Larger
/// chunks amortize claim traffic for sub-microsecond bodies; chunk 1 is
/// right for bodies that run milliseconds, like the policy evaluations.
pub fn par_map_indexed<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run(items, effective_jobs(), chunk, &f)
}

/// [`par_map_indexed`] with an explicit worker count, bypassing the
/// global knob — the determinism tests and the speedup bench compare
/// job counts side by side without racing on process state.
pub fn par_map_indexed_jobs<T, R, F>(items: &[T], jobs: usize, chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run(items, jobs, chunk, &f)
}

fn run<T, R, F>(items: &[T], jobs: usize, chunk: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    let chunk = if chunk == 0 {
        (n / (jobs * 4)).max(1)
    } else {
        chunk
    };
    let start = Instant::now();
    if jobs == 1 || n <= 1 {
        // Serial fast path: no threads, no claim traffic — and by the
        // determinism contract, the same output as any parallel run.
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let wall = start.elapsed().as_nanos() as u64;
        record_sweep(SweepStats {
            jobs: 1,
            tasks: n,
            wall_ns: wall,
            busy_ns: wall,
        });
        return out;
    }

    let cursor = AtomicUsize::new(0);
    let busy_total = AtomicU64::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let t0 = Instant::now();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        for (i, item) in items[lo..hi].iter().enumerate() {
                            local.push((lo + i, f(lo + i, item)));
                        }
                    }
                    busy_total.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    local
                })
            })
            .collect();
        // Join in worker order; the first panic payload is re-raised
        // after the scope has joined the remaining workers.
        let mut panic_payload = None;
        for handle in handles {
            match handle.join() {
                Ok(part) => parts.push(part),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    });
    record_sweep(SweepStats {
        jobs,
        tasks: n,
        wall_ns: start.elapsed().as_nanos() as u64,
        busy_ns: busy_total.load(Ordering::Relaxed),
    });

    // Reassemble in input order: every index appears exactly once across
    // the per-worker parts.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} computed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order_at_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            for chunk in [0, 1, 5, 300] {
                let got = par_map_indexed_jobs(&items, jobs, chunk, |i, &x| {
                    assert_eq!(i as u64, x);
                    x * x + 1
                });
                assert_eq!(got, expect, "jobs={jobs} chunk={chunk}");
            }
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(&empty, |&x| x), Vec::<u32>::new());
        assert_eq!(
            par_map_indexed_jobs(&[7u32], 8, 0, |i, &x| x + i as u32),
            vec![7]
        );
    }

    #[test]
    fn runs_every_task_exactly_once() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_indexed_jobs(&items, 7, 3, |_, &x| {
            HITS.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(HITS.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn propagates_panics_with_payload() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed_jobs(&items, 4, 1, |_, &x| {
                if x == 13 {
                    panic!("unlucky task");
                }
                x
            })
        });
        let payload = caught.expect_err("the task panic must surface");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload survives");
        assert_eq!(msg, "unlucky task");
    }

    #[test]
    fn task_rng_depends_only_on_seed_and_index() {
        let mut a = task_rng(42, 3);
        let mut b = task_rng(42, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        // Adjacent indices and seeds diverge immediately.
        assert_ne!(task_rng(42, 3).next_u64(), task_rng(42, 4).next_u64());
        assert_ne!(task_rng(42, 3).next_u64(), task_rng(43, 3).next_u64());
    }

    #[test]
    fn parallel_matches_serial_with_task_rng() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, _)| task_rng(9, i as u64).next_u64())
            .collect();
        let parallel = par_map_indexed_jobs(&items, 8, 1, |i, _| task_rng(9, i as u64).next_u64());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_stats_are_recorded_and_sane() {
        let items: Vec<u32> = (0..128).collect();
        let _ = par_map_indexed_jobs(&items, 4, 1, |_, &x| {
            // A body long enough that busy time registers.
            std::hint::black_box((0..500u32).fold(x, u32::wrapping_add))
        });
        let stats = last_sweep().expect("a sweep just ran");
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.tasks, 128);
        assert!(stats.wall_ns > 0);
        assert!(stats.occupancy() > 0.0 && stats.occupancy() <= 1.001);
    }

    #[test]
    fn jobs_override_wins_over_environment() {
        // Serialized against other tests by touching only the override.
        set_jobs(Some(3));
        assert_eq!(effective_jobs(), 3);
        set_jobs(None);
        assert!(effective_jobs() >= 1);
    }
}
