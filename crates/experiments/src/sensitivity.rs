//! Figures 11, 13, 14, 17: sensitivity sweeps and throughput.

use copart_core::metrics::geomean;
use copart_core::policies::{EvalOptions, PolicyKind};
use copart_core::CoPartParams;
use copart_workloads::{MixKind, WorkloadMix};

use crate::common::{default_opts, f3, Context, Table};

/// Figure 11: sensitivity of CoPart's fairness to the three key design
/// parameters — δ_P (performance threshold), Β (LLC miss-ratio demand
/// threshold), and Γ (memory-traffic-ratio demand threshold). Each series
/// is normalized to the paper-default setting.
pub fn fig11() {
    let mut ctx = Context::new();
    // The sensitivity study averages across the sensitive 4-app mixes.
    let kinds = [MixKind::HighLlc, MixKind::HighBw, MixKind::HighBoth];
    let opts = EvalOptions {
        total_periods: 80,
        measure_periods: 40,
        ..default_opts()
    };

    let sweep = |label: &str,
                 values: &[f64],
                 default_value: f64,
                 make: &(dyn Fn(f64) -> CoPartParams + Sync),
                 ctx: &mut Context| {
        // Every (value × mix) cell is an independent run from an
        // explicit seed: fan the whole sweep out on the parallel pool.
        let mixes: Vec<WorkloadMix> = kinds
            .iter()
            .map(|&k| WorkloadMix::paper_default(k))
            .collect();
        for mix in &mixes {
            ctx.prewarm(&mix.specs());
        }
        let cells: Vec<(usize, usize)> = (0..values.len())
            .flat_map(|vi| (0..mixes.len()).map(move |mi| (vi, mi)))
            .collect();
        let ctx_ref = &*ctx;
        let per_cell = copart_parallel::par_map_indexed(&cells, 1, |_, &(vi, mi)| {
            let params = make(values[vi]);
            let specs = mixes[mi].specs();
            let full = ctx_ref.solo_full_shared(&specs);
            let r = copart_core::policies::evaluate_copart_with_params(
                &ctx_ref.machine,
                &specs,
                &full,
                &ctx_ref.stream,
                &params,
                &opts,
            );
            r.unfairness.max(1e-6)
        });
        let unf: Vec<f64> = (0..values.len())
            .map(|vi| geomean(&per_cell[vi * mixes.len()..(vi + 1) * mixes.len()]))
            .collect();
        let default_idx = values
            .iter()
            .position(|&v| (v - default_value).abs() < 1e-12)
            .expect("default value is in the sweep");
        let norm = unf[default_idx].max(1e-9);
        println!("\n{label} (normalized to the paper default {default_value}):");
        let mut t = Table::new(&["value", "unfairness (norm.)"]);
        for (v, u) in values.iter().zip(&unf) {
            t.row(vec![format!("{v}"), f3(u / norm)]);
        }
        t.print();
    };

    println!("Figure 11 — sensitivity to the design parameters");
    println!("(geomean unfairness over the H-LLC, H-BW, H-Both mixes)");

    sweep(
        "(a) performance threshold δ_P",
        &[0.01, 0.03, 0.05, 0.20, 0.40],
        0.05,
        &|v| CoPartParams {
            delta_p: v,
            ..CoPartParams::default()
        },
        &mut ctx,
    );
    sweep(
        "(b) LLC miss ratio threshold Β",
        &[0.01, 0.02, 0.03, 0.06, 0.12],
        0.03,
        &|v| CoPartParams {
            miss_ratio_demand: v,
            miss_ratio_supply: (v / 3.0).min(0.01),
            ..CoPartParams::default()
        },
        &mut ctx,
    );
    sweep(
        "(c) memory traffic ratio threshold Γ",
        &[0.05, 0.10, 0.30, 0.60, 0.90],
        0.30,
        &|v| CoPartParams {
            traffic_ratio_demand: v,
            traffic_ratio_supply: (v / 3.0).min(0.10),
            ..CoPartParams::default()
        },
        &mut ctx,
    );
}

/// Figure 13: unfairness of every policy, swept over application counts
/// 3–6, geomean across the seven mixes, normalized to EQ.
pub fn fig13() {
    println!("Figure 13 — sensitivity to the application count");
    println!("(geomean over the 7 mixes, normalized to EQ; lower is better)");
    println!("Paper: CoPart is 23.3% better than EQ at 3 apps, 70.6% at 6.\n");
    count_sweep(|r| r.unfairness.max(1e-6), true);
}

/// Figure 17: throughput (geomean IPS) of every policy, swept over
/// application counts, normalized to EQ (higher is better).
pub fn fig17() {
    println!("Figure 17 — throughput vs application count");
    println!("(geomean IPS over the 7 mixes, normalized to EQ; higher is better)");
    println!("Paper: CoPart is comparable to or slightly better than the others.\n");
    count_sweep(|r| r.throughput.max(1.0), false);
}

fn count_sweep(
    metric: impl Fn(&copart_core::policies::EvalResult) -> f64,
    print_copart_gain: bool,
) {
    let mut ctx = Context::new();
    let opts = default_opts();
    let policies = PolicyKind::evaluated();
    let mut t = Table::new(&["apps", "EQ", "ST", "CAT-only", "MBA-only", "CoPart"]);
    let kinds: Vec<MixKind> = MixKind::all().into_iter().collect();
    for n in 3..=6usize {
        let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for results in ctx.policy_grid(&kinds, n, &opts, None) {
            let eq = metric(
                &results
                    .iter()
                    .find(|(p, _)| *p == PolicyKind::Equal)
                    .expect("EQ evaluated")
                    .1,
            );
            for (i, (_, r)) in results.iter().enumerate() {
                per_policy[i].push(if eq > 0.0 { metric(r) / eq } else { 1.0 });
            }
        }
        let mut cells = vec![n.to_string()];
        for series in &per_policy {
            cells.push(f3(geomean(series)));
        }
        if print_copart_gain {
            let copart = geomean(&per_policy[4]);
            println!(
                "  n={n}: CoPart improvement over EQ = {:.1}%",
                (1.0 - copart) * 100.0
            );
        }
        t.row(cells);
    }
    println!();
    t.emit(if print_copart_gain { "fig13" } else { "fig17" });
}

/// Figure 14: unfairness of every policy as the total LLC capacity is
/// swept from 7 to 11 ways, geomean over the seven mixes, normalized to
/// EQ.
pub fn fig14() {
    println!("Figure 14 — sensitivity to the total LLC capacity");
    println!("(4-app mixes; geomean over the 7 mixes, normalized to EQ)\n");
    let opts = default_opts();
    let policies = PolicyKind::evaluated();
    let mut t = Table::new(&["ways", "EQ", "ST", "CAT-only", "MBA-only", "CoPart"]);
    let kinds: Vec<MixKind> = MixKind::all().into_iter().collect();
    for ways in 7..=11u32 {
        let mut ctx = Context::with_ways(ways);
        let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for results in ctx.policy_grid(&kinds, 4, &opts, None) {
            let eq = results
                .iter()
                .find(|(p, _)| *p == PolicyKind::Equal)
                .expect("EQ evaluated")
                .1
                .unfairness
                .max(1e-6);
            for (i, (_, r)) in results.iter().enumerate() {
                per_policy[i].push((r.unfairness / eq).max(1e-6));
            }
        }
        let mut cells = vec![ways.to_string()];
        for series in &per_policy {
            cells.push(f3(geomean(series)));
        }
        t.row(cells);
    }
    t.emit("fig14");
}
