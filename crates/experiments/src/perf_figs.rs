//! Figures 1–3: solo performance heatmaps over (LLC ways × MBA level).
//!
//! Each tile is the benchmark's IPS at that allocation, normalized to the
//! best tile — exactly the quantity the paper plots. The harness prints
//! one matrix per benchmark (rows = MBA level, columns = way count) plus
//! the §4.1 anchor summary.

use copart_sim::{MachineConfig, MbaLevel};
use copart_workloads::{measure, Benchmark};

/// Figure 1: LLC-sensitive benchmarks.
pub fn fig1() {
    heatmaps(
        "Figure 1 — LLC-sensitive benchmarks",
        &[
            Benchmark::WaterNsquared,
            Benchmark::WaterSpatial,
            Benchmark::Raytrace,
        ],
    );
    anchors_ways();
}

/// Figure 2: memory bandwidth-sensitive benchmarks.
pub fn fig2() {
    heatmaps(
        "Figure 2 — memory bandwidth-sensitive benchmarks",
        &[Benchmark::OceanCp, Benchmark::Cg, Benchmark::Ft],
    );
    anchors_mba();
}

/// Figure 3: LLC- and memory bandwidth-sensitive benchmarks.
pub fn fig3() {
    heatmaps(
        "Figure 3 — LLC- & memory BW-sensitive benchmarks",
        &[Benchmark::Sp, Benchmark::OceanNcp, Benchmark::Fmm],
    );
    // §4.1: SP achieves similar performance at (8 ways, MBA 20) and
    // (3 ways, MBA 40).
    let cfg = MachineConfig::xeon_gold_6130();
    let spec = Benchmark::Sp.spec();
    let a = measure::measure_ips(&cfg, &spec, 8, MbaLevel::new(20));
    let b = measure::measure_ips(&cfg, &spec, 3, MbaLevel::new(40));
    println!(
        "\nSP equivalent states: IPS(8 ways, MBA 20) = {a:.3e}, IPS(3 ways, MBA 40) = {b:.3e} (ratio {:.2})",
        a / b
    );
}

fn heatmaps(title: &str, benches: &[Benchmark]) {
    let cfg = MachineConfig::xeon_gold_6130();
    println!("{title}");
    println!("(tiles: IPS normalized to the best allocation; rows = MBA level, cols = ways)\n");
    for b in benches {
        let spec = b.spec();
        let mut grid = Vec::new();
        let mut best = 0.0f64;
        for level in MbaLevel::all() {
            let mut row = Vec::new();
            for ways in 1..=cfg.llc_ways {
                let ips = measure::measure_ips(&cfg, &spec, ways, level);
                best = best.max(ips);
                row.push(ips);
            }
            grid.push((level, row));
        }
        println!("{} ({})", b.table2().short, spec.name);
        print!("      ");
        for ways in 1..=cfg.llc_ways {
            print!("  w{ways:<3}");
        }
        println!();
        for (level, row) in grid.iter().rev() {
            print!("m{:<4}", level.percent());
            for ips in row {
                print!("  {:.2} ", ips / best);
            }
            println!();
        }
        println!();
    }
}

fn anchors_ways() {
    let cfg = MachineConfig::xeon_gold_6130();
    println!("90%-performance way requirements (paper: WN 4, WS 3, RT 2):");
    for b in [
        Benchmark::WaterNsquared,
        Benchmark::WaterSpatial,
        Benchmark::Raytrace,
    ] {
        let w = measure::required_ways(&cfg, &b.spec(), 0.9);
        println!("  {}: {:?} ways", b.table2().short, w);
    }
}

fn anchors_mba() {
    let cfg = MachineConfig::xeon_gold_6130();
    println!("90%-performance MBA requirements (paper: OC 30, CG 20, FT 30):");
    for b in [Benchmark::OceanCp, Benchmark::Cg, Benchmark::Ft] {
        let l = measure::required_mba(&cfg, &b.spec(), 0.9).map(|l| l.percent());
        println!("  {}: {:?}%", b.table2().short, l);
    }
}
