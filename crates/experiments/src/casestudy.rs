//! Figure 15: runtime behaviour when batch workloads are consolidated
//! with a latency-critical (LC) workload (§6.3).
//!
//! memcached runs as the LC application under a 1 ms p95 SLO; Word Count
//! and Kmeans run as batch workloads managed by CoPart inside the budget
//! an outer Heracles-style server manager leaves them. The offered load
//! steps 75 krps → 150 krps at t ≈ 99.4 s and back at t ≈ 299.4 s; the
//! manager resizes the LC reservation at each step and CoPart re-adapts
//! the batch partition.

use std::time::Duration;

use copart_core::policies::PolicyKind;
use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::{SystemState, WaysBudget};
use copart_core::{metrics, CoPartParams};
use copart_rdt::{CbmMask, ClosId, MbaLevel, RdtBackend, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_telemetry::{CounterSnapshot, NullRecorder};
use copart_workloads::casestudy::{
    kmeans_spec, memcached_spec, wordcount_spec, LcModel, LcReservation, LoadTrace,
};
use copart_workloads::stream::StreamReference;

use crate::common::Table;

const PERIOD: Duration = Duration::from_millis(200);
const RUN_SECONDS: f64 = 400.0;
const BUCKET_SECONDS: f64 = 10.0;

struct BucketRow {
    t: f64,
    load: f64,
    p95_ms: f64,
    batch_unfairness: f64,
}

/// Runs and prints Figure 15.
pub fn fig15() {
    println!("Figure 15 — case study: memcached (LC) + Word Count + Kmeans (batch)");
    println!("load: 75 krps → 150 krps at t=99.4 s → 75 krps at t=299.4 s; SLO: p95 ≤ 1 ms\n");

    // The two 400 s drivers are independent machines; run them as a
    // two-task sweep on the parallel pool (only CoPart writes a trace).
    let mut cases =
        copart_parallel::par_map(&[PolicyKind::CoPart, PolicyKind::Equal], |&p| run_case(p))
            .into_iter();
    let (copart, eq) = (
        cases.next().expect("CoPart case ran"),
        cases.next().expect("EQ case ran"),
    );

    let mut t = Table::new(&[
        "t (s)",
        "load (krps)",
        "LC p95 (ms)",
        "batch unfairness CoPart",
        "batch unfairness EQ",
        "SLO",
    ]);
    for (c, e) in copart.iter().zip(&eq) {
        t.row(vec![
            format!("{:.0}", c.t),
            format!("{:.0}", c.load / 1000.0),
            format!("{:.3}", c.p95_ms),
            format!("{:.3}", c.batch_unfairness),
            format!("{:.3}", e.batch_unfairness),
            if c.p95_ms <= 1.0 { "met" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t.print();

    let avg = |rows: &[BucketRow]| {
        rows.iter().map(|r| r.batch_unfairness).sum::<f64>() / rows.len() as f64
    };
    println!(
        "\nmean batch unfairness: CoPart {:.3} vs EQ {:.3}",
        avg(&copart),
        avg(&eq)
    );
    println!(
        "Paper finding: CoPart sustains higher batch fairness than EQ across both load\n\
         levels, with a short transient right after each reservation change."
    );
}

fn run_case(policy: PolicyKind) -> Vec<BucketRow> {
    let machine_cfg = MachineConfig::xeon_gold_6130();
    let stream = StreamReference::compute(&machine_cfg, 4);
    let trace = LoadTrace::paper();
    let lc_model = LcModel::default();

    // Solo references for batch ground truth.
    let batch_specs = [wordcount_spec(4), kmeans_spec(4)];
    let batch_full: Vec<f64> = batch_specs
        .iter()
        .map(|s| copart_workloads::measure::measure_full(&machine_cfg, s).0)
        .collect();

    let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
    let lc_group = backend.add_workload(memcached_spec(8)).expect("LC fits");
    let batch_groups: Vec<ClosId> = batch_specs
        .iter()
        .map(|s| backend.add_workload(s.clone()).expect("batch fits"))
        .collect();

    let mut reservation = LcReservation::for_load(trace.load_at(0.0));
    apply_lc(&mut backend, lc_group, &reservation, machine_cfg.llc_ways);

    let budget = batch_budget(&reservation);
    let named: Vec<(ClosId, String)> = batch_groups
        .iter()
        .zip(&batch_specs)
        .map(|(g, s)| (*g, s.name.clone()))
        .collect();

    #[allow(clippy::large_enum_variant)] // Two locals; size is irrelevant.
    enum Driver {
        CoPart(Box<ConsolidationRuntime<SimBackend>>),
        Equal(SimBackend),
    }

    let mut driver = match policy {
        PolicyKind::CoPart => {
            let cfg = RuntimeConfig {
                params: CoPartParams::default(),
                manage_llc: true,
                manage_mba: true,
                budget,
                stream: stream.clone(),
                resilience: Default::default(),
                planner: Default::default(),
            };
            let mut rt = ConsolidationRuntime::new(backend, named, cfg).expect("state applies");
            // Record the whole CoPart run — including the profiling
            // probes and both load-step transients — as a JSONL trace.
            rt.set_recorder(crate::common::trace_sink("fig15_casestudy"));
            rt.profile().expect("profiling on the simulator");
            Driver::CoPart(Box::new(rt))
        }
        _ => {
            apply_equal_batch(&mut backend, &batch_groups, &budget);
            Driver::Equal(backend)
        }
    };

    let periods = (RUN_SECONDS / PERIOD.as_secs_f64()) as u32;
    let bucket_periods = (BUCKET_SECONDS / PERIOD.as_secs_f64()) as u32;
    let mut rows = Vec::new();
    let mut lc_prev: Option<CounterSnapshot> = None;
    let mut batch_prev: Vec<CounterSnapshot> = Vec::new();

    for k in 0..periods {
        let t = f64::from(k) * PERIOD.as_secs_f64();
        let load = trace.load_at(t);
        let new_res = LcReservation::for_load(load);
        if new_res != reservation {
            reservation = new_res;
            let b = batch_budget(&reservation);
            match &mut driver {
                Driver::CoPart(rt) => {
                    apply_lc(
                        rt.backend_mut(),
                        lc_group,
                        &reservation,
                        machine_cfg.llc_ways,
                    );
                    rt.set_budget(b).expect("budget applies");
                }
                Driver::Equal(be) => {
                    apply_lc(be, lc_group, &reservation, machine_cfg.llc_ways);
                    apply_equal_batch(be, &batch_groups, &b);
                }
            }
        }

        // Advance one period.
        match &mut driver {
            Driver::CoPart(rt) => {
                rt.run_period().expect("period runs");
            }
            Driver::Equal(be) => {
                be.advance(PERIOD).expect("sim advance");
            }
        }

        // Bucket boundaries: report LC latency and batch unfairness.
        if k % bucket_periods == 0 {
            let be = match &mut driver {
                Driver::CoPart(rt) => rt.backend_mut(),
                Driver::Equal(be) => be,
            };
            let lc_now = be.read_counters(lc_group).expect("LC live");
            let batch_now: Vec<CounterSnapshot> = batch_groups
                .iter()
                .map(|&g| be.read_counters(g).expect("batch live"))
                .collect();
            if let Some(prev) = &lc_prev {
                // The simulated memcached keeps all 8 cores pinned; only
                // the reserved cores serve requests, so the service
                // capacity scales with the reservation.
                let lc_ips = lc_now
                    .delta_since(prev)
                    .and_then(|d| d.rates())
                    .map(|r| r.ips * f64::from(reservation.lc_cores) / 8.0)
                    .unwrap_or(0.0);
                let slowdowns: Vec<f64> = batch_now
                    .iter()
                    .zip(&batch_prev)
                    .zip(&batch_full)
                    .map(|((now, prev), &full)| {
                        let ips = now
                            .delta_since(prev)
                            .and_then(|d| d.rates())
                            .map(|r| r.ips)
                            .unwrap_or(0.0);
                        metrics::slowdown(full, ips)
                    })
                    .collect();
                rows.push(BucketRow {
                    t,
                    load,
                    p95_ms: lc_model.p95_latency_ms(lc_ips, load),
                    batch_unfairness: metrics::unfairness(&slowdowns),
                });
            }
            lc_prev = Some(lc_now);
            batch_prev = batch_now;
        }
    }

    if let Driver::CoPart(rt) = &mut driver {
        let mut recorder = rt.set_recorder(Box::new(NullRecorder));
        if let Err(e) = recorder.flush() {
            eprintln!("warning: flushing case-study trace: {e}");
        }
    }
    rows
}

fn batch_budget(res: &LcReservation) -> WaysBudget {
    WaysBudget {
        first_way: res.lc_ways,
        total_ways: res.batch_ways,
        mba_cap: MbaLevel::new(res.batch_mba_cap),
    }
}

fn apply_lc(backend: &mut SimBackend, lc_group: ClosId, res: &LcReservation, machine_ways: u32) {
    let mask = CbmMask::contiguous(0, res.lc_ways, machine_ways).expect("reservation fits");
    backend.set_cbm(lc_group, mask).expect("LC group exists");
    backend
        .set_mba(lc_group, MbaLevel::MAX)
        .expect("LC group exists");
}

fn apply_equal_batch(backend: &mut SimBackend, groups: &[ClosId], budget: &WaysBudget) {
    let state = SystemState::equal_split(
        groups.len(),
        budget,
        SystemState::equal_mba_level(groups.len()).min(budget.mba_cap),
    );
    state
        .apply(backend, groups, budget)
        .expect("equal batch state applies");
}
