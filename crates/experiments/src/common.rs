//! Shared infrastructure for the experiment harness: cached measurement
//! context and plain-text table rendering.

use std::collections::HashMap;
use std::path::PathBuf;

use copart_core::policies::{self, EvalOptions, EvalResult, PolicyKind};
use copart_sim::{AppSpec, MachineConfig};
use copart_telemetry::{JsonlRecorder, NullRecorder, Recorder};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};

/// Cached per-session measurement context: machine configuration, STREAM
/// reference, and memoized solo full-resource IPS per spec (keyed by name
/// and core count).
pub struct Context {
    /// The simulated testbed.
    pub machine: MachineConfig,
    /// STREAM miss-rate reference table.
    pub stream: StreamReference,
    solo_cache: HashMap<(String, u32), f64>,
}

impl Context {
    /// Builds the context on the paper's testbed configuration.
    pub fn new() -> Context {
        let machine = MachineConfig::xeon_gold_6130();
        let stream = StreamReference::compute(&machine, 4);
        Context {
            machine,
            stream,
            solo_cache: HashMap::new(),
        }
    }

    /// Builds the context for a machine with a different total LLC way
    /// count (the Figure 14 sweep).
    pub fn with_ways(ways: u32) -> Context {
        let mut machine = MachineConfig::xeon_gold_6130();
        machine.llc_ways = ways;
        let stream = StreamReference::compute(&machine, 4);
        Context {
            machine,
            stream,
            solo_cache: HashMap::new(),
        }
    }

    /// Solo full-resource IPS for each spec (memoized).
    pub fn solo_full(&mut self, specs: &[AppSpec]) -> Vec<f64> {
        self.prewarm(specs);
        self.solo_full_shared(specs)
    }

    /// Fills the solo-IPS cache for `specs`, measuring the misses on the
    /// parallel pool (each spec solo run is independent). Parallel cell
    /// fan-out calls this first so the shared-`&self` lookups below hit.
    pub fn prewarm(&mut self, specs: &[AppSpec]) {
        let missing: Vec<AppSpec> = {
            let mut seen = std::collections::HashSet::new();
            specs
                .iter()
                .filter(|s| {
                    !self.solo_cache.contains_key(&(s.name.clone(), s.cores))
                        && seen.insert((s.name.clone(), s.cores))
                })
                .cloned()
                .collect()
        };
        let machine = &self.machine;
        let measured = copart_parallel::par_map_indexed(&missing, 1, |_, s| {
            copart_workloads::measure::measure_full(machine, s).0
        });
        for (s, v) in missing.into_iter().zip(measured) {
            self.solo_cache.insert((s.name, s.cores), v);
        }
    }

    /// Cache-only variant of [`Context::solo_full`] for use from worker
    /// threads: a miss is measured on the spot but *not* memoized (the
    /// cache is not shared mutable state across the pool).
    pub fn solo_full_shared(&self, specs: &[AppSpec]) -> Vec<f64> {
        specs
            .iter()
            .map(|s| {
                self.solo_cache
                    .get(&(s.name.clone(), s.cores))
                    .copied()
                    .unwrap_or_else(|| copart_workloads::measure::measure_full(&self.machine, s).0)
            })
            .collect()
    }

    /// Runs one `(mix, policy)` evaluation cell through `&self`, for
    /// cells fanned out on the parallel pool. Callers
    /// [`Context::prewarm`] the mix's specs first so the solo lookups
    /// are cache hits.
    pub fn run_policy_shared(
        &self,
        mix: &WorkloadMix,
        policy: PolicyKind,
        opts: &EvalOptions,
    ) -> EvalResult {
        let specs = mix.specs();
        let full = self.solo_full_shared(&specs);
        policies::evaluate_policy(&self.machine, &specs, &full, &self.stream, policy, opts)
    }

    /// Like [`Context::run_policy_shared`], but records a per-epoch
    /// JSONL decision trace as `<trace_dir()>/<trace_name>.jsonl`. Only
    /// valid for the dynamic policies (CAT-only, MBA-only, CoPart); the
    /// static ones run no controller and emit no epochs. Each cell
    /// writes its own trace file, so concurrent cells never interleave
    /// within one JSONL.
    pub fn run_policy_traced_shared(
        &self,
        mix: &WorkloadMix,
        policy: PolicyKind,
        opts: &EvalOptions,
        trace_name: &str,
    ) -> EvalResult {
        let specs = mix.specs();
        let full = self.solo_full_shared(&specs);
        let recorder = trace_sink(trace_name);
        let (result, mut recorder, _metrics) = policies::evaluate_policy_traced(
            &self.machine,
            &specs,
            &full,
            &self.stream,
            policy,
            opts,
            recorder,
        );
        if let Err(e) = recorder.flush() {
            eprintln!("warning: flushing trace {trace_name}: {e}");
        }
        result
    }

    /// The full `(mix × policy)` evaluation grid, fanned out cell-by-cell
    /// on the parallel pool: one row per entry of `kinds`, each row the
    /// five evaluated policies in plot order. Every cell runs on a fresh
    /// simulated machine from an explicit seed, so the grid is identical
    /// at every `--jobs` setting; with `trace_prefix`, each CoPart cell
    /// writes its own `<prefix>_<mix>.jsonl` decision trace.
    pub fn policy_grid(
        &mut self,
        kinds: &[MixKind],
        n_apps: usize,
        opts: &EvalOptions,
        trace_prefix: Option<&str>,
    ) -> Vec<Vec<(PolicyKind, EvalResult)>> {
        let mixes: Vec<WorkloadMix> = kinds
            .iter()
            .map(|&k| WorkloadMix::build(k, n_apps, self.machine.n_cores))
            .collect();
        for mix in &mixes {
            self.prewarm(&mix.specs());
        }
        let cells: Vec<(usize, PolicyKind)> = (0..mixes.len())
            .flat_map(|mi| PolicyKind::evaluated().iter().map(move |&p| (mi, p)))
            .collect();
        let ctx = &*self;
        let results = copart_parallel::par_map_indexed(&cells, 1, |_, &(mi, p)| {
            let mix = &mixes[mi];
            match trace_prefix {
                Some(prefix) if p == PolicyKind::CoPart => {
                    let name = format!("{prefix}_{}", kinds[mi].label().to_lowercase());
                    ctx.run_policy_traced_shared(mix, p, opts, &name)
                }
                _ => ctx.run_policy_shared(mix, p, opts),
            }
        });
        let mut rows: Vec<Vec<(PolicyKind, EvalResult)>> =
            kinds.iter().map(|_| Vec::new()).collect();
        for (&(mi, p), r) in cells.iter().zip(results) {
            rows[mi].push((p, r));
        }
        rows
    }
}

/// Directory experiment runs drop JSONL decision traces into:
/// `$REPRO_TRACE_DIR` when set, `results/` (relative to the working
/// directory) otherwise.
pub fn trace_dir() -> PathBuf {
    std::env::var("REPRO_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Opens a JSONL trace sink named `<name>.jsonl` under [`trace_dir`].
/// Falls back to a no-op recorder (with a warning) when the file cannot
/// be created, so figure runs never fail on trace I/O.
pub fn trace_sink(name: &str) -> Box<dyn Recorder + Send> {
    let dir = trace_dir();
    let path = dir.join(format!("{name}.jsonl"));
    match std::fs::create_dir_all(&dir).and_then(|()| JsonlRecorder::create(&path)) {
        Ok(r) => {
            eprintln!("(trace -> {})", path.display());
            Box::new(r)
        }
        Err(e) => {
            eprintln!("warning: cannot create {}: {e}", path.display());
            Box::new(NullRecorder)
        }
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

/// Whether `REPRO_FAST` asks for shrunk runs (any value but empty/`0`):
/// the CI smoke mode, trading statistical weight for minutes.
pub fn fast_mode() -> bool {
    std::env::var("REPRO_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Default evaluation lengths used by the figure harnesses (~30 s of
/// virtual time per run at the 200 ms period). Under [`fast_mode`]
/// every run is shrunk to smoke-test length — trends survive, absolute
/// numbers lose precision.
pub fn default_opts() -> EvalOptions {
    if fast_mode() {
        EvalOptions {
            total_periods: 40,
            measure_periods: 20,
            static_candidates: 8,
            static_probe_periods: 6,
            ..EvalOptions::default()
        }
    } else {
        EvalOptions::default()
    }
}

/// Renders an aligned plain-text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table and, when `REPRO_CSV_DIR` is set, also writes it
    /// as `<dir>/<name>.csv` for plotting.
    pub fn emit(&self, name: &str) {
        self.print();
        let Ok(dir) = std::env::var("REPRO_CSV_DIR") else {
            return;
        };
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| {
            let mut out = String::new();
            let csv_row = |cells: &[String]| {
                cells
                    .iter()
                    .map(|c| {
                        if c.contains(',') || c.contains('"') {
                            format!("\"{}\"", c.replace('"', "\"\""))
                        } else {
                            c.clone()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&csv_row(&self.header));
            out.push('\n');
            for row in &self.rows {
                out.push_str(&csv_row(row));
                out.push('\n');
            }
            std::fs::write(&path, out)
        }) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("(csv written to {})", path.display());
        }
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for i in 0..ncol {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a ratio to three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a rate in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        // Printing must not panic; width bookkeeping is internal.
        t.print();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(sci(12345.0), "1.23e4");
    }

    #[test]
    fn emit_writes_csv_when_directed() {
        let dir = std::env::temp_dir().join(format!("copart-csv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // SAFETY-free: tests in this binary run single-threaded with
        // respect to this env var (no other test touches it).
        std::env::set_var("REPRO_CSV_DIR", &dir);
        let mut t = Table::new(&["mix", "value"]);
        t.row(vec!["H-LLC".into(), "0.123".into()]);
        t.row(vec!["with,comma".into(), "0.5".into()]);
        t.emit("unit_test_table");
        std::env::remove_var("REPRO_CSV_DIR");
        let text = std::fs::read_to_string(dir.join("unit_test_table.csv")).unwrap();
        assert_eq!(text, "mix,value\nH-LLC,0.123\n\"with,comma\",0.5\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_sink_writes_jsonl_under_trace_dir() {
        use copart_telemetry::{TraceDecision, TraceEvent, TracePhase};
        let dir = std::env::temp_dir().join(format!("copart-traces-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Only this test touches REPRO_TRACE_DIR (cf. the CSV test above).
        std::env::set_var("REPRO_TRACE_DIR", &dir);
        let mut sink = trace_sink("unit_test_trace");
        sink.record(&TraceEvent {
            epoch: 0,
            time_ns: 42,
            phase: TracePhase::Profiling,
            decision: TraceDecision::Profiled,
            retry_count: 0,
            matching_rounds: 0,
            unfairness: 0.0,
            apps: Vec::new(),
            proposed: Vec::new(),
            applied: Vec::new(),
            fault: None,
        });
        sink.flush().unwrap();
        std::env::remove_var("REPRO_TRACE_DIR");
        let events = copart_telemetry::read_trace_file(dir.join("unit_test_trace.jsonl")).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time_ns, 42);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn context_memoizes_solo_measurements() {
        let mut ctx = Context::new();
        let specs = vec![copart_workloads::Benchmark::Swaptions.spec()];
        let first = ctx.solo_full(&specs);
        let second = ctx.solo_full(&specs);
        assert_eq!(first, second);
        assert!(first[0] > 0.0);
    }
}
