//! Tables 1 and 2 of the paper.

use copart_sim::{MachineConfig, MbaLevel};
use copart_workloads::{measure, Benchmark};

use crate::common::{sci, Table};

/// Table 1: the (simulated) system configuration.
pub fn table1() {
    let cfg = MachineConfig::xeon_gold_6130();
    let mut t = Table::new(&["Component", "Description"]);
    t.row(vec![
        "Processor".into(),
        format!(
            "Simulated Intel Xeon Gold 6130 @ {:.1}GHz, {} cores",
            cfg.freq_hz / 1e9,
            cfg.n_cores
        ),
    ]);
    t.row(vec![
        "L3 cache".into(),
        format!(
            "Shared, {}MB, {} ways ({} sets × {}B lines, 1/{} set-sampled)",
            cfg.llc_bytes() / (1024 * 1024),
            cfg.llc_ways,
            cfg.true_sets(),
            cfg.line_bytes,
            cfg.scale
        ),
    ]);
    t.row(vec![
        "Memory".into(),
        format!(
            "{:.0}GB/s total bandwidth, {:.0}ns unloaded latency",
            cfg.mem_bw_bytes_per_sec / 1e9,
            cfg.mem_latency_ns
        ),
    ]);
    t.row(vec![
        "MBA".into(),
        format!(
            "levels {}%–{}% in steps of {}%",
            MbaLevel::MIN.percent(),
            MbaLevel::MAX.percent(),
            MbaLevel::STEP
        ),
    ]);
    println!("Table 1 — system configuration (paper testbed, simulated)\n");
    t.print();
}

/// Table 2: benchmark categories and counter signatures, paper vs
/// measured on the simulator.
pub fn table2() {
    let cfg = MachineConfig::xeon_gold_6130();
    let mut t = Table::new(&[
        "bench",
        "category (paper)",
        "category (measured)",
        "acc/s paper",
        "acc/s measured",
        "miss/s paper",
        "miss/s measured",
    ]);
    for b in Benchmark::all() {
        let row = b.table2();
        let spec = b.spec();
        let (_, rates) = measure::measure_full(&cfg, &spec);
        let measured_cat = measure::classify(&cfg, &spec);
        t.row(vec![
            row.short.into(),
            row.category.to_string(),
            measured_cat.to_string(),
            sci(row.llc_accesses_per_sec),
            sci(rates.llc_accesses_per_sec),
            sci(row.llc_misses_per_sec),
            sci(rates.llc_misses_per_sec),
        ]);
    }
    println!("Table 2 — evaluated benchmarks, paper vs measured\n");
    t.print();
}
