//! Figures 4–6: fairness impact of joint LLC × MBA partitioning on the
//! three sensitive workload mixes.
//!
//! As in the paper, each tile is the unfairness of one *static* system
//! state — an LLC way vector crossed with an MBA level vector over the
//! four applications — normalized to the unfairness of running the mix
//! with no partitioning at all.

use copart_core::policies::{self, EvalOptions, PolicyKind};
use copart_core::state::{AllocationState, SystemState};
use copart_rdt::MbaLevel;
use copart_workloads::{MixKind, WorkloadMix};

use crate::common::Context;

/// LLC way vectors (4 applications, summing to 11 ways), in the style of
/// the paper's x-axis labels.
const LLC_SETTINGS: [[u32; 4]; 6] = [
    [3, 3, 3, 2], // Equal.
    [5, 3, 2, 1],
    [4, 3, 3, 1],
    [2, 3, 5, 1],
    [5, 4, 1, 1],
    [2, 2, 2, 5],
];

/// MBA level vectors (percent).
const MBA_SETTINGS: [[u8; 4]; 6] = [
    [100, 100, 100, 100],
    [30, 30, 30, 30],
    [20, 10, 100, 10],
    [40, 40, 10, 10],
    [10, 10, 100, 100],
    [60, 30, 20, 10],
];

fn eval_opts() -> EvalOptions {
    EvalOptions {
        total_periods: 40,
        measure_periods: 20,
        ..EvalOptions::default()
    }
}

fn run_heatmap(title: &str, kind: MixKind) {
    let mut ctx = Context::new();
    let mix = WorkloadMix::paper_default(kind);
    let specs = mix.specs();
    let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    let full = ctx.solo_full(&specs);
    let opts = eval_opts();

    // Normalization baseline: no partitioning at all (§4.2).
    let baseline = policies::evaluate_policy(
        &ctx.machine,
        &specs,
        &full,
        &ctx.stream,
        PolicyKind::Unpartitioned,
        &opts,
    );
    let base_unfairness = baseline.unfairness.max(1e-6);

    println!("{title}");
    println!("applications: {names:?}");
    println!(
        "tiles: unfairness normalized to the unpartitioned run ({:.4}); lower is better\n",
        baseline.unfairness
    );

    // All tiles of the heatmap run as one batch on the parallel pool,
    // row-major, and print after the fan-out returns them in order.
    let states: Vec<SystemState> = LLC_SETTINGS
        .iter()
        .flat_map(|llc| {
            MBA_SETTINGS.iter().map(|mba| SystemState {
                allocs: llc
                    .iter()
                    .zip(mba)
                    .map(|(&ways, &pct)| AllocationState {
                        ways,
                        mba: MbaLevel::new(pct),
                    })
                    .collect(),
            })
        })
        .collect();
    let tiles = policies::evaluate_static_states(&ctx.machine, &specs, &full, &states, &opts);

    print!("{:<18}", "LLC \\ MBA");
    for mba in &MBA_SETTINGS {
        print!("  {:<18}", format!("{mba:?}"));
    }
    println!();
    for (row, llc) in LLC_SETTINGS.iter().enumerate() {
        print!("{:<18}", format!("{llc:?}"));
        for r in &tiles[row * MBA_SETTINGS.len()..(row + 1) * MBA_SETTINGS.len()] {
            print!("  {:<18.3}", r.unfairness / base_unfairness);
        }
        println!();
    }
    println!();
}

/// Figure 4: the LLC-sensitive workload mix (WN WS RT SW).
pub fn fig4() {
    run_heatmap(
        "Figure 4 — fairness of joint partitioning, LLC-sensitive mix",
        MixKind::HighLlc,
    );
    println!(
        "Paper finding: fairness is set primarily by the LLC vector (WN needs ≥4 ways);\n\
         for a good LLC vector, fairness still varies across MBA vectors."
    );
}

/// Figure 5: the memory bandwidth-sensitive workload mix (OC CG FT SW).
pub fn fig5() {
    run_heatmap(
        "Figure 5 — fairness of joint partitioning, BW-sensitive mix",
        MixKind::HighBw,
    );
    println!(
        "Paper finding: fairness is set primarily by the MBA vector (starving OC/CG\n\
         at level 10 wrecks fairness); LLC vectors matter little."
    );
}

/// Figure 6: the LLC- & memory bandwidth-sensitive workload mix (SP ON FMM SW).
pub fn fig6() {
    run_heatmap(
        "Figure 6 — fairness of joint partitioning, LLC- & BW-sensitive mix",
        MixKind::HighBoth,
    );
    println!("Paper finding: fairness depends strongly on both vectors at once.");
}
