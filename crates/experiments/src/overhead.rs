//! Figure 16: time spent in one system-state-space exploration step
//! (`getNextSystemState`) as a function of the application count.
//!
//! The paper reports 10.6 / 11.8 / 12.7 / 14.4 µs for 3 / 4 / 5 / 6
//! applications — microsecond-scale and growing gently (the algorithm is
//! O(N²_A)). Absolute numbers here differ with the host CPU; the shape
//! (µs-scale, slow growth) is the reproduction target. The Criterion
//! bench `explore_overhead` measures the same quantity rigorously.

use std::time::Instant;

use copart_core::fsm::AppState;
use copart_core::next_state::{get_next_system_state, AppClassification};
use copart_core::state::{AllocationState, SystemState, WaysBudget};
use copart_rdt::MbaLevel;
use copart_rng::XorShift64Star;

use crate::common::Table;

/// Builds a representative classification/state pair for `n` apps.
pub fn synthetic_instance(n: usize, seed: u64) -> (SystemState, Vec<AppClassification>) {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let budget = WaysBudget::full_machine(11);
    let mut allocs = Vec::with_capacity(n);
    let mut remaining = budget.total_ways;
    for i in 0..n {
        let left = (n - i) as u32;
        let ways = if left == 1 {
            remaining
        } else {
            rng.gen_range(1..=(remaining - (left - 1)))
        };
        remaining -= ways;
        allocs.push(AllocationState {
            ways,
            mba: MbaLevel::new(rng.gen_range(1..=10u8) * 10),
        });
    }
    let apps = (0..n)
        .map(|_| {
            let pick = |r: &mut XorShift64Star| match r.gen_range(0..3u8) {
                0 => AppState::Supply,
                1 => AppState::Maintain,
                _ => AppState::Demand,
            };
            AppClassification {
                llc: pick(&mut rng),
                mba: pick(&mut rng),
                slowdown: rng.gen_range(1.0..3.0),
            }
        })
        .collect();
    (SystemState { allocs }, apps)
}

/// Runs and prints Figure 16.
pub fn fig16() {
    println!("Figure 16 — system state space exploration time");
    println!("Paper: 10.6 / 11.8 / 12.7 / 14.4 µs for 3–6 applications.\n");
    let budget = WaysBudget::full_machine(11);
    let mut t = Table::new(&["apps", "mean exploration step (µs)", "paper (µs)"]);
    let paper = [10.6, 11.8, 12.7, 14.4];
    for (k, n) in (3..=6usize).enumerate() {
        // Average across many random instances (and RNG states) to cover
        // the spread of classifier situations.
        const ITERS: u64 = 20_000;
        let mut rng = XorShift64Star::seed_from_u64(99);
        let instances: Vec<_> = (0..64).map(|s| synthetic_instance(n, s)).collect();
        let start = Instant::now();
        let mut sink = 0u32;
        for i in 0..ITERS {
            let (state, apps) = &instances[(i % 64) as usize];
            let out = get_next_system_state(state, apps, &budget, &mut rng, true, true);
            sink = sink.wrapping_add(out.state.total_ways());
        }
        let micros = start.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
        assert!(sink > 0, "keep the optimizer honest");
        t.row(vec![
            n.to_string(),
            format!("{micros:.2}"),
            format!("{:.1}", paper[k]),
        ]);
    }
    t.print();
    println!("\n(absolute numbers are host-dependent; the target is µs scale and O(N²) growth)");
}
