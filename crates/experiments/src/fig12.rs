//! Figure 12: unfairness of every policy on the seven 4-application
//! workload mixes, normalized to EQ, plus the geometric mean.
//!
//! Paper headline: CoPart achieves 57.3 %, 28.6 %, and 56.4 % lower
//! unfairness than EQ, CAT-only, and MBA-only on average, and is
//! comparable to ST.

use copart_core::metrics::geomean;
use copart_core::policies::PolicyKind;
use copart_workloads::MixKind;

use crate::common::{default_opts, f3, Context, Table};

/// Runs and prints Figure 12.
pub fn fig12() {
    let mut ctx = Context::new();
    let opts = default_opts();
    let policies = PolicyKind::evaluated();

    let mut table = Table::new(&[
        "mix",
        "EQ(abs)",
        "EQ",
        "ST",
        "CAT-only",
        "MBA-only",
        "CoPart",
        "CoPart/EQ",
    ]);
    // Per-policy normalized unfairness collected for the geomean column.
    let mut normalized: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];

    // All 7 mixes × 5 policies fan out as one grid on the parallel
    // pool (--jobs / COPART_JOBS); the CoPart cells drop their
    // per-epoch decision traces as results/fig12_<mix>.jsonl (see
    // common::trace_dir).
    let kinds: Vec<MixKind> = MixKind::all().into_iter().collect();
    let grid = ctx.policy_grid(&kinds, 4, &opts, Some("fig12"));
    for (kind, results) in kinds.iter().copied().zip(grid) {
        let eq_unfairness = results
            .iter()
            .find(|(p, _)| *p == PolicyKind::Equal)
            .expect("EQ is evaluated")
            .1
            .unfairness;
        let mut cells = vec![kind.label().to_string(), f3(eq_unfairness)];
        let mut copart_norm = f64::NAN;
        for (i, (p, r)) in results.iter().enumerate() {
            // Normalize to EQ as in the paper; guard the IS mix where EQ
            // unfairness can be ~0.
            let norm = if eq_unfairness > 1e-9 {
                r.unfairness / eq_unfairness
            } else {
                1.0
            };
            normalized[i].push(norm.max(1e-6));
            cells.push(f3(norm));
            if *p == PolicyKind::CoPart {
                copart_norm = norm;
            }
        }
        cells.push(f3(copart_norm));
        table.row(cells);
    }

    let mut cells = vec!["geomean".to_string(), "-".to_string()];
    let mut copart_gm = f64::NAN;
    for (i, (p, _)) in policies.iter().zip(&normalized).enumerate() {
        let gm = geomean(&normalized[i]);
        cells.push(f3(gm));
        if *p == PolicyKind::CoPart {
            copart_gm = gm;
        }
    }
    cells.push(f3(copart_gm));
    table.row(cells);

    println!("Figure 12 — unfairness normalized to EQ (lower is better)");
    println!("Paper: CoPart geomean ≈ 0.427 vs EQ (57.3% improvement),");
    println!("       ≈ 0.714 vs CAT-only (28.6%), ≈ 0.436 vs MBA-only (56.4%).\n");
    table.emit("fig12");
    println!(
        "\nCoPart improvement over EQ: {:.1}%",
        (1.0 - copart_gm) * 100.0
    );
}
