//! The head-to-head engine grid: every registered policy engine over
//! every compare scenario (see `copart_workloads::scenarios`), printed
//! as a paper-style table normalized to EQ.
//!
//! This is the experiments-harness view of the same grid `copart
//! compare` emits as JSONL/artifact; the CLI owns the machine-readable
//! output and determinism gate, this command owns the human summary and
//! the EQ-normalized geomean column EXPERIMENTS.md records.

use copart_core::metrics::geomean;
use copart_core::policies::{self, EvalResult, PolicyKind};
use copart_workloads::CompareScenario;

use crate::common::{default_opts, f3, Context, Table};

/// Runs and prints the engine × scenario head-to-head.
pub fn compare_engines() {
    let mut ctx = Context::new();
    let opts = default_opts();
    let engines = PolicyKind::registry();
    let scenarios = CompareScenario::all();

    let specs_per: Vec<Vec<copart_sim::AppSpec>> =
        scenarios.iter().map(|s| s.specs(&ctx.machine)).collect();
    for specs in &specs_per {
        ctx.prewarm(specs);
    }
    let full_per: Vec<Vec<f64>> = specs_per.iter().map(|s| ctx.solo_full_shared(s)).collect();

    let cells: Vec<(usize, PolicyKind)> = (0..scenarios.len())
        .flat_map(|si| engines.iter().map(move |&e| (si, e)))
        .collect();
    let ctx_ref = &ctx;
    let results: Vec<EvalResult> = copart_parallel::par_map_indexed(&cells, 1, |_, &(si, e)| {
        policies::evaluate_policy(
            &ctx_ref.machine,
            &specs_per[si],
            &full_per[si],
            &ctx_ref.stream,
            e,
            &opts,
        )
    });

    let mut header = vec!["scenario", "EQ(abs)"];
    header.extend(engines.iter().map(|e| e.label()));
    let mut table = Table::new(&header);
    let mut normalized: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    for (si, s) in scenarios.iter().enumerate() {
        let row_results: Vec<&EvalResult> = cells
            .iter()
            .zip(&results)
            .filter(|(&(ci, _), _)| ci == si)
            .map(|(_, r)| r)
            .collect();
        let eq = row_results
            .iter()
            .find(|r| r.policy == PolicyKind::Equal)
            .expect("EQ is registered")
            .unfairness;
        let mut cells_out = vec![s.name().to_string(), f3(eq)];
        for (ei, r) in row_results.iter().enumerate() {
            let norm = if eq > 1e-9 { r.unfairness / eq } else { 1.0 };
            normalized[ei].push(norm.max(1e-6));
            cells_out.push(f3(norm));
        }
        table.row(cells_out);
    }
    let mut cells_out = vec!["geomean".to_string(), "-".to_string()];
    for row in &normalized {
        cells_out.push(f3(geomean(row)));
    }
    table.row(cells_out);

    println!("Head-to-head — unfairness normalized to EQ (lower is better)");
    println!("Engines: the five Figure 12 policies plus the Utility and LFOC comparators.");
    println!("Scenarios: two paper anchors, the diurnal/flash-crowd LC curves, the bully.\n");
    table.emit("compare_engines");
}
