//! `repro` — regenerates every table and figure of the CoPart paper on
//! the simulated testbed.
//!
//! Each subcommand prints the rows/series of one paper artifact; `all`
//! runs everything. See EXPERIMENTS.md at the repository root for the
//! paper-vs-measured record.

mod ablations;
mod casestudy;
mod common;
mod compare;
mod fairness_figs;
mod fig12;
mod overhead;
mod perf_figs;
mod sensitivity;
mod tables;

use std::process::ExitCode;

const USAGE: &str = "\
Usage: repro <subcommand>

Paper artifacts:
  table1          System configuration (Table 1)
  table2          Benchmark characteristics (Table 2)
  fig1            Perf heatmaps: LLC-sensitive benchmarks (WN WS RT)
  fig2            Perf heatmaps: BW-sensitive benchmarks (OC CG FT)
  fig3            Perf heatmaps: LLC- & BW-sensitive benchmarks (SP ON FMM)
  fig4            Unfairness heatmap: LLC-sensitive mix
  fig5            Unfairness heatmap: BW-sensitive mix
  fig6            Unfairness heatmap: LLC- & BW-sensitive mix
  fig11           Sensitivity to design parameters (delta_P, B, Gamma)
  fig12           Unfairness of EQ/ST/CAT-only/MBA-only/CoPart x 7 mixes
  fig13           Sensitivity to the application count (3-6)
  fig14           Sensitivity to the total LLC capacity (7-11 ways)
  fig15           Case study: LC + batch runtime behaviour
  fig16           Overhead: state-space exploration time vs app count
  fig17           Throughput of all policies vs app count

Ablations (design choices of DESIGN.md section 6):
  ablate-matching HR matching vs greedy reallocation
  ablate-fsm      Cross-resource FSM awareness on/off
  ablate-retry    theta-retry random restarts on/off
  ablate-prefetch next-line hardware prefetcher on/off
  compare-utility UCP/dCat-style utility partitioning vs CoPart
  compare-engines Head-to-head: every registered engine (incl. LFOC
                  clustering) x every compare scenario, normalized to EQ

  all             Run everything (slow)

Options:
  --jobs N        Worker threads for the sweep fan-out (also COPART_JOBS;
                  default: the machine's available parallelism)

Environment:
  COPART_JOBS     Same as --jobs (the flag wins)
  REPRO_FAST      Non-empty/non-zero: shrink every run to smoke length
  REPRO_TRACE_DIR Where JSONL decision traces land (default: results/)
  REPRO_CSV_DIR   Also write each table as CSV under this directory
";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global `--jobs N` (anywhere on the line): worker count for the
    // parallel sweep engine.
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        let Some(value) = args.get(pos + 1) else {
            eprintln!("error: --jobs needs a value\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => copart_parallel::set_jobs(Some(n)),
            _ => {
                eprintln!("error: --jobs: cannot parse {value:?} (want a positive integer)\n");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        args.drain(pos..=pos + 1);
    }
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = |name: &str| -> bool {
        match name {
            "table1" => tables::table1(),
            "table2" => tables::table2(),
            "fig1" => perf_figs::fig1(),
            "fig2" => perf_figs::fig2(),
            "fig3" => perf_figs::fig3(),
            "fig4" => fairness_figs::fig4(),
            "fig5" => fairness_figs::fig5(),
            "fig6" => fairness_figs::fig6(),
            "fig11" => sensitivity::fig11(),
            "fig12" => fig12::fig12(),
            "fig13" => sensitivity::fig13(),
            "fig14" => sensitivity::fig14(),
            "fig15" => casestudy::fig15(),
            "fig16" => overhead::fig16(),
            "fig17" => sensitivity::fig17(),
            "ablate-matching" => ablations::matching(),
            "ablate-fsm" => ablations::fsm_awareness(),
            "ablate-retry" => ablations::retry(),
            "ablate-prefetch" => ablations::prefetch(),
            "compare-utility" => ablations::utility(),
            "compare-engines" => compare::compare_engines(),
            _ => return false,
        }
        true
    };
    if cmd == "all" {
        for name in [
            "table1",
            "table2",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablate-matching",
            "ablate-fsm",
            "ablate-retry",
            "ablate-prefetch",
            "compare-utility",
            "compare-engines",
        ] {
            println!("\n================ {name} ================\n");
            assert!(run(name));
        }
        return ExitCode::SUCCESS;
    }
    if run(cmd) {
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown subcommand {cmd:?}\n");
        eprint!("{USAGE}");
        ExitCode::FAILURE
    }
}
