//! Ablations of CoPart's design choices (DESIGN.md §6).
//!
//! Each harness runs CoPart and one degraded variant on the three highly
//! sensitive mixes and reports ground-truth unfairness side by side.

use copart_core::metrics::geomean;
use copart_core::policies::{self, EvalOptions};
use copart_core::CoPartParams;
use copart_workloads::{MixKind, WorkloadMix};

use crate::common::{default_opts, f3, Context, Table};

const KINDS: [MixKind; 3] = [MixKind::HighLlc, MixKind::HighBw, MixKind::HighBoth];

fn run_variants(title: &str, variants: &[(&str, CoPartParams)]) {
    let mut ctx = Context::new();
    let opts: EvalOptions = default_opts();
    let mut header: Vec<&str> = vec!["mix"];
    header.extend(variants.iter().map(|(n, _)| *n));
    let mut t = Table::new(&header);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    // Fan the (mix × variant) cells out on the parallel pool.
    let mixes: Vec<WorkloadMix> = KINDS
        .iter()
        .map(|&k| WorkloadMix::paper_default(k))
        .collect();
    for mix in &mixes {
        ctx.prewarm(&mix.specs());
    }
    let cells: Vec<(usize, usize)> = (0..KINDS.len())
        .flat_map(|ki| (0..variants.len()).map(move |vi| (ki, vi)))
        .collect();
    let ctx_ref = &ctx;
    let unf = copart_parallel::par_map_indexed(&cells, 1, |_, &(ki, vi)| {
        let specs = mixes[ki].specs();
        let full = ctx_ref.solo_full_shared(&specs);
        policies::evaluate_copart_with_params(
            &ctx_ref.machine,
            &specs,
            &full,
            &ctx_ref.stream,
            &variants[vi].1,
            &opts,
        )
        .unfairness
    });
    for (ki, kind) in KINDS.iter().enumerate() {
        let mut cells_row = vec![kind.label().to_string()];
        for (vi, s) in series.iter_mut().enumerate() {
            let u = unf[ki * variants.len() + vi];
            s.push(u.max(1e-6));
            cells_row.push(f3(u));
        }
        t.row(cells_row);
    }
    let mut cells = vec!["geomean".to_string()];
    for s in &series {
        cells.push(f3(geomean(s)));
    }
    t.row(cells);
    println!("{title}\n(absolute unfairness; lower is better)\n");
    t.print();
    println!();
}

/// HR matching (Algorithm 2) vs the greedy single-transfer allocator.
pub fn matching() {
    run_variants(
        "Ablation — Hospitals/Residents matching vs greedy reallocation",
        &[
            ("HR matching", CoPartParams::default()),
            (
                "greedy",
                CoPartParams {
                    use_hr_matching: false,
                    ..CoPartParams::default()
                },
            ),
        ],
    );
}

/// The §5.3 cross-resource FSM rule on vs off.
pub fn fsm_awareness() {
    run_variants(
        "Ablation — cross-resource FSM awareness",
        &[
            ("aware (paper)", CoPartParams::default()),
            (
                "unaware",
                CoPartParams {
                    cross_resource_awareness: false,
                    ..CoPartParams::default()
                },
            ),
        ],
    );
}

/// θ-retry random neighbor restarts on vs off.
pub fn retry() {
    run_variants(
        "Ablation — θ-retry random restarts",
        &[
            ("θ = 3 (paper)", CoPartParams::default()),
            (
                "θ = 0",
                CoPartParams {
                    theta_retries: 0,
                    ..CoPartParams::default()
                },
            ),
        ],
    );
}

/// The next-line prefetcher on vs off: solo anchor shifts and the H-Both
/// fairness comparison.
pub fn prefetch() {
    use copart_core::policies::{self, PolicyKind};
    use copart_sim::{MachineConfig, MbaLevel};
    use copart_workloads::stream::StreamReference;
    use copart_workloads::{measure, Benchmark};

    println!("Ablation — next-line hardware prefetcher\n");

    let base = MachineConfig::xeon_gold_6130();
    let mut with_pf = base.clone();
    with_pf.prefetch_next_line = true;

    let mut t = Table::new(&["bench", "IPS (no PF)", "IPS (PF)", "speedup"]);
    for b in [
        Benchmark::WaterNsquared,
        Benchmark::OceanCp,
        Benchmark::Cg,
        Benchmark::Sp,
    ] {
        let spec = b.spec();
        let off = measure::measure_ips(&base, &spec, base.llc_ways, MbaLevel::MAX);
        let on = measure::measure_ips(&with_pf, &spec, base.llc_ways, MbaLevel::MAX);
        t.row(vec![
            b.table2().short.to_string(),
            format!("{off:.3e}"),
            format!("{on:.3e}"),
            format!("{:.3}", on / off),
        ]);
    }
    t.print();

    // Does the controller still win with prefetching enabled?
    let mix = WorkloadMix::paper_default(MixKind::HighBoth);
    let specs = mix.specs();
    let opts = default_opts();
    for (label, cfg) in [("prefetch off", &base), ("prefetch on", &with_pf)] {
        let full = policies::solo_full_ips(cfg, &specs);
        let stream = StreamReference::compute(cfg, 4);
        let eq = policies::evaluate_policy(cfg, &specs, &full, &stream, PolicyKind::Equal, &opts);
        let co = policies::evaluate_policy(cfg, &specs, &full, &stream, PolicyKind::CoPart, &opts);
        println!(
            "\nH-Both with {label}: EQ unfairness {:.4}, CoPart {:.4} ({:.0}% better)",
            eq.unfairness,
            co.unfairness,
            (1.0 - co.unfairness / eq.unfairness.max(1e-9)) * 100.0
        );
    }
    println!(
        "\n(The calibrated models assume the prefetcher's average benefit is folded\n\
         into their timing constants, so the paper anchors are pinned with it off.)"
    );
}

/// Extra comparator: utility-based static LLC partitioning (UCP/dCat
/// style, the paper's closest related work) vs CoPart across the
/// sensitive mixes.
pub fn utility() {
    use copart_core::policies::PolicyKind;

    let mut ctx = Context::new();
    let opts = default_opts();
    println!("Comparator — utility-based LLC partitioning (UCP/dCat-style) vs CoPart");
    println!("(absolute unfairness; lower is better)\n");
    let mut t = Table::new(&["mix", "EQ", "Utility", "CoPart"]);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 3];
    const POLICIES: [PolicyKind; 3] = [PolicyKind::Equal, PolicyKind::Utility, PolicyKind::CoPart];
    let mixes: Vec<WorkloadMix> = KINDS
        .iter()
        .map(|&k| WorkloadMix::paper_default(k))
        .collect();
    for mix in &mixes {
        ctx.prewarm(&mix.specs());
    }
    let cells: Vec<(usize, usize)> = (0..KINDS.len())
        .flat_map(|ki| (0..POLICIES.len()).map(move |pi| (ki, pi)))
        .collect();
    let ctx_ref = &ctx;
    let unf = copart_parallel::par_map_indexed(&cells, 1, |_, &(ki, pi)| {
        ctx_ref
            .run_policy_shared(&mixes[ki], POLICIES[pi], &opts)
            .unfairness
    });
    for (ki, kind) in KINDS.iter().enumerate() {
        let mut row = vec![kind.label().to_string()];
        for (pi, s) in series.iter_mut().enumerate() {
            let u = unf[ki * POLICIES.len() + pi];
            s.push(u.max(1e-6));
            row.push(f3(u));
        }
        t.row(row);
    }
    let mut cells = vec!["geomean".to_string()];
    for s in &series {
        cells.push(f3(geomean(s)));
    }
    t.row(cells);
    t.print();
    println!(
        "\n(Utility maximizes hit *throughput*, not fairness: it happily starves a\n\
         low-utility application — the dCat/UCP weakness CoPart's slowdown-driven\n\
         matching avoids. It also ignores memory bandwidth entirely.)"
    );
}
