//! A low-overhead metrics registry: monotonic counters, gauges, and
//! fixed-bucket latency histograms with a [`MetricsRegistry::snapshot`]
//! API.
//!
//! The consolidation runtime feeds three histograms per run —
//! `explore_ns` (one `get_next_system_state` decision), `apply_ns` (one
//! backend programming pass), and `epoch_ns` (one end-to-end control
//! epoch) — plus counters for epochs, transfers, θ-retries and backend
//! calls. Names are `&'static str` so the hot path never allocates; the
//! registry is single-threaded by design (the runtime owns it), so no
//! atomics are needed.

use std::collections::BTreeMap;
use std::fmt;

/// Histogram bucket upper bounds in nanoseconds: 256 ns doubling up to
/// ~8.6 s, which brackets everything from a sub-microsecond matching
/// decision to a long profiling epoch. Samples above the last bound land
/// in an implicit overflow bucket.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 25] = {
    let mut bounds = [0u64; 25];
    let mut i = 0;
    while i < 25 {
        bounds[i] = 256u64 << i;
        i += 1;
    }
    bounds
};

/// A fixed-bucket latency histogram over [`LATENCY_BUCKET_BOUNDS_NS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Records one latency sample.
    pub fn observe_ns(&mut self, ns: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest sample seen, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`): the
    /// upper bound of the bucket containing that rank. Returns 0 when
    /// empty; `u64::MAX` when the rank falls in the overflow bucket.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LATENCY_BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(upper_bound_ns, count)`; the overflow
    /// bucket reports `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                (
                    LATENCY_BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX),
                    c,
                )
            })
    }
}

/// Counters, gauges and histograms under `&'static str` names.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments the named monotonic counter by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments the named monotonic counter by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to an arbitrary value.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a latency sample into the named histogram.
    pub fn observe_ns(&mut self, name: &'static str, ns: u64) {
        self.histograms.entry(name).or_default().observe_ns(ns);
    }

    /// The named histogram, if it has ever received a sample.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            gauges: self.gauges.iter().map(|(&k, &v)| (k, v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, v)| (k, v.clone()))
                .collect(),
        }
    }
}

/// A frozen copy of a [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, histogram)` for every histogram.
    pub histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsSnapshot {
    /// The named counter's value at snapshot time (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The named histogram at snapshot time.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, h)| h)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Human-readable rendering, one metric per line, used by the CLI's
    /// `--metrics` flag.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge   {name} = {v:.6}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "hist    {name}: count={} mean={} p50≤{} p99≤{} max={}",
                h.count(),
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.50) as f64),
                fmt_ns(h.quantile_ns(0.99) as f64),
                fmt_ns(h.max_ns() as f64),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("epochs");
        m.inc("epochs");
        m.add("epochs", 3);
        assert_eq!(m.counter("epochs"), 5);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("u"), None);
        m.set_gauge("u", 0.5);
        m.set_gauge("u", 0.25);
        assert_eq!(m.gauge("u"), Some(0.25));
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::default();
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [100u64, 200, 300, 100_000, 2_000_000] {
            h.observe_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 2_000_000);
        assert!((h.mean_ns() - 420_120.0).abs() < 1.0);
        // Rank 3 of 5 lands on the 300ns sample, in the ≤512ns bucket.
        assert_eq!(h.quantile_ns(0.5), 512);
        assert!(h.quantile_ns(1.0) >= 2_000_000);
        let total: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::default();
        h.observe_ns(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_ns(0.5), u64::MAX);
        assert_eq!(h.buckets().next(), Some((u64::MAX, 1)));
    }

    #[test]
    fn bucket_bounds_are_increasing() {
        for pair in LATENCY_BUCKET_BOUNDS_NS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(LATENCY_BUCKET_BOUNDS_NS[0], 256);
    }

    #[test]
    fn snapshot_is_a_frozen_copy() {
        let mut m = MetricsRegistry::new();
        m.inc("epochs");
        m.observe_ns("epoch_ns", 1000);
        let snap = m.snapshot();
        m.inc("epochs");
        m.observe_ns("epoch_ns", 2000);
        assert_eq!(snap.counter("epochs"), 1);
        assert_eq!(snap.histogram("epoch_ns").unwrap().count(), 1);
        assert_eq!(m.counter("epochs"), 2);
    }

    #[test]
    fn snapshot_renders_every_kind() {
        let mut m = MetricsRegistry::new();
        m.inc("epochs");
        m.set_gauge("unfairness", 0.125);
        m.observe_ns("epoch_ns", 1_500_000);
        let text = m.snapshot().to_string();
        assert!(text.contains("counter epochs = 1"));
        assert!(text.contains("gauge   unfairness = 0.125000"));
        assert!(text.contains("hist    epoch_ns: count=1"));
    }
}
