//! A low-overhead metrics registry: monotonic counters, gauges, and
//! fixed-bucket latency histograms with a [`MetricsRegistry::snapshot`]
//! API.
//!
//! The consolidation runtime feeds three histograms per run —
//! `explore_ns` (one `get_next_system_state` decision), `apply_ns` (one
//! backend programming pass), and `epoch_ns` (one end-to-end control
//! epoch) — plus counters for epochs, transfers, θ-retries and backend
//! calls. Names are `&'static str` so the hot path never allocates.
//!
//! All mutation goes through `&self`: the registry keeps its three maps
//! behind one internal mutex, so an `Arc<MetricsRegistry>` can be shared
//! between the epoch thread that records and a listener thread that
//! serves `/metrics`. The single lock is deliberate — a snapshot taken
//! mid-epoch still sees counters, gauges and histograms from one
//! consistent instant (never `epochs = N` next to an `epoch_ns` count of
//! `N - 1`), which per-metric atomics could not guarantee.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// Histogram bucket upper bounds in nanoseconds: 256 ns doubling up to
/// ~8.6 s, which brackets everything from a sub-microsecond matching
/// decision to a long profiling epoch. Samples above the last bound land
/// in an implicit overflow bucket.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 25] = {
    let mut bounds = [0u64; 25];
    let mut i = 0;
    while i < 25 {
        bounds[i] = 256u64 << i;
        i += 1;
    }
    bounds
};

/// A fixed-bucket latency histogram over [`LATENCY_BUCKET_BOUNDS_NS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Records one latency sample.
    pub fn observe_ns(&mut self, ns: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest sample seen, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`): the
    /// upper bound of the bucket containing that rank. Returns 0 when
    /// empty; `u64::MAX` when the rank falls in the overflow bucket.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LATENCY_BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(upper_bound_ns, count)`; the overflow
    /// bucket reports `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                (
                    LATENCY_BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX),
                    c,
                )
            })
    }
}

/// The registry's maps, guarded together by one mutex so readers always
/// see one consistent instant across all three kinds.
#[derive(Debug, Clone, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Counters, gauges and histograms under `&'static str` names.
///
/// Mutators take `&self`: the maps live behind a single internal mutex,
/// so the registry can be shared (`Arc<MetricsRegistry>`) between the
/// thread recording metrics and a thread snapshotting them.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl Clone for MetricsRegistry {
    fn clone(&self) -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The maps, recovered even if a panicking thread poisoned the lock —
    /// metrics are monotone bookkeeping, never left mid-invariant.
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Increments the named monotonic counter by 1.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments the named monotonic counter by `n`.
    pub fn add(&self, name: &'static str, n: u64) {
        *self.lock().counters.entry(name).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Overwrites the named counter — the snapshot/restore seam, used
    /// when a crash-recovered runtime re-adopts the counter values a
    /// persisted snapshot recorded. Normal accounting must go through
    /// [`MetricsRegistry::inc`]/[`MetricsRegistry::add`]; this is the
    /// one sanctioned break in counter monotonicity.
    pub fn set_counter(&self, name: &'static str, value: u64) {
        self.lock().counters.insert(name, value);
    }

    /// Sets the named gauge to an arbitrary value.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        self.lock().gauges.insert(name, value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records a latency sample into the named histogram.
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        self.lock()
            .histograms
            .entry(name)
            .or_default()
            .observe_ns(ns);
    }

    /// A copy of the named histogram, if it has ever received a sample.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// A point-in-time copy of every metric. Taken under the registry's
    /// single lock, so the counters, gauges and histograms in one
    /// snapshot are mutually consistent even while another thread
    /// records.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            gauges: inner.gauges.iter().map(|(&k, &v)| (k, v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k, v.clone()))
                .collect(),
        }
    }
}

/// A frozen copy of a [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, histogram)` for every histogram.
    pub histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsSnapshot {
    /// The named counter's value at snapshot time (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The named histogram at snapshot time.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, h)| h)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Human-readable rendering, one metric per line, used by the CLI's
    /// `--metrics` flag.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge   {name} = {v:.6}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "hist    {name}: count={} mean={} p50≤{} p99≤{} max={}",
                h.count(),
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.50) as f64),
                fmt_ns(h.quantile_ns(0.99) as f64),
                fmt_ns(h.max_ns() as f64),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("epochs");
        m.inc("epochs");
        m.add("epochs", 3);
        assert_eq!(m.counter("epochs"), 5);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn set_counter_overwrites_and_keeps_accumulating() {
        let m = MetricsRegistry::new();
        m.inc("epochs");
        m.set_counter("epochs", 41);
        m.inc("epochs");
        assert_eq!(m.counter("epochs"), 42);
        m.set_counter("fresh", 7);
        assert_eq!(m.counter("fresh"), 7);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("u"), None);
        m.set_gauge("u", 0.5);
        m.set_gauge("u", 0.25);
        assert_eq!(m.gauge("u"), Some(0.25));
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::default();
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [100u64, 200, 300, 100_000, 2_000_000] {
            h.observe_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 2_000_000);
        assert!((h.mean_ns() - 420_120.0).abs() < 1.0);
        // Rank 3 of 5 lands on the 300ns sample, in the ≤512ns bucket.
        assert_eq!(h.quantile_ns(0.5), 512);
        assert!(h.quantile_ns(1.0) >= 2_000_000);
        let total: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::default();
        h.observe_ns(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_ns(0.5), u64::MAX);
        assert_eq!(h.buckets().next(), Some((u64::MAX, 1)));
    }

    #[test]
    fn bucket_bounds_are_increasing() {
        for pair in LATENCY_BUCKET_BOUNDS_NS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(LATENCY_BUCKET_BOUNDS_NS[0], 256);
    }

    #[test]
    fn snapshot_is_a_frozen_copy() {
        let m = MetricsRegistry::new();
        m.inc("epochs");
        m.observe_ns("epoch_ns", 1000);
        let snap = m.snapshot();
        m.inc("epochs");
        m.observe_ns("epoch_ns", 2000);
        assert_eq!(snap.counter("epochs"), 1);
        assert_eq!(snap.histogram("epoch_ns").unwrap().count(), 1);
        assert_eq!(m.counter("epochs"), 2);
    }

    #[test]
    fn shared_across_threads_snapshots_consistently() {
        use std::sync::Arc;
        let m = Arc::new(MetricsRegistry::new());
        let writer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for i in 0..1000u64 {
                    // One epoch = one counter bump plus one latency sample,
                    // taken under the same lock acquisitions a real epoch
                    // driver performs.
                    m.inc("epochs");
                    m.observe_ns("epoch_ns", 1000 + i);
                }
            })
        };
        let reader = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let snap = m.snapshot();
                    let epochs = snap.counter("epochs");
                    let samples = snap.histogram("epoch_ns").map_or(0, |h| h.count());
                    // Writers bump the counter before observing the sample,
                    // so a consistent snapshot can be ahead by at most one.
                    assert!(
                        epochs == samples || epochs == samples + 1,
                        "inconsistent snapshot: epochs={epochs} samples={samples}"
                    );
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(m.counter("epochs"), 1000);
    }

    #[test]
    fn snapshot_renders_every_kind() {
        let m = MetricsRegistry::new();
        m.inc("epochs");
        m.set_gauge("unfairness", 0.125);
        m.observe_ns("epoch_ns", 1_500_000);
        let text = m.snapshot().to_string();
        assert!(text.contains("counter epochs = 1"));
        assert!(text.contains("gauge   unfairness = 0.125000"));
        assert!(text.contains("hist    epoch_ns: count=1"));
    }
}
