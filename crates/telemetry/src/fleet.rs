//! Fleet-wide metric aggregation: percentiles, per-node gauges, and
//! lifecycle counters.
//!
//! A fleet controller owns N per-node metric registries; operators ask
//! fleet-level questions — "what is the p99 slowdown across every
//! tenant?", "which nodes are persistently unfair?", "how many
//! migrations has rebalancing done?". [`FleetAggregator`] answers them
//! from per-epoch per-node observations without touching the node
//! registries on the hot path, and renders a deterministic JSON
//! document (sorted nodes, fixed field order) so fleet metric dumps are
//! byte-comparable across `--jobs` settings like everything else.

use crate::json::Json;

/// Distribution summary of one fleet-wide series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Percentiles {
    /// Number of samples summarized.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Summarizes a sample set (sorts in place; nearest-rank at
    /// `round((n-1)·p)`, the same estimator the planner-scale harness
    /// uses). Empty input yields all zeros.
    pub fn from_samples(samples: &mut [f64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("fleet samples are finite"));
        let pick = |p: f64| {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        Percentiles {
            count: samples.len() as u64,
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }

    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("p50".into(), Json::Num(self.p50)),
            ("p90".into(), Json::Num(self.p90)),
            ("p99".into(), Json::Num(self.p99)),
            ("max".into(), Json::Num(self.max)),
        ])
    }
}

/// One node's gauges as of the latest fleet epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeGauges {
    /// Applications currently placed on the node.
    pub apps: u64,
    /// Unfairness of the node's last adaptation period.
    pub unfairness: f64,
    /// The rebalancer's unfairness EWMA for the node.
    pub unfairness_ewma: f64,
}

/// Rolling fleet-level metrics: lifecycle counters plus the latest
/// epoch's distributions and per-node gauges.
#[derive(Debug, Clone, Default)]
pub struct FleetAggregator {
    /// Successful placements (initial admissions onto a node).
    pub placements: u64,
    /// Arrivals that could not be placed this epoch and were queued.
    pub deferrals: u64,
    /// Completed tenants evicted at end of service.
    pub departures: u64,
    /// Rebalancing migrations between nodes.
    pub migrations: u64,
    /// Nodes booted (first tenant placed).
    pub node_boots: u64,
    /// Nodes torn down (last tenant departed).
    pub node_teardowns: u64,
    /// Latest per-node gauges, indexed by node id.
    nodes: Vec<NodeGauges>,
    /// Latest epoch's fleet-wide per-node unfairness distribution.
    pub unfairness: Percentiles,
    /// Latest epoch's fleet-wide per-app slowdown distribution.
    pub slowdown: Percentiles,
}

impl FleetAggregator {
    /// An aggregator over `nodes` nodes, all gauges zero.
    pub fn new(nodes: usize) -> FleetAggregator {
        FleetAggregator {
            nodes: vec![NodeGauges::default(); nodes],
            ..FleetAggregator::default()
        }
    }

    /// Updates one node's gauges.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node id.
    pub fn set_node(&mut self, node: usize, gauges: NodeGauges) {
        self.nodes[node] = gauges;
    }

    /// The latest gauges of every node, indexed by node id.
    pub fn nodes(&self) -> &[NodeGauges] {
        &self.nodes
    }

    /// Records the epoch's fleet-wide distributions (sorts both sample
    /// sets in place).
    pub fn observe_epoch(&mut self, unfairness: &mut [f64], slowdowns: &mut [f64]) {
        self.unfairness = Percentiles::from_samples(unfairness);
        self.slowdown = Percentiles::from_samples(slowdowns);
    }

    /// Number of nodes currently hosting at least one application.
    pub fn active_nodes(&self) -> u64 {
        self.nodes.iter().filter(|n| n.apps > 0).count() as u64
    }

    /// Number of applications currently placed fleet-wide.
    pub fn running_apps(&self) -> u64 {
        self.nodes.iter().map(|n| n.apps).sum()
    }

    /// Renders the whole aggregate as a deterministic JSON document:
    /// counters, distributions, then per-node gauges in node-id order.
    /// Only active nodes are listed (a 1000-node fleet is mostly empty).
    pub fn render_json(&self) -> String {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.apps > 0)
            .map(|(id, n)| {
                Json::Obj(vec![
                    ("node".into(), Json::Num(id as f64)),
                    ("apps".into(), Json::Num(n.apps as f64)),
                    ("unfairness".into(), Json::Num(n.unfairness)),
                    ("unfairness_ewma".into(), Json::Num(n.unfairness_ewma)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("placements".into(), Json::Num(self.placements as f64)),
            ("deferrals".into(), Json::Num(self.deferrals as f64)),
            ("departures".into(), Json::Num(self.departures as f64)),
            ("migrations".into(), Json::Num(self.migrations as f64)),
            ("node_boots".into(), Json::Num(self.node_boots as f64)),
            (
                "node_teardowns".into(),
                Json::Num(self.node_teardowns as f64),
            ),
            ("active_nodes".into(), Json::Num(self.active_nodes() as f64)),
            ("running_apps".into(), Json::Num(self.running_apps() as f64)),
            ("unfairness".into(), self.unfairness.encode()),
            ("slowdown".into(), self.slowdown.encode()),
            ("nodes".into(), Json::Arr(nodes)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_nearest_rank() {
        let mut xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::from_samples(&mut xs);
        assert_eq!(p.count, 100);
        assert_eq!(p.p50, 51.0); // round(99 * 0.5) = 50 → xs[50]
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert_eq!(Percentiles::from_samples(&mut []), Percentiles::default());
    }

    #[test]
    fn aggregator_counts_active_nodes_and_renders_deterministically() {
        let mut agg = FleetAggregator::new(4);
        agg.set_node(
            2,
            NodeGauges {
                apps: 3,
                unfairness: 0.25,
                unfairness_ewma: 0.2,
            },
        );
        agg.placements = 3;
        agg.observe_epoch(&mut [0.25], &mut [1.0, 1.5, 2.0]);
        assert_eq!(agg.active_nodes(), 1);
        assert_eq!(agg.running_apps(), 3);
        let a = agg.render_json();
        let b = agg.render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"migrations\":0"));
        assert!(a.contains("\"node\":2"));
        assert!(!a.contains("\"node\":0"), "empty nodes are omitted");
    }
}
