//! Pluggable sinks for [`TraceEvent`]s.
//!
//! The consolidation runtime emits one event per control epoch through a
//! [`Recorder`]. Three sinks cover the deployment spectrum:
//!
//! * [`NullRecorder`] — the default; reports itself disabled so the
//!   runtime skips event construction entirely (the production
//!   fast path costs one virtual call per epoch),
//! * [`RingRecorder`] — a bounded in-memory buffer for tests and
//!   flight-recorder style "last N epochs" debugging,
//! * [`JsonlRecorder`] — streams each event as one JSON line to any
//!   `io::Write` (a `BufWriter<File>` via [`JsonlRecorder::create`]),
//!   the format the `trace_inspection` example and the experiment
//!   harness consume.

use crate::event::{TraceEvent, TraceParseError};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// A sink for per-epoch trace events.
pub trait Recorder {
    /// Whether the sink wants events at all. The runtime checks this
    /// before building a [`TraceEvent`], so a disabled sink costs one
    /// virtual call per epoch and nothing else.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one event. Implementations must not panic on I/O
    /// problems; they report them through [`Recorder::flush`].
    fn record(&mut self, event: &TraceEvent);

    /// Flushes buffered output, surfacing any deferred I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything and disables event construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// Keeps the most recent `capacity` events in memory, evicting the
/// oldest on overflow.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> RingRecorder {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the ring, yielding retained events oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into()
    }

    /// Drops all retained events.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
    }
}

/// Streams events as JSON lines to a writer.
///
/// `record` cannot return errors, so write failures are counted and the
/// first one is re-surfaced from [`Recorder::flush`].
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    out: W,
    written: u64,
    deferred_error: Option<io::Error>,
}

impl JsonlRecorder<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlRecorder<BufWriter<File>>> {
        Ok(JsonlRecorder::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Wraps an arbitrary writer (buffer it yourself if it is raw).
    pub fn new(out: W) -> JsonlRecorder<W> {
        JsonlRecorder {
            out,
            written: 0,
            deferred_error: None,
        }
    }

    /// Number of events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.deferred_error.is_some() {
            return;
        }
        let line = event.to_json_line();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.deferred_error = Some(e);
        } else {
            self.written += 1;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Parses a whole JSONL trace from a reader, one event per non-empty
/// line. Stops at the first malformed line with its line number.
pub fn parse_trace(reader: impl BufRead) -> Result<Vec<TraceEvent>, (usize, TraceParseError)> {
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| {
            (
                lineno + 1,
                TraceParseError::Schema(format!("I/O error reading line: {e}")),
            )
        })?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(TraceEvent::from_json_line(&line).map_err(|e| (lineno + 1, e))?);
    }
    Ok(events)
}

/// Reads a JSONL trace file written by [`JsonlRecorder`].
pub fn read_trace_file(path: impl AsRef<Path>) -> io::Result<Vec<TraceEvent>> {
    let file = File::open(path)?;
    parse_trace(io::BufReader::new(file)).map_err(|(lineno, e)| {
        io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceDecision, TracePhase};

    fn event(epoch: u64) -> TraceEvent {
        TraceEvent {
            epoch,
            time_ns: epoch * 1000,
            phase: TracePhase::Exploring,
            decision: TraceDecision::Transfer,
            retry_count: 0,
            matching_rounds: 1,
            unfairness: 0.1,
            apps: Vec::new(),
            proposed: Vec::new(),
            applied: Vec::new(),
            fault: None,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(&event(0));
        r.flush().unwrap();
    }

    #[test]
    fn ring_keeps_order_below_capacity() {
        let mut ring = RingRecorder::new(8);
        for epoch in 0..5 {
            ring.record(&event(epoch));
        }
        assert_eq!(ring.len(), 5);
        let epochs: Vec<u64> = ring.events().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ring = RingRecorder::new(3);
        for epoch in 0..10 {
            ring.record(&event(epoch));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        let epochs: Vec<u64> = ring.events().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![7, 8, 9], "oldest evicted first");
        assert_eq!(
            ring.into_events()
                .iter()
                .map(|e| e.epoch)
                .collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn ring_clear_empties() {
        let mut ring = RingRecorder::new(2);
        ring.record(&event(1));
        assert!(!ring.is_empty());
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_ring_panics() {
        let _ = RingRecorder::new(0);
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let mut sink = JsonlRecorder::new(Vec::new());
        for epoch in 0..4 {
            sink.record(&event(epoch));
        }
        sink.flush().unwrap();
        assert_eq!(sink.events_written(), 4);
        let bytes = sink.into_inner();
        let parsed = parse_trace(&bytes[..]).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[3], event(3));
    }

    #[test]
    fn parse_trace_skips_blank_lines_and_reports_bad_ones() {
        let good = event(0).to_json_line();
        let text = format!("{good}\n\n{good}\n");
        assert_eq!(parse_trace(text.as_bytes()).unwrap().len(), 2);
        let bad = format!("{good}\nnot json\n");
        let (lineno, _) = parse_trace(bad.as_bytes()).unwrap_err();
        assert_eq!(lineno, 2);
    }

    #[test]
    fn jsonl_write_errors_surface_in_flush() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlRecorder::new(Broken);
        sink.record(&event(0));
        sink.record(&event(1));
        assert_eq!(sink.events_written(), 0);
        assert!(sink.flush().is_err());
        // The error is consumed; a second flush succeeds.
        assert!(sink.flush().is_ok());
    }
}
