//! A minimal, dependency-free JSON value with a writer and a strict
//! recursive-descent parser.
//!
//! The observability layer serialises [`crate::TraceEvent`]s as JSONL
//! (one object per line). The offline build cannot pull `serde`, and the
//! schema is small and flat, so a hand-rolled value type is both simpler
//! and faster to compile. Only the subset of JSON the trace schema needs
//! is produced, but the parser accepts any well-formed JSON document.

use std::fmt;

/// A parsed JSON value. Object member order is preserved so encode →
/// parse → encode is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2⁵³ round-trip
    /// exactly, far beyond any epoch counter this crate emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// Containers may nest at most [`MAX_DEPTH`] levels; deeper documents
    /// are rejected with a parse error rather than recursing without
    /// bound (a `[[[[…` bomb would otherwise overflow the stack).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip float formatting; also
                    // covers integers ("3" for 3.0 — still valid JSON).
                    write!(f, "{x}")
                } else {
                    // JSON has no Infinity/NaN; `null` is the documented
                    // encoding (DESIGN.md, Observability).
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth [`Json::parse`] accepts. The trace
/// schema is flat (depth ≤ 3); 128 leaves generous headroom for foreign
/// documents while keeping the recursive-descent parser's stack usage
/// bounded on any platform.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Bounds container recursion: every `object()`/`array()` frame
    /// passes through here first, so a `[[[[…` bomb is rejected with a
    /// parse error instead of overflowing the stack.
    fn enter(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("containers nested deeper than 128 levels"));
        }
        self.depth += 1;
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let result = self.object_inner();
        self.depth -= 1;
        result
    }

    fn object_inner(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let result = self.array_inner();
        self.depth -= 1;
        result
    }

    fn array_inner(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1", "3.5", "1e9", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let again = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn object_round_trip_preserves_order_and_values() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Num(2.0)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s".into(), Json::Str("line\n\"quoted\" \\ tab\t".into())),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for x in [0.1, 1.0 / 3.0, 2.5e-7, 1.2345678901234567, 9e15] {
            let text = Json::Num(x).to_string();
            let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed, x, "{text}");
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"abc", "{} extra",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    /// Regression: `copart-check`'s json-depth oracle found that a
    /// `[[[[…` bomb recursed unbounded and overflowed the stack (corpus
    /// entry `json-depth-limit-bomb.case`). Depths at the limit parse;
    /// one past it is a parse error, not a crash.
    #[test]
    fn nesting_depth_is_bounded() {
        let nested = |d: usize| format!("{}0{}", "[".repeat(d), "]".repeat(d));
        let at_limit = nested(MAX_DEPTH);
        assert!(Json::parse(&at_limit).is_ok(), "depth {MAX_DEPTH} parses");
        let over = nested(MAX_DEPTH + 1);
        let err = Json::parse(&over).unwrap_err();
        assert!(err.msg.contains("nested"), "{err}");
        // Far beyond the limit — the pre-fix parser died here.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
        // Mixed object/array nesting counts every container level.
        let mixed = format!(
            "{}0{}",
            "{\"k\":[".repeat(MAX_DEPTH / 2 + 1),
            "]}".repeat(MAX_DEPTH / 2 + 1)
        );
        assert!(Json::parse(&mixed).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":false,\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
