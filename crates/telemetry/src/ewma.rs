//! Exponentially-weighted moving average.

/// An exponentially-weighted moving average over a scalar series.
///
/// Counter-derived rates are noisy at the 100 ms sampling periods CoPart
/// uses; the classifiers smooth them before comparing against thresholds so
/// a single noisy window does not trigger a spurious state transition.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a smoother with weight `alpha` given to each new sample.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Feeds a sample and returns the updated average, or `None` when no
    /// finite sample has ever been observed.
    ///
    /// Non-finite samples are ignored (the previous average, if any, is
    /// returned) so a corrupted reading cannot permanently poison the
    /// series. The no-observation case is explicit: a non-finite *first*
    /// sample yields `None` rather than a fabricated `0.0` — returning a
    /// zero rate during a pre-warm counter dropout would tell the
    /// classifiers the application went idle when in truth nothing has
    /// been measured yet.
    pub fn update(&mut self, sample: f64) -> Option<f64> {
        if !sample.is_finite() {
            return self.value;
        }
        let next = match self.value {
            None => sample,
            Some(v) => self.alpha * sample + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        Some(next)
    }

    /// The current average, if any sample has been observed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Overwrites the current average — the snapshot/restore seam.
    /// `restore(e.value())` on a fresh smoother with the same alpha
    /// resumes the series bit-exactly.
    pub fn restore(&mut self, value: Option<f64>) {
        self.value = value;
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_is_adopted_directly() {
        let mut e = Ewma::new(0.25);
        assert_eq!(e.update(8.0), Some(8.0));
        assert_eq!(e.value(), Some(8.0));
    }

    /// Regression: `copart-check`'s ewma oracle found that a non-finite
    /// *first* sample reported `0.0` (`unwrap_or(0.0)`), fabricating a
    /// zero rate during a pre-warm counter dropout (corpus entry
    /// `ewma-nonfinite-first-sample.case`). The no-observation case is
    /// now explicit.
    #[test]
    fn nonfinite_first_sample_reports_no_observation() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut e = Ewma::new(0.5);
            assert_eq!(e.update(bad), None, "no fabricated zero for {bad}");
            assert_eq!(e.value(), None);
            // The series starts cleanly at the first finite sample.
            assert_eq!(e.update(6.0), Some(6.0));
        }
    }

    #[test]
    fn converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        for _ in 0..32 {
            e.update(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_one_tracks_input_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        assert_eq!(e.update(7.0), Some(7.0));
    }

    #[test]
    fn ignores_non_finite_samples() {
        let mut e = Ewma::new(0.5);
        e.update(4.0);
        assert_eq!(e.update(f64::NAN), Some(4.0));
        assert_eq!(e.update(f64::INFINITY), Some(4.0));
        assert_eq!(e.value(), Some(4.0));
    }

    #[test]
    fn restore_resumes_the_series_bit_exactly() {
        let mut original = Ewma::new(0.3);
        for s in [4.0, 9.5, 2.25, 7.125] {
            original.update(s);
        }
        let mut resumed = Ewma::new(0.3);
        resumed.restore(original.value());
        for s in [1.0, 3.5, 8.0] {
            assert_eq!(original.update(s), resumed.update(s));
        }
        assert_eq!(
            original.value().map(f64::to_bits),
            resumed.value().map(f64::to_bits)
        );
        // Restoring None returns to the no-observation state.
        resumed.restore(None);
        assert_eq!(resumed.value(), None);
    }

    #[test]
    fn reset_forgets_history() {
        let mut e = Ewma::new(0.5);
        e.update(4.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(1.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
