//! Performance-counter telemetry for the CoPart reproduction.
//!
//! CoPart observes exactly three raw hardware events per application —
//! retired instructions, LLC accesses, and LLC misses (§3.2 of the paper,
//! collected through PAPI on the original testbed) — plus wall-clock time.
//! This crate provides the portable representation of those observations:
//!
//! * [`CounterSnapshot`] — a point-in-time reading of the raw counters,
//! * [`CounterDelta`] — the difference between two snapshots,
//! * [`Rates`] — derived per-second rates (IPS, accesses/s, misses/s) and
//!   the LLC miss ratio, which are the quantities the CoPart classifiers
//!   actually consume,
//! * [`SlidingWindow`] — a bounded history of snapshots with windowed rate
//!   queries, and
//! * [`Ewma`] — exponentially-weighted smoothing for noisy rate series.
//!
//! The types are backend-agnostic: the simulator backend and the resctrl
//! backend both produce [`CounterSnapshot`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod ewma;
mod rates;
mod window;

pub use counters::{CounterDelta, CounterSnapshot};
pub use ewma::Ewma;
pub use rates::{traffic_ratio, Rates};
pub use window::SlidingWindow;

/// Nanoseconds per second, used when converting deltas to rates.
pub const NS_PER_SEC: f64 = 1_000_000_000.0;
