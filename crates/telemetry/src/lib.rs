//! Performance-counter telemetry for the CoPart reproduction.
//!
//! CoPart observes exactly three raw hardware events per application —
//! retired instructions, LLC accesses, and LLC misses (§3.2 of the paper,
//! collected through PAPI on the original testbed) — plus wall-clock time.
//! This crate provides the portable representation of those observations:
//!
//! * [`CounterSnapshot`] — a point-in-time reading of the raw counters,
//! * [`CounterDelta`] — the difference between two snapshots,
//! * [`Rates`] — derived per-second rates (IPS, accesses/s, misses/s) and
//!   the LLC miss ratio, which are the quantities the CoPart classifiers
//!   actually consume,
//! * [`SlidingWindow`] — a bounded history of snapshots with windowed rate
//!   queries, and
//! * [`Ewma`] — exponentially-weighted smoothing for noisy rate series.
//!
//! The types are backend-agnostic: the simulator backend and the resctrl
//! backend both produce [`CounterSnapshot`]s.
//!
//! # Observability
//!
//! The crate also hosts the structured observability layer the
//! consolidation runtime threads through the stack (DESIGN.md
//! § Observability):
//!
//! * [`TraceEvent`] — one control epoch's decisions and measurements,
//! * [`Recorder`] — the pluggable sink trait, with [`NullRecorder`],
//!   [`RingRecorder`] and [`JsonlRecorder`] implementations,
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket latency
//!   [`Histogram`]s with a snapshot API,
//! * [`Json`] — the dependency-free JSON value backing the JSONL trace
//!   format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
mod ewma;
mod fleet;
pub mod json;
mod rates;
mod recorder;
mod registry;
mod window;

pub use counters::{CounterDelta, CounterSnapshot};
pub use event::{
    AllocSample, AppSample, FaultSample, TraceClass, TraceDecision, TraceEvent, TraceParseError,
    TracePhase,
};
pub use ewma::Ewma;
pub use fleet::{FleetAggregator, NodeGauges, Percentiles};
pub use json::{Json, JsonError};
pub use rates::{traffic_ratio, Rates};
pub use recorder::{
    parse_trace, read_trace_file, JsonlRecorder, NullRecorder, Recorder, RingRecorder,
};
pub use registry::{Histogram, MetricsRegistry, MetricsSnapshot, LATENCY_BUCKET_BOUNDS_NS};
pub use window::SlidingWindow;

/// Nanoseconds per second, used when converting deltas to rates.
pub const NS_PER_SEC: f64 = 1_000_000_000.0;
