//! The per-epoch trace event emitted by the consolidation runtime.
//!
//! One [`TraceEvent`] captures everything the controller knew and did in
//! one control epoch (one period of Figure 10's profile → explore → idle
//! loop): the per-application measurements (Eq 1 slowdowns, rates), the
//! classifier FSM states (§5.3), the system-wide unfairness (Eq 2), the
//! allocation the explorer *proposed* and the one actually *applied*,
//! plus Algorithm 1/2 diagnostics (θ-retry count, matching rounds).
//!
//! The types here are deliberately plain — strings and small enums, no
//! controller types — because `copart-telemetry` sits below `copart-core`
//! in the crate graph. The runtime converts its richer types into this
//! representation at emit time.
//!
//! Events serialise to JSONL (one [`TraceEvent::to_json_line`] per line)
//! and parse back with [`TraceEvent::from_json_line`]; the schema is
//! documented field-by-field in `DESIGN.md` § Observability.

use crate::json::{Json, JsonError};
use crate::Rates;
use std::fmt;

/// The controller phase a trace event was emitted from (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Initial per-application profiling (§5.4.1).
    Profiling,
    /// Actively exploring allocations (Algorithm 1).
    Exploring,
    /// Converged; monitoring for unfairness drift.
    Idle,
}

impl TracePhase {
    /// Stable wire name (lowercase).
    pub fn as_str(self) -> &'static str {
        match self {
            TracePhase::Profiling => "profiling",
            TracePhase::Exploring => "exploring",
            TracePhase::Idle => "idle",
        }
    }

    /// Parses a wire name produced by [`TracePhase::as_str`].
    pub fn from_wire(s: &str) -> Option<TracePhase> {
        match s {
            "profiling" => Some(TracePhase::Profiling),
            "exploring" => Some(TracePhase::Exploring),
            "idle" => Some(TracePhase::Idle),
            _ => None,
        }
    }
}

/// A classifier FSM state (§5.3) in wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClass {
    /// The application can give the resource up.
    Supply,
    /// The application is content with its share.
    Maintain,
    /// The application wants more of the resource.
    Demand,
}

impl TraceClass {
    /// Stable wire name (lowercase).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceClass::Supply => "supply",
            TraceClass::Maintain => "maintain",
            TraceClass::Demand => "demand",
        }
    }

    /// Parses a wire name produced by [`TraceClass::as_str`].
    pub fn from_wire(s: &str) -> Option<TraceClass> {
        match s {
            "supply" => Some(TraceClass::Supply),
            "maintain" => Some(TraceClass::Maintain),
            "demand" => Some(TraceClass::Demand),
            _ => None,
        }
    }
}

/// What the controller decided this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecision {
    /// A profiling probe completed (one event per profiled application).
    Profiled,
    /// The matching produced a transfer and the new state was applied.
    Transfer,
    /// The matching found no transfer; a random θ-retry neighbor was
    /// applied instead (Algorithm 1 line 9).
    ThetaRetry,
    /// Retries exhausted; the best state seen was restored and the
    /// controller went idle.
    Converged,
    /// Idle monitoring — nothing changed.
    Monitor,
    /// Idle unfairness drifted past the re-exploration threshold; the
    /// controller is exploring again.
    ReExplore,
}

impl TraceDecision {
    /// Stable wire name (snake_case).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceDecision::Profiled => "profiled",
            TraceDecision::Transfer => "transfer",
            TraceDecision::ThetaRetry => "theta_retry",
            TraceDecision::Converged => "converged",
            TraceDecision::Monitor => "monitor",
            TraceDecision::ReExplore => "re_explore",
        }
    }

    /// Parses a wire name produced by [`TraceDecision::as_str`].
    pub fn from_wire(s: &str) -> Option<TraceDecision> {
        match s {
            "profiled" => Some(TraceDecision::Profiled),
            "transfer" => Some(TraceDecision::Transfer),
            "theta_retry" => Some(TraceDecision::ThetaRetry),
            "converged" => Some(TraceDecision::Converged),
            "monitor" => Some(TraceDecision::Monitor),
            "re_explore" => Some(TraceDecision::ReExplore),
            _ => None,
        }
    }
}

/// One application's view in a trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSample {
    /// Workload name (stable across the run).
    pub name: String,
    /// Measured instructions per second this epoch.
    pub ips: f64,
    /// Eq 1 slowdown: solo-full-machine IPS over achieved IPS.
    pub slowdown: f64,
    /// LLC classifier FSM state after this epoch's update.
    pub llc_state: TraceClass,
    /// MBA classifier FSM state after this epoch's update.
    pub mba_state: TraceClass,
    /// LLC miss ratio this epoch.
    pub miss_ratio: f64,
    /// LLC accesses per second this epoch.
    pub llc_accesses_per_sec: f64,
    /// LLC misses per second this epoch.
    pub llc_misses_per_sec: f64,
}

impl AppSample {
    /// Builds a sample from a name, Eq 1 slowdown, FSM states and the
    /// telemetry [`Rates`] measured this epoch.
    pub fn from_rates(
        name: &str,
        slowdown: f64,
        llc_state: TraceClass,
        mba_state: TraceClass,
        rates: &Rates,
    ) -> AppSample {
        AppSample {
            name: name.to_string(),
            ips: rates.ips,
            slowdown,
            llc_state,
            mba_state,
            miss_ratio: rates.miss_ratio,
            llc_accesses_per_sec: rates.llc_accesses_per_sec,
            llc_misses_per_sec: rates.llc_misses_per_sec,
        }
    }
}

/// One application's allocation in a (proposed or applied) system state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSample {
    /// Number of LLC ways granted.
    pub ways: u32,
    /// MBA throttle percentage (10–100).
    pub mba_percent: u8,
}

/// Fault-handling activity within one control epoch.
///
/// Present on an event only when the runtime observed or worked around a
/// backend fault this epoch; fault-free epochs omit the field entirely,
/// so fault-free traces are byte-identical to those of a build with no
/// fault machinery wired in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSample {
    /// Applications whose counter read failed this epoch; the runtime
    /// held their FSM state and substituted EWMA'd rates (degraded mode).
    pub degraded: Vec<String>,
    /// Transient (`Busy`) schemata writes retried this epoch, across all
    /// apply and rollback attempts.
    pub write_retries: u32,
    /// Whether a partition apply failed mid-way and the previous
    /// partition was rolled back.
    pub rolled_back: bool,
}

impl FaultSample {
    /// An empty record (nothing happened). The runtime drops empty
    /// samples instead of emitting them.
    pub fn new() -> FaultSample {
        FaultSample {
            degraded: Vec::new(),
            write_retries: 0,
            rolled_back: false,
        }
    }

    /// Whether the sample records no fault activity at all.
    pub fn is_empty(&self) -> bool {
        self.degraded.is_empty() && self.write_retries == 0 && !self.rolled_back
    }
}

impl Default for FaultSample {
    fn default() -> FaultSample {
        FaultSample::new()
    }
}

/// One control epoch of the consolidation runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone epoch counter (starts at 0, increments per event).
    pub epoch: u64,
    /// Backend wall-clock at emit time, in nanoseconds.
    pub time_ns: u64,
    /// Controller phase (Figure 10).
    pub phase: TracePhase,
    /// What the controller decided this epoch.
    pub decision: TraceDecision,
    /// Algorithm 1 θ-retry counter at the end of the epoch.
    pub retry_count: u32,
    /// Rounds the Algorithm 2 matching ran this epoch (0 when no
    /// matching was attempted).
    pub matching_rounds: u32,
    /// Eq 2 unfairness (σ/μ of weighted slowdowns) this epoch.
    pub unfairness: f64,
    /// Per-application measurements, in group order.
    pub apps: Vec<AppSample>,
    /// The allocation the explorer proposed this epoch (equals
    /// `applied` when the proposal was accepted; empty during
    /// profiling and idle monitoring).
    pub proposed: Vec<AllocSample>,
    /// The allocation in force at the end of the epoch, in group order.
    pub applied: Vec<AllocSample>,
    /// Fault-handling activity this epoch; `None` (and absent from the
    /// JSONL) on fault-free epochs.
    pub fault: Option<FaultSample>,
}

/// An error turning a JSONL line back into a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceParseError {
    /// The line was not well-formed JSON.
    Json(JsonError),
    /// The JSON was well-formed but did not match the schema.
    Schema(String),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Json(e) => write!(f, "{e}"),
            TraceParseError::Schema(msg) => write!(f, "trace schema error: {msg}"),
        }
    }
}

impl std::error::Error for TraceParseError {}

impl From<JsonError> for TraceParseError {
    fn from(e: JsonError) -> TraceParseError {
        TraceParseError::Json(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, TraceParseError> {
    Err(TraceParseError::Schema(msg.into()))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, TraceParseError> {
    obj.get(key)
        .ok_or_else(|| TraceParseError::Schema(format!("missing field '{key}'")))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, TraceParseError> {
    match field(obj, key)? {
        // Non-finite floats encode as null (JSON has no Infinity); an
        // infinite slowdown means "no progress against a live
        // reference" and must survive the round trip.
        Json::Null => Ok(f64::INFINITY),
        v => v
            .as_f64()
            .ok_or_else(|| TraceParseError::Schema(format!("field '{key}' is not a number"))),
    }
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, TraceParseError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| TraceParseError::Schema(format!("field '{key}' is not a u64")))
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, TraceParseError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| TraceParseError::Schema(format!("field '{key}' is not a string")))
}

fn num(x: f64) -> Json {
    Json::Num(x)
}

impl TraceEvent {
    /// Serialises the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let apps = self
            .apps
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(a.name.clone())),
                    ("ips".into(), num(a.ips)),
                    ("slowdown".into(), num(a.slowdown)),
                    ("llc_state".into(), Json::Str(a.llc_state.as_str().into())),
                    ("mba_state".into(), Json::Str(a.mba_state.as_str().into())),
                    ("miss_ratio".into(), num(a.miss_ratio)),
                    ("llc_aps".into(), num(a.llc_accesses_per_sec)),
                    ("llc_mps".into(), num(a.llc_misses_per_sec)),
                ])
            })
            .collect();
        let allocs = |xs: &[AllocSample]| {
            Json::Arr(
                xs.iter()
                    .map(|x| {
                        Json::Obj(vec![
                            ("ways".into(), num(f64::from(x.ways))),
                            ("mba".into(), num(f64::from(x.mba_percent))),
                        ])
                    })
                    .collect(),
            )
        };
        let mut fields = vec![
            ("epoch".into(), num(self.epoch as f64)),
            ("time_ns".into(), num(self.time_ns as f64)),
            ("phase".into(), Json::Str(self.phase.as_str().into())),
            ("decision".into(), Json::Str(self.decision.as_str().into())),
            ("retry_count".into(), num(f64::from(self.retry_count))),
            (
                "matching_rounds".into(),
                num(f64::from(self.matching_rounds)),
            ),
            ("unfairness".into(), num(self.unfairness)),
            ("apps".into(), Json::Arr(apps)),
            ("proposed".into(), allocs(&self.proposed)),
            ("applied".into(), allocs(&self.applied)),
        ];
        if let Some(fault) = &self.fault {
            fields.push((
                "fault".into(),
                Json::Obj(vec![
                    (
                        "degraded".into(),
                        Json::Arr(
                            fault
                                .degraded
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                    ("write_retries".into(), num(f64::from(fault.write_retries))),
                    ("rolled_back".into(), Json::Bool(fault.rolled_back)),
                ]),
            ));
        }
        Json::Obj(fields).to_string()
    }

    /// Parses one JSONL line produced by [`TraceEvent::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<TraceEvent, TraceParseError> {
        let v = Json::parse(line)?;
        let phase = str_field(&v, "phase")?;
        let phase = TracePhase::from_wire(phase)
            .ok_or_else(|| TraceParseError::Schema(format!("unknown phase '{phase}'")))?;
        let decision = str_field(&v, "decision")?;
        let decision = TraceDecision::from_wire(decision)
            .ok_or_else(|| TraceParseError::Schema(format!("unknown decision '{decision}'")))?;
        let apps = field(&v, "apps")?
            .as_arr()
            .ok_or_else(|| TraceParseError::Schema("'apps' is not an array".into()))?
            .iter()
            .map(|a| -> Result<AppSample, TraceParseError> {
                let class = |key: &str| -> Result<TraceClass, TraceParseError> {
                    let s = str_field(a, key)?;
                    TraceClass::from_wire(s).ok_or_else(|| {
                        TraceParseError::Schema(format!("unknown class '{s}' in '{key}'"))
                    })
                };
                Ok(AppSample {
                    name: str_field(a, "name")?.to_string(),
                    ips: f64_field(a, "ips")?,
                    slowdown: f64_field(a, "slowdown")?,
                    llc_state: class("llc_state")?,
                    mba_state: class("mba_state")?,
                    miss_ratio: f64_field(a, "miss_ratio")?,
                    llc_accesses_per_sec: f64_field(a, "llc_aps")?,
                    llc_misses_per_sec: f64_field(a, "llc_mps")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let allocs = |key: &str| -> Result<Vec<AllocSample>, TraceParseError> {
            field(&v, key)?
                .as_arr()
                .ok_or_else(|| TraceParseError::Schema(format!("'{key}' is not an array")))?
                .iter()
                .map(|x| {
                    let ways = u64_field(x, "ways")?;
                    let mba = u64_field(x, "mba")?;
                    if ways > u64::from(u32::MAX) {
                        return schema_err("'ways' out of range");
                    }
                    if mba > u64::from(u8::MAX) {
                        return schema_err("'mba' out of range");
                    }
                    Ok(AllocSample {
                        ways: ways as u32,
                        mba_percent: mba as u8,
                    })
                })
                .collect()
        };
        // Absent on fault-free epochs (and in traces predating the
        // fault-injection subsystem) — parse back to None.
        let fault = match v.get("fault") {
            None => None,
            Some(f) => {
                let degraded = field(f, "degraded")?
                    .as_arr()
                    .ok_or_else(|| TraceParseError::Schema("'degraded' is not an array".into()))?
                    .iter()
                    .map(|n| {
                        n.as_str().map(str::to_string).ok_or_else(|| {
                            TraceParseError::Schema("'degraded' entry is not a string".into())
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let rolled_back = field(f, "rolled_back")?
                    .as_bool()
                    .ok_or_else(|| TraceParseError::Schema("'rolled_back' is not a bool".into()))?;
                Some(FaultSample {
                    degraded,
                    write_retries: u64_field(f, "write_retries")? as u32,
                    rolled_back,
                })
            }
        };
        Ok(TraceEvent {
            epoch: u64_field(&v, "epoch")?,
            time_ns: u64_field(&v, "time_ns")?,
            phase,
            decision,
            retry_count: u64_field(&v, "retry_count")? as u32,
            matching_rounds: u64_field(&v, "matching_rounds")? as u32,
            unfairness: f64_field(&v, "unfairness")?,
            apps,
            proposed: allocs("proposed")?,
            applied: allocs("applied")?,
            fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_event(epoch: u64) -> TraceEvent {
        TraceEvent {
            epoch,
            time_ns: 200_000_000 * (epoch + 1),
            phase: TracePhase::Exploring,
            decision: TraceDecision::Transfer,
            retry_count: 1,
            matching_rounds: 3,
            unfairness: 0.173_25,
            apps: vec![
                AppSample {
                    name: "fft".into(),
                    ips: 2.13e9,
                    slowdown: 1.31,
                    llc_state: TraceClass::Demand,
                    mba_state: TraceClass::Supply,
                    miss_ratio: 0.042,
                    llc_accesses_per_sec: 1.7e7,
                    llc_misses_per_sec: 7.1e5,
                },
                AppSample {
                    name: "stream".into(),
                    ips: 9.4e8,
                    slowdown: 2.05,
                    llc_state: TraceClass::Supply,
                    mba_state: TraceClass::Demand,
                    miss_ratio: 0.91,
                    llc_accesses_per_sec: 4.4e7,
                    llc_misses_per_sec: 4.0e7,
                },
            ],
            proposed: vec![
                AllocSample {
                    ways: 6,
                    mba_percent: 100,
                },
                AllocSample {
                    ways: 5,
                    mba_percent: 60,
                },
            ],
            applied: vec![
                AllocSample {
                    ways: 6,
                    mba_percent: 100,
                },
                AllocSample {
                    ways: 5,
                    mba_percent: 60,
                },
            ],
            fault: None,
        }
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        for epoch in [0, 1, 7, 100_000] {
            let event = sample_event(epoch);
            let line = event.to_json_line();
            assert!(!line.contains('\n'), "one line per event");
            let parsed = TraceEvent::from_json_line(&line).unwrap();
            assert_eq!(parsed, event);
        }
    }

    #[test]
    fn fault_field_round_trips_and_is_omitted_when_none() {
        let clean = sample_event(4);
        assert!(
            !clean.to_json_line().contains("fault"),
            "fault-free events must not mention faults"
        );
        let mut faulty = sample_event(4);
        faulty.fault = Some(FaultSample {
            degraded: vec!["stream".into()],
            write_retries: 2,
            rolled_back: true,
        });
        let parsed = TraceEvent::from_json_line(&faulty.to_json_line()).unwrap();
        assert_eq!(parsed, faulty);
        assert!(FaultSample::new().is_empty());
        assert!(!parsed.fault.unwrap().is_empty());
    }

    #[test]
    fn infinite_slowdown_survives_round_trip() {
        let mut event = sample_event(3);
        event.apps[0].slowdown = f64::INFINITY;
        let parsed = TraceEvent::from_json_line(&event.to_json_line()).unwrap();
        assert_eq!(parsed.apps[0].slowdown, f64::INFINITY);
    }

    #[test]
    fn wire_enums_round_trip() {
        for p in [
            TracePhase::Profiling,
            TracePhase::Exploring,
            TracePhase::Idle,
        ] {
            assert_eq!(TracePhase::from_wire(p.as_str()), Some(p));
        }
        for c in [TraceClass::Supply, TraceClass::Maintain, TraceClass::Demand] {
            assert_eq!(TraceClass::from_wire(c.as_str()), Some(c));
        }
        for d in [
            TraceDecision::Profiled,
            TraceDecision::Transfer,
            TraceDecision::ThetaRetry,
            TraceDecision::Converged,
            TraceDecision::Monitor,
            TraceDecision::ReExplore,
        ] {
            assert_eq!(TraceDecision::from_wire(d.as_str()), Some(d));
        }
        assert_eq!(TracePhase::from_wire("bogus"), None);
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for line in [
            "",
            "{}",
            "not json",
            "{\"epoch\":1}",
            "{\"epoch\":-1,\"time_ns\":0}",
        ] {
            assert!(TraceEvent::from_json_line(line).is_err(), "{line:?}");
        }
        // Unknown enum value.
        let line = sample_event(0)
            .to_json_line()
            .replace("exploring", "warping");
        assert!(TraceEvent::from_json_line(&line).is_err());
    }
}
