//! Derived per-second rates and ratios.

/// Per-second rates derived from a [`crate::CounterDelta`].
///
/// These are the quantities the CoPart classifiers consume: IPS drives the
/// slowdown estimate (Eq 1 of the paper), the LLC access rate and miss
/// ratio drive the LLC classifier FSM (§5.2), and the miss rate — relative
/// to STREAM's — drives the memory-bandwidth classifier FSM (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rates {
    /// Instructions per second.
    pub ips: f64,
    /// LLC accesses per second.
    pub llc_accesses_per_sec: f64,
    /// LLC misses per second.
    pub llc_misses_per_sec: f64,
    /// LLC misses divided by LLC accesses, in `[0, 1]`.
    pub miss_ratio: f64,
}

/// Computes the *memory traffic ratio* of §5.3: the application's LLC miss
/// rate relative to the LLC miss rate of the STREAM benchmark measured at
/// the same MBA level.
///
/// STREAM is used as the empirical upper bound of memory traffic on the
/// machine (§3.3), so the ratio is a normalized measure of how close the
/// application is to saturating its bandwidth allocation. Returns 0 when
/// the reference rate is not positive (counter dropout); the classifier
/// treats that sample as "no traffic" rather than propagating a NaN.
pub fn traffic_ratio(app_misses_per_sec: f64, stream_misses_per_sec: f64) -> f64 {
    if stream_misses_per_sec <= 0.0 {
        return 0.0;
    }
    (app_misses_per_sec / stream_misses_per_sec).max(0.0)
}

impl Rates {
    /// Relative change of `self.ips` with respect to `baseline` IPS.
    ///
    /// Positive means faster than the baseline. Returns 0 when the baseline
    /// is not positive.
    pub fn ips_delta_vs(&self, baseline_ips: f64) -> f64 {
        if baseline_ips <= 0.0 {
            return 0.0;
        }
        (self.ips - baseline_ips) / baseline_ips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_ratio_normalizes_by_stream() {
        assert!((traffic_ratio(5.0e7, 1.0e8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_ratio_handles_zero_reference() {
        assert_eq!(traffic_ratio(1.0, 0.0), 0.0);
        assert_eq!(traffic_ratio(1.0, -3.0), 0.0);
    }

    #[test]
    fn traffic_ratio_clamps_negative_app_rate() {
        assert_eq!(traffic_ratio(-1.0, 10.0), 0.0);
    }

    #[test]
    fn ips_delta_signs() {
        let r = Rates {
            ips: 110.0,
            ..Default::default()
        };
        assert!((r.ips_delta_vs(100.0) - 0.1).abs() < 1e-12);
        let r2 = Rates {
            ips: 90.0,
            ..Default::default()
        };
        assert!((r2.ips_delta_vs(100.0) + 0.1).abs() < 1e-12);
        assert_eq!(r.ips_delta_vs(0.0), 0.0);
    }
}
