//! Raw counter snapshots and deltas.

use crate::rates::Rates;
use crate::NS_PER_SEC;

/// A point-in-time reading of the per-application hardware counters.
///
/// # Examples
///
/// ```
/// use copart_telemetry::CounterSnapshot;
///
/// let t0 = CounterSnapshot { timestamp_ns: 0, instructions: 0, cycles: 0,
///                            llc_accesses: 0, llc_misses: 0 };
/// let t1 = CounterSnapshot { timestamp_ns: 1_000_000_000, instructions: 2_000,
///                            cycles: 4_000, llc_accesses: 100, llc_misses: 10 };
/// let rates = t1.delta_since(&t0).unwrap().rates().unwrap();
/// assert_eq!(rates.ips, 2_000.0);
/// assert_eq!(rates.miss_ratio, 0.1);
/// ```
///
/// All counters are cumulative since the application (or its monitoring
/// group) started. Snapshots are totally ordered by `timestamp_ns`; a later
/// snapshot must have counter values greater than or equal to an earlier
/// one. The trio of events mirrors §3.2 of the paper: dynamically executed
/// instructions, LLC accesses, and LLC misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Monotonic timestamp of the reading, in nanoseconds.
    pub timestamp_ns: u64,
    /// Cumulative retired instructions.
    pub instructions: u64,
    /// Cumulative CPU cycles consumed (informational; CoPart itself only
    /// uses instructions and wall time).
    pub cycles: u64,
    /// Cumulative LLC accesses (loads and stores reaching the LLC).
    pub llc_accesses: u64,
    /// Cumulative LLC misses.
    pub llc_misses: u64,
}

impl CounterSnapshot {
    /// Returns the delta `self - earlier`.
    ///
    /// Returns `None` when `earlier` is not actually earlier (equal
    /// timestamps included) or when any counter has gone backwards, which
    /// indicates a counter reset or a monitoring-group change; callers
    /// should discard the pair and re-arm.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> Option<CounterDelta> {
        if self.timestamp_ns <= earlier.timestamp_ns {
            return None;
        }
        Some(CounterDelta {
            duration_ns: self.timestamp_ns - earlier.timestamp_ns,
            instructions: self.instructions.checked_sub(earlier.instructions)?,
            cycles: self.cycles.checked_sub(earlier.cycles)?,
            llc_accesses: self.llc_accesses.checked_sub(earlier.llc_accesses)?,
            llc_misses: self.llc_misses.checked_sub(earlier.llc_misses)?,
        })
    }
}

/// The difference between two [`CounterSnapshot`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterDelta {
    /// Wall-clock duration covered by the delta, in nanoseconds.
    pub duration_ns: u64,
    /// Instructions retired during the interval.
    pub instructions: u64,
    /// Cycles consumed during the interval.
    pub cycles: u64,
    /// LLC accesses during the interval.
    pub llc_accesses: u64,
    /// LLC misses during the interval.
    pub llc_misses: u64,
}

impl CounterDelta {
    /// Converts the delta into per-second rates.
    ///
    /// Returns `None` for an empty interval (`duration_ns == 0`), which
    /// cannot be converted to rates.
    pub fn rates(&self) -> Option<Rates> {
        if self.duration_ns == 0 {
            return None;
        }
        let secs = self.duration_ns as f64 / NS_PER_SEC;
        let miss_ratio = if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_accesses as f64
        };
        Some(Rates {
            ips: self.instructions as f64 / secs,
            llc_accesses_per_sec: self.llc_accesses as f64 / secs,
            llc_misses_per_sec: self.llc_misses as f64 / secs,
            miss_ratio,
        })
    }

    /// Sums two deltas covering adjacent intervals.
    pub fn merge(&self, other: &CounterDelta) -> CounterDelta {
        CounterDelta {
            duration_ns: self.duration_ns + other.duration_ns,
            instructions: self.instructions + other.instructions,
            cycles: self.cycles + other.cycles,
            llc_accesses: self.llc_accesses + other.llc_accesses,
            llc_misses: self.llc_misses + other.llc_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t: u64, i: u64, a: u64, m: u64) -> CounterSnapshot {
        CounterSnapshot {
            timestamp_ns: t,
            instructions: i,
            cycles: i,
            llc_accesses: a,
            llc_misses: m,
        }
    }

    #[test]
    fn delta_between_ordered_snapshots() {
        let a = snap(0, 100, 10, 1);
        let b = snap(1_000_000_000, 300, 50, 5);
        let d = b.delta_since(&a).unwrap();
        assert_eq!(d.duration_ns, 1_000_000_000);
        assert_eq!(d.instructions, 200);
        assert_eq!(d.llc_accesses, 40);
        assert_eq!(d.llc_misses, 4);
    }

    #[test]
    fn delta_rejects_equal_or_reversed_time() {
        let a = snap(5, 1, 1, 1);
        assert!(a.delta_since(&a).is_none());
        let later = snap(10, 2, 2, 2);
        assert!(a.delta_since(&later).is_none());
    }

    #[test]
    fn delta_rejects_counter_rollback() {
        let a = snap(0, 100, 10, 1);
        let b = snap(10, 50, 20, 2);
        assert!(b.delta_since(&a).is_none());
    }

    #[test]
    fn rates_from_delta() {
        let d = CounterDelta {
            duration_ns: 500_000_000,
            instructions: 1_000,
            cycles: 2_000,
            llc_accesses: 100,
            llc_misses: 25,
        };
        let r = d.rates().unwrap();
        assert!((r.ips - 2_000.0).abs() < 1e-9);
        assert!((r.llc_accesses_per_sec - 200.0).abs() < 1e-9);
        assert!((r.llc_misses_per_sec - 50.0).abs() < 1e-9);
        assert!((r.miss_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rates_of_empty_interval_is_none() {
        assert!(CounterDelta::default().rates().is_none());
    }

    #[test]
    fn zero_access_delta_has_zero_miss_ratio() {
        let d = CounterDelta {
            duration_ns: 1,
            instructions: 10,
            cycles: 10,
            llc_accesses: 0,
            llc_misses: 0,
        };
        assert_eq!(d.rates().unwrap().miss_ratio, 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let d1 = CounterDelta {
            duration_ns: 1,
            instructions: 2,
            cycles: 3,
            llc_accesses: 4,
            llc_misses: 5,
        };
        let sum = d1.merge(&d1);
        assert_eq!(sum.duration_ns, 2);
        assert_eq!(sum.instructions, 4);
        assert_eq!(sum.llc_misses, 10);
    }
}
