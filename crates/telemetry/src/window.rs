//! Bounded snapshot history with windowed rate queries.

use std::collections::VecDeque;

use crate::{CounterDelta, CounterSnapshot, Rates};

/// A bounded, time-ordered history of [`CounterSnapshot`]s.
///
/// The resource manager samples counters once per adaptation period; the
/// window keeps the most recent `capacity` samples and answers rate queries
/// over the last period or over the whole retained history. Out-of-order or
/// rolled-back samples are rejected so a single bad reading cannot poison
/// the derived rates.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    samples: VecDeque<CounterSnapshot>,
}

impl SlidingWindow {
    /// Creates a window retaining at most `capacity` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`; at least two snapshots are needed to form
    /// a delta.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "window capacity must be at least 2");
        SlidingWindow {
            capacity,
            samples: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a snapshot, evicting the oldest if full.
    ///
    /// Returns `false` (and drops the sample) if it is not strictly newer
    /// than the latest retained snapshot or if any counter went backwards.
    pub fn push(&mut self, snapshot: CounterSnapshot) -> bool {
        if let Some(last) = self.samples.back() {
            if snapshot.delta_since(last).is_none() {
                return false;
            }
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(snapshot);
        true
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Discards all retained snapshots (e.g., after a counter reset).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&CounterSnapshot> {
        self.samples.back()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained snapshots, oldest first — the snapshot/restore seam:
    /// re-pushing the sequence into a fresh window of the same capacity
    /// reproduces the exact history.
    pub fn samples(&self) -> impl Iterator<Item = &CounterSnapshot> {
        self.samples.iter()
    }

    /// Delta between the two most recent snapshots.
    pub fn last_delta(&self) -> Option<CounterDelta> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        self.samples[n - 1].delta_since(&self.samples[n - 2])
    }

    /// Rates over the most recent sampling period.
    pub fn last_rates(&self) -> Option<Rates> {
        self.last_delta()?.rates()
    }

    /// Delta spanning the whole retained history.
    pub fn full_delta(&self) -> Option<CounterDelta> {
        if self.samples.len() < 2 {
            return None;
        }
        self.samples
            .back()
            .unwrap()
            .delta_since(self.samples.front().unwrap())
    }

    /// Rates averaged over the whole retained history.
    pub fn full_rates(&self) -> Option<Rates> {
        self.full_delta()?.rates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_ms: u64, i: u64) -> CounterSnapshot {
        CounterSnapshot {
            timestamp_ns: t_ms * 1_000_000,
            instructions: i,
            cycles: i,
            llc_accesses: i / 10,
            llc_misses: i / 100,
        }
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        for k in 1..=5u64 {
            assert!(w.push(snap(k * 100, k * 1000)));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.latest().unwrap().instructions, 5000);
        // Full delta spans samples 3..5.
        let d = w.full_delta().unwrap();
        assert_eq!(d.instructions, 2000);
    }

    #[test]
    fn window_rejects_stale_samples() {
        let mut w = SlidingWindow::new(4);
        assert!(w.push(snap(100, 1000)));
        assert!(!w.push(snap(100, 2000)), "equal timestamp rejected");
        assert!(!w.push(snap(50, 2000)), "older timestamp rejected");
        assert!(!w.push(snap(200, 500)), "counter rollback rejected");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn last_and_full_rates() {
        let mut w = SlidingWindow::new(8);
        w.push(snap(0, 0));
        w.push(snap(1000, 1_000_000));
        w.push(snap(2000, 3_000_000));
        let last = w.last_rates().unwrap();
        assert!((last.ips - 2_000_000.0).abs() < 1.0);
        let full = w.full_rates().unwrap();
        assert!((full.ips - 1_500_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_window_queries() {
        let w = SlidingWindow::new(2);
        assert!(w.is_empty());
        assert!(w.latest().is_none());
        assert!(w.last_delta().is_none());
        assert!(w.full_rates().is_none());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn capacity_must_allow_a_delta() {
        let _ = SlidingWindow::new(1);
    }

    #[test]
    fn samples_roundtrip_reproduces_the_window() {
        let mut w = SlidingWindow::new(4);
        for k in 1..=6u64 {
            w.push(snap(k * 100, k * 1000));
        }
        let mut restored = SlidingWindow::new(w.capacity());
        for s in w.samples() {
            assert!(restored.push(*s), "recorded history is monotone");
        }
        assert_eq!(restored.len(), w.len());
        assert_eq!(restored.latest(), w.latest());
        assert_eq!(restored.last_delta(), w.last_delta());
        assert_eq!(restored.full_delta(), w.full_delta());
    }

    #[test]
    fn clear_resets_history() {
        let mut w = SlidingWindow::new(4);
        w.push(snap(100, 100));
        w.push(snap(200, 200));
        w.clear();
        assert!(w.is_empty());
        // After a clear, an "older" sample is acceptable again.
        assert!(w.push(snap(50, 10)));
    }
}
