//! The §6.1 resource-allocation policies and a shared evaluation harness.
//!
//! The paper compares five policies on every workload mix:
//!
//! * **EQ** — equal static split of ways, equal MBA share;
//! * **ST** — the best *static* state found by offline search;
//! * **CAT-only** — dynamic LLC partitioning, equal (fixed) MBA;
//! * **MBA-only** — equal (fixed) LLC partitioning, dynamic MBA;
//! * **CoPart** — coordinated dynamic partitioning of both.
//!
//! [`evaluate_policy`] runs one `(mix, policy)` cell on a fresh simulated
//! machine and reports ground-truth fairness: per-application slowdowns
//! are computed against each benchmark's *solo full-resource* IPS
//! (measured independently of the controller), so the controller cannot
//! grade its own homework.
//!
//! Every policy — the baselines and CoPart itself — is dispatched through
//! the [`PolicyEngine`] trait ([`crate::planner::engine`]); the harness
//! here only drives whatever plan the engine produces. A new policy plugs
//! in via [`evaluate_engine`] without touching this module (DESIGN.md
//! §12.3).

use copart_rng::XorShift64Star;

use copart_rdt::{CbmMask, ClosId, MbaLevel, RdtBackend, SimBackend};
use copart_sim::{AppSpec, Machine, MachineConfig};
use copart_telemetry::{MetricsSnapshot, NullRecorder, Recorder};
use copart_workloads::stream::StreamReference;

use crate::metrics::{self, geomean, unfairness};
use crate::planner::{self, PlanContext, PolicyEngine, PolicyPlan};
use crate::runtime::{ConsolidationRuntime, RuntimeConfig};
use crate::state::{AllocationState, SystemState, WaysBudget};
use crate::CoPartParams;

/// The evaluated allocation policies (plus the unpartitioned state used
/// to normalize Figures 4–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No partitioning at all: every application gets the full mask and
    /// MBA 100 % (the §4.2 normalization baseline).
    Unpartitioned,
    /// Equal static allocation (EQ).
    Equal,
    /// Best static allocation found by offline search (ST).
    Static,
    /// Dynamic LLC partitioning with equal fixed MBA (CAT-only).
    CatOnly,
    /// Equal fixed LLC with dynamic MBA (MBA-only).
    MbaOnly,
    /// Coordinated dynamic partitioning (CoPart).
    CoPart,
    /// Utility-based static LLC partitioning (UCP/dCat-style, the
    /// paper's closest related work, its reference 45): ways are assigned greedily to
    /// the application with the highest marginal miss-rate reduction,
    /// computed from offline miss-ratio curves; MBA is the equal share.
    /// Not part of the paper's Figure 12; provided as an extra
    /// comparator (`repro compare-utility`).
    Utility,
    /// LFOC-style cache clustering (PR 10): dynamic management of both
    /// resources, but applications are grouped by their dual-FSM
    /// classification into at most nine clusters sharing a CAT region
    /// and a proportional MBA grant, instead of per-app exploration.
    /// Not part of Figure 12; an extra comparator for `copart compare`.
    LfocCluster,
}

impl PolicyKind {
    /// The five policies of Figure 12, in plot order.
    pub fn evaluated() -> &'static [PolicyKind] {
        &[
            PolicyKind::Equal,
            PolicyKind::Static,
            PolicyKind::CatOnly,
            PolicyKind::MbaOnly,
            PolicyKind::CoPart,
        ]
    }

    /// Every registered engine, in report order: the five Figure 12
    /// policies followed by the extra comparators (Utility, LFOC). The
    /// head-to-head harness (`copart compare`) runs all of these;
    /// [`PolicyKind::evaluated`] stays the paper's five.
    pub fn registry() -> &'static [PolicyKind] {
        &[
            PolicyKind::Equal,
            PolicyKind::Static,
            PolicyKind::CatOnly,
            PolicyKind::MbaOnly,
            PolicyKind::CoPart,
            PolicyKind::Utility,
            PolicyKind::LfocCluster,
        ]
    }

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Unpartitioned => "None",
            PolicyKind::Equal => "EQ",
            PolicyKind::Static => "ST",
            PolicyKind::CatOnly => "CAT-only",
            PolicyKind::MbaOnly => "MBA-only",
            PolicyKind::CoPart => "CoPart",
            PolicyKind::Utility => "Utility",
            PolicyKind::LfocCluster => "LFOC",
        }
    }
}

/// Evaluation lengths for one policy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Periods executed after profiling (one period = `params.period`).
    pub total_periods: u32,
    /// Trailing periods over which ground truth is measured.
    pub measure_periods: u32,
    /// Candidate states evaluated by the ST offline search.
    pub static_candidates: u32,
    /// Periods per ST candidate evaluation.
    pub static_probe_periods: u32,
    /// Seed for ST's random candidate generation.
    pub seed: u64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            total_periods: 150,
            measure_periods: 75,
            static_candidates: 48,
            static_probe_periods: 12,
            seed: 0x0E7A_15ED,
        }
    }
}

/// Ground-truth result of one `(mix, policy)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// The policy that ran.
    pub policy: PolicyKind,
    /// Unfairness (Eq 2) of the measured slowdowns.
    pub unfairness: f64,
    /// Geometric-mean IPS across applications (the Figure 17 metric).
    pub throughput: f64,
    /// Per-application measured slowdowns.
    pub slowdowns: Vec<f64>,
    /// Unfairness per period over the whole run (timeline).
    pub timeline: Vec<f64>,
}

/// Measures each spec's solo full-resource IPS — the Eq 1 numerators used
/// for ground-truth slowdowns. Expensive; callers should cache per mix.
pub fn solo_full_ips(machine_cfg: &MachineConfig, specs: &[AppSpec]) -> Vec<f64> {
    specs
        .iter()
        .map(|s| copart_workloads::measure::measure_full(machine_cfg, s).0)
        .collect()
}

/// Runs one policy on one workload mix, returning ground-truth fairness
/// and throughput.
///
/// # Panics
///
/// Panics if the simulated machine rejects the mix (more cores demanded
/// than exist) — mixes are constructed to fit.
pub fn evaluate_policy(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    stream: &StreamReference,
    policy: PolicyKind,
    opts: &EvalOptions,
) -> EvalResult {
    evaluate_engine(
        planner::engine(policy),
        machine_cfg,
        specs,
        ips_full_solo,
        stream,
        opts,
    )
}

/// Runs any [`PolicyEngine`] — the extension seam: a policy outside
/// [`PolicyKind`]'s built-ins plugs into the same harness by implementing
/// the trait and calling this (DESIGN.md §12.3). The engine plans either
/// a fixed state (measured statically) or a [`RuntimeConfig`] (profiled
/// and adapted through the consolidation runtime).
///
/// # Panics
///
/// Panics if the simulated machine rejects the mix (more cores demanded
/// than exist) — mixes are constructed to fit.
pub fn evaluate_engine(
    engine: &dyn PolicyEngine,
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    stream: &StreamReference,
    opts: &EvalOptions,
) -> EvalResult {
    assert_eq!(specs.len(), ips_full_solo.len());
    let params = CoPartParams {
        seed: opts.seed,
        ..CoPartParams::default()
    };
    let ctx = PlanContext {
        machine: machine_cfg,
        specs,
        ips_full_solo,
        stream,
        params: &params,
        opts,
        budget: WaysBudget::full_machine(machine_cfg.llc_ways),
    };
    match engine.plan(&ctx) {
        PolicyPlan::Static { state, overlapping } => run_static(
            machine_cfg,
            specs,
            ips_full_solo,
            &state,
            overlapping,
            engine.kind(),
            opts,
        ),
        PolicyPlan::Dynamic { config } => run_dynamic(
            machine_cfg,
            specs,
            ips_full_solo,
            engine.kind(),
            config,
            opts,
        ),
    }
}

/// Runs CoPart with non-default controller parameters (the Figure 11
/// design-space sweeps and the ablation harnesses).
pub fn evaluate_copart_with_params(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    stream: &StreamReference,
    params: &CoPartParams,
    opts: &EvalOptions,
) -> EvalResult {
    let cfg = dynamic_runtime_config(machine_cfg, specs.len(), stream, PolicyKind::CoPart, params);
    run_dynamic(
        machine_cfg,
        specs,
        ips_full_solo,
        PolicyKind::CoPart,
        cfg,
        opts,
    )
}

/// Evaluates an arbitrary *static* system state on a fresh machine — the
/// primitive behind the Figure 4–6 heatmaps and the ST search.
pub fn evaluate_static_state(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    state: &SystemState,
    opts: &EvalOptions,
) -> EvalResult {
    run_static(
        machine_cfg,
        specs,
        ips_full_solo,
        state,
        false,
        PolicyKind::Static,
        opts,
    )
}

/// [`evaluate_static_state`] over a whole batch of states, fanned out on
/// the [`copart_parallel`] pool (`--jobs` / `COPART_JOBS` workers).
/// Every state runs on its own fresh machine, so the results — returned
/// in input order — are identical at every job count.
pub fn evaluate_static_states(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    states: &[SystemState],
    opts: &EvalOptions,
) -> Vec<EvalResult> {
    copart_parallel::par_map_indexed(states, 1, |_, state| {
        run_static(
            machine_cfg,
            specs,
            ips_full_solo,
            state,
            false,
            PolicyKind::Static,
            opts,
        )
    })
}

/// The EQ state: even way split, equal-share MBA level.
pub fn equal_state(n: usize, budget: &WaysBudget) -> SystemState {
    SystemState::equal_split(n, budget, SystemState::equal_mba_level(n))
}

/// Builds a machine with the mix admitted, one group per application.
fn build_backend(machine_cfg: &MachineConfig, specs: &[AppSpec]) -> (SimBackend, Vec<ClosId>) {
    let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
    let groups = specs
        .iter()
        .map(|s| {
            backend
                .add_workload(s.clone())
                .expect("mix fits the machine")
        })
        .collect();
    (backend, groups)
}

/// Applies a static state (or full overlapping masks when
/// `overlapping`) and runs the clock, measuring ground truth.
fn run_static(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    state: &SystemState,
    overlapping: bool,
    policy: PolicyKind,
    opts: &EvalOptions,
) -> EvalResult {
    let (mut backend, groups) = build_backend(machine_cfg, specs);
    let budget = WaysBudget::full_machine(machine_cfg.llc_ways);
    if overlapping {
        let full = CbmMask::full(machine_cfg.llc_ways);
        for &g in &groups {
            backend.set_cbm(g, full).expect("full mask is valid");
            backend.set_mba(g, MbaLevel::MAX).expect("group exists");
        }
    } else {
        state
            .apply(&mut backend, &groups, &budget)
            .expect("static state is valid");
    }
    measure_run(backend, &groups, ips_full_solo, policy, opts)
}

/// Runs a dynamic policy's planned configuration through the
/// consolidation runtime.
fn run_dynamic(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    policy: PolicyKind,
    cfg: RuntimeConfig,
    opts: &EvalOptions,
) -> EvalResult {
    let (mut runtime, groups) = build_runtime(machine_cfg, specs, cfg);
    runtime.profile().expect("simulator profiling cannot fail");
    measure_run_runtime(runtime, &groups, ips_full_solo, policy, opts).0
}

/// Builds the consolidation runtime a dynamic policy runs on.
fn build_runtime(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    cfg: RuntimeConfig,
) -> (ConsolidationRuntime<SimBackend>, Vec<ClosId>) {
    let (backend, groups) = build_backend(machine_cfg, specs);
    let named: Vec<(ClosId, String)> = groups
        .iter()
        .zip(specs)
        .map(|(g, s)| (*g, s.name.clone()))
        .collect();
    let runtime = ConsolidationRuntime::new(backend, named, cfg).expect("initial state applies");
    (runtime, groups)
}

/// The [`RuntimeConfig`] a dynamic policy (CAT-only / MBA-only / CoPart /
/// LFOC) runs with, as planned by its [`PolicyEngine`]. Public so
/// harnesses that build the backend themselves — e.g. to wrap it in a
/// fault-injecting decorator — run the *same* controller configuration
/// the standard traced evaluation uses.
///
/// # Panics
///
/// Panics when `policy` is not CAT-only / MBA-only / CoPart / LFOC.
pub fn dynamic_runtime_config(
    machine_cfg: &MachineConfig,
    n_apps: usize,
    stream: &StreamReference,
    policy: PolicyKind,
    params: &CoPartParams,
) -> RuntimeConfig {
    planner::engine(policy)
        .runtime_config(machine_cfg, n_apps, stream, params)
        .expect("static policies do not build a runtime")
}

/// Runs a dynamic policy exactly like [`evaluate_policy`], but with a
/// trace [`Recorder`] installed on the consolidation runtime for the whole
/// run (profiling included). Returns the recorder — so a JSONL sink can be
/// flushed or a ring buffer inspected — together with a snapshot of the
/// runtime's metrics registry.
///
/// # Panics
///
/// Panics when `policy` is not one of the dynamic policies (CAT-only /
/// MBA-only / CoPart / LFOC): static policies never build a runtime, so
/// there is nothing to trace.
pub fn evaluate_policy_traced(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    stream: &StreamReference,
    policy: PolicyKind,
    opts: &EvalOptions,
    recorder: Box<dyn Recorder + Send>,
) -> (EvalResult, Box<dyn Recorder + Send>, MetricsSnapshot) {
    assert!(
        matches!(
            policy,
            PolicyKind::CatOnly
                | PolicyKind::MbaOnly
                | PolicyKind::CoPart
                | PolicyKind::LfocCluster
        ),
        "only dynamic policies build a runtime to trace"
    );
    assert_eq!(specs.len(), ips_full_solo.len());
    let params = CoPartParams {
        seed: opts.seed,
        ..CoPartParams::default()
    };
    let cfg = dynamic_runtime_config(machine_cfg, specs.len(), stream, policy, &params);
    let (mut runtime, groups) = build_runtime(machine_cfg, specs, cfg);
    runtime.set_recorder(recorder);
    runtime.profile().expect("simulator profiling cannot fail");
    let (result, mut runtime) = measure_run_runtime(runtime, &groups, ips_full_solo, policy, opts);
    let snapshot = runtime.metrics_snapshot();
    let recorder = runtime.set_recorder(Box::new(NullRecorder));
    (result, recorder, snapshot)
}

/// Measures ground truth while the runtime adapts each period. Hands the
/// runtime back so callers can recover its recorder and metrics.
fn measure_run_runtime(
    runtime: ConsolidationRuntime<SimBackend>,
    groups: &[ClosId],
    ips_full_solo: &[f64],
    policy: PolicyKind,
    opts: &EvalOptions,
) -> (EvalResult, ConsolidationRuntime<SimBackend>) {
    evaluate_runtime_traced(runtime, groups, ips_full_solo, policy, opts, |b, g| {
        b.read_counters(g).expect("group is live")
    })
    .expect("simulator periods cannot fail")
}

/// One source of adaptation periods for the shared measurement loop:
/// either the consolidation runtime (dynamic policies) or a
/// statically-configured backend whose clock simply advances.
trait EpochSource<B: RdtBackend> {
    /// Executes one period.
    fn step(&mut self) -> Result<(), copart_rdt::RdtError>;

    /// The backend, for ground-truth counter reads between periods.
    fn backend_mut(&mut self) -> &mut B;
}

impl<B: RdtBackend> EpochSource<B> for ConsolidationRuntime<B> {
    fn step(&mut self) -> Result<(), copart_rdt::RdtError> {
        self.run_period().map(|_| ())
    }

    fn backend_mut(&mut self) -> &mut B {
        ConsolidationRuntime::backend_mut(self)
    }
}

/// A static policy's period source: nothing adapts, the clock advances.
struct StaticSource {
    backend: SimBackend,
    period: std::time::Duration,
}

impl EpochSource<SimBackend> for StaticSource {
    fn step(&mut self) -> Result<(), copart_rdt::RdtError> {
        self.backend.advance(self.period)
    }

    fn backend_mut(&mut self) -> &mut SimBackend {
        &mut self.backend
    }
}

/// The one ground-truth measurement loop every evaluation runs: step the
/// source one period at a time, read the cumulative counters after each,
/// and measure fairness over the trailing `measure_periods`.
fn measure_source<B: RdtBackend, S: EpochSource<B>>(
    source: &mut S,
    groups: &[ClosId],
    ips_full_solo: &[f64],
    policy: PolicyKind,
    opts: &EvalOptions,
    mut ground_truth: impl FnMut(&mut B, ClosId) -> copart_telemetry::CounterSnapshot,
) -> Result<EvalResult, copart_rdt::RdtError> {
    let mut timeline = Vec::with_capacity(opts.total_periods as usize);
    let read = |src: &mut S,
                gt: &mut dyn FnMut(&mut B, ClosId) -> copart_telemetry::CounterSnapshot|
     -> Snapshots { groups.iter().map(|&g| gt(src.backend_mut(), g)).collect() };
    let mut prev = read(source, &mut ground_truth);
    let mut measure_start = None;
    for k in 0..opts.total_periods {
        source.step()?;
        let now = read(source, &mut ground_truth);
        timeline.push(period_unfairness(&prev, &now, ips_full_solo));
        prev = now.clone();
        if k + opts.measure_periods == opts.total_periods {
            measure_start = Some(now);
        }
    }
    let end = read(source, &mut ground_truth);
    let start = measure_start.unwrap_or(end.clone());
    Ok(finish(policy, &start, &end, ips_full_solo, timeline))
}

/// Measures ground truth over an externally built (already profiled)
/// runtime on *any* backend, adapting each period exactly like
/// [`evaluate_policy_traced`] does.
///
/// `ground_truth` reads one group's cumulative counters for the fairness
/// measurement. It is separate from the runtime's own sampling so a
/// decorated backend (e.g. `copart-faults`' fault injector) can route
/// the measurement past the decoration to the inner simulator — ground
/// truth must stay fault-free even when the controller's view is not.
///
/// # Errors
///
/// Propagates the first [`copart_rdt::RdtError`] a period fails with
/// (with the hardened runtime that is only a failed platform `advance`).
pub fn evaluate_runtime_traced<B: RdtBackend>(
    mut runtime: ConsolidationRuntime<B>,
    groups: &[ClosId],
    ips_full_solo: &[f64],
    policy: PolicyKind,
    opts: &EvalOptions,
    ground_truth: impl FnMut(&mut B, ClosId) -> copart_telemetry::CounterSnapshot,
) -> Result<(EvalResult, ConsolidationRuntime<B>), copart_rdt::RdtError> {
    let result = measure_source(
        &mut runtime,
        groups,
        ips_full_solo,
        policy,
        opts,
        ground_truth,
    )?;
    Ok((result, runtime))
}

/// Measures ground truth over a statically-configured backend.
fn measure_run(
    backend: SimBackend,
    groups: &[ClosId],
    ips_full_solo: &[f64],
    policy: PolicyKind,
    opts: &EvalOptions,
) -> EvalResult {
    let mut source = StaticSource {
        backend,
        period: CoPartParams::default().period,
    };
    measure_source(&mut source, groups, ips_full_solo, policy, opts, |b, g| {
        b.read_counters(g).expect("group is live")
    })
    .expect("sim advance cannot fail")
}

type Snapshots = Vec<copart_telemetry::CounterSnapshot>;

fn ips_between(a: &Snapshots, b: &Snapshots) -> Vec<f64> {
    a.iter()
        .zip(b)
        .map(|(s0, s1)| {
            s1.delta_since(s0)
                .and_then(|d| d.rates())
                .map(|r| r.ips)
                .unwrap_or(0.0)
        })
        .collect()
}

fn period_unfairness(a: &Snapshots, b: &Snapshots, ips_full: &[f64]) -> f64 {
    let slowdowns: Vec<f64> = ips_between(a, b)
        .iter()
        .zip(ips_full)
        .map(|(&ips, &full)| metrics::slowdown(full, ips))
        .collect();
    unfairness(&slowdowns)
}

fn finish(
    policy: PolicyKind,
    start: &Snapshots,
    end: &Snapshots,
    ips_full: &[f64],
    timeline: Vec<f64>,
) -> EvalResult {
    let ips = ips_between(start, end);
    let slowdowns: Vec<f64> = ips
        .iter()
        .zip(ips_full)
        .map(|(&i, &f)| metrics::slowdown(f, i))
        .collect();
    EvalResult {
        policy,
        unfairness: unfairness(&slowdowns),
        throughput: geomean(&ips),
        slowdowns,
        timeline,
    }
}

/// The utility-based (UCP/dCat-style) static LLC allocation: each
/// application's offline miss-ratio curve is profiled solo, then ways are
/// handed out greedily — one at a time to the application whose *marginal
/// utility* (misses-per-second avoided by one more way) is highest. MBA
/// is set to the equal share, since the scheme partitions only the cache.
///
/// This is exactly the machinery CoPart's FSM probes avoid building
/// online; it serves as the related-work comparator.
pub fn utility_state(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    budget: &WaysBudget,
) -> SystemState {
    let n = specs.len();
    assert!(n as u32 <= budget.total_ways, "every app needs a way");
    // Offline solo MRCs: misses/second at each way count.
    let curves: Vec<Vec<f64>> = specs
        .iter()
        .map(|spec| {
            copart_workloads::measure::miss_ratio_curve(machine_cfg, spec)
                .into_iter()
                .map(|p| p.miss_ratio * p.ips * spec.apki / 1000.0)
                .collect()
        })
        .collect();

    let mba = SystemState::equal_mba_level(n).min(budget.mba_cap);
    let mut ways = vec![1u32; n];
    let mut remaining = budget.total_ways - n as u32;
    while remaining > 0 {
        // Marginal utility of one more way for each application.
        let (best, _) = (0..n)
            .map(|i| {
                let w = ways[i] as usize;
                let gain = if w < curves[i].len() {
                    (curves[i][w - 1] - curves[i][w]).max(0.0)
                } else {
                    0.0
                };
                (i, gain)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite utilities"))
            .expect("at least one application");
        ways[best] += 1;
        remaining -= 1;
    }
    SystemState {
        allocs: ways
            .into_iter()
            .map(|w| AllocationState { ways: w, mba })
            .collect(),
    }
}

/// The ST policy's offline search: evaluates the equal split and a
/// population of random valid states on short fresh runs, returning the
/// state with the lowest measured unfairness (the paper's "extensive
/// offline experiments", §6.1).
///
/// The search is the workspace's hottest enumeration loop, so the
/// candidate probes fan out on the [`copart_parallel`] pool. Candidate
/// *i* is generated from its own [`copart_parallel::task_rng`] stream
/// seeded by `(opts.seed, i)` — never from a generator advanced by other
/// candidates — and ties break toward the lower candidate index, so the
/// chosen state is byte-identical at every `--jobs` setting.
pub fn static_search(
    machine_cfg: &MachineConfig,
    specs: &[AppSpec],
    ips_full_solo: &[f64],
    budget: &WaysBudget,
    opts: &EvalOptions,
) -> SystemState {
    let n = specs.len();
    // Candidate 0 is the equal split; 1..=static_candidates are random
    // valid states, each from an index-seeded stream.
    let candidates: Vec<SystemState> = std::iter::once(equal_state(n, budget))
        .chain((0..opts.static_candidates).map(|i| {
            let mut rng = copart_parallel::task_rng(opts.seed ^ 0x57A7_1C5E, u64::from(i));
            random_state(n, budget, &mut rng)
        }))
        .collect();

    let probe_opts = EvalOptions {
        total_periods: opts.static_probe_periods,
        measure_periods: (opts.static_probe_periods / 2).max(1),
        ..*opts
    };
    let probed = copart_parallel::par_map_indexed(&candidates, 1, |_, cand| {
        run_static(
            machine_cfg,
            specs,
            ips_full_solo,
            cand,
            false,
            PolicyKind::Static,
            &probe_opts,
        )
        .unfairness
    });
    // Strictly-lower-wins over the in-order results: the earliest of
    // equally good candidates is chosen, exactly as the serial loop did.
    let mut best: Option<(f64, usize)> = None;
    for (i, &unfairness) in probed.iter().enumerate() {
        if best.is_none_or(|(u, _)| unfairness < u) {
            best = Some((unfairness, i));
        }
    }
    let (_, winner) = best.expect("at least the equal split was evaluated");
    candidates.into_iter().nth(winner).expect("index in range")
}

/// A uniformly random valid state: random composition of the budget ways
/// (each app ≥ 1) and random MBA levels under the cap.
fn random_state(n: usize, budget: &WaysBudget, rng: &mut XorShift64Star) -> SystemState {
    // Random composition via stars-and-bars: sample n-1 distinct cut
    // points among total_ways - 1 gaps.
    let total = budget.total_ways;
    let mut cuts: Vec<u32> = Vec::with_capacity(n - 1);
    while cuts.len() < n - 1 {
        let c = rng.gen_range(1..total);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut allocs = Vec::with_capacity(n);
    let mut prev = 0;
    for (i, &c) in cuts.iter().chain(std::iter::once(&total)).enumerate() {
        let _ = i;
        let max_step = usize::from(budget.mba_cap.percent() / 10);
        let level = MbaLevel::new((rng.gen_range(1..=max_step) * 10) as u8);
        allocs.push(AllocationState {
            ways: c - prev,
            mba: level,
        });
        prev = c;
    }
    SystemState { allocs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_workloads::{MixKind, WorkloadMix};
    use std::sync::OnceLock;

    fn machine_cfg() -> MachineConfig {
        MachineConfig::xeon_gold_6130()
    }

    fn stream() -> &'static StreamReference {
        static S: OnceLock<StreamReference> = OnceLock::new();
        S.get_or_init(|| StreamReference::compute(&machine_cfg(), 4))
    }

    fn quick_opts() -> EvalOptions {
        EvalOptions {
            total_periods: 60,
            measure_periods: 30,
            static_candidates: 10,
            static_probe_periods: 8,
            seed: 42,
        }
    }

    fn run(kind: MixKind, policy: PolicyKind) -> EvalResult {
        let cfg = machine_cfg();
        let mix = WorkloadMix::paper_default(kind);
        let specs = mix.specs();
        let full = solo_full_ips(&cfg, &specs);
        evaluate_policy(&cfg, &specs, &full, stream(), policy, &quick_opts())
    }

    #[test]
    fn labels_and_policy_list() {
        assert_eq!(PolicyKind::evaluated().len(), 5);
        assert_eq!(PolicyKind::CoPart.label(), "CoPart");
        assert_eq!(PolicyKind::Equal.label(), "EQ");
    }

    #[test]
    fn equal_policy_produces_finite_metrics() {
        let r = run(MixKind::ModerateLlc, PolicyKind::Equal);
        assert!(r.unfairness.is_finite() && r.unfairness >= 0.0);
        assert!(r.throughput > 0.0);
        assert_eq!(r.slowdowns.len(), 4);
        assert!(r.slowdowns.iter().all(|s| *s >= 0.5 && s.is_finite()));
    }

    #[test]
    fn copart_beats_equal_on_the_llc_mix() {
        let eq = run(MixKind::HighLlc, PolicyKind::Equal);
        let co = run(MixKind::HighLlc, PolicyKind::CoPart);
        assert!(
            co.unfairness < eq.unfairness,
            "CoPart {:.4} should beat EQ {:.4}",
            co.unfairness,
            eq.unfairness
        );
    }

    #[test]
    fn traced_evaluation_returns_events_and_metrics() {
        use copart_telemetry::{read_trace_file, JsonlRecorder, TraceDecision};
        let cfg = machine_cfg();
        let mix = WorkloadMix::paper_default(MixKind::HighLlc);
        let specs = mix.specs();
        let full = solo_full_ips(&cfg, &specs);
        let opts = quick_opts();
        let path = std::env::temp_dir().join(format!("copart-traced-{}.jsonl", std::process::id()));
        let sink = Box::new(JsonlRecorder::create(&path).unwrap());
        let (result, mut recorder, snapshot) = evaluate_policy_traced(
            &cfg,
            &specs,
            &full,
            stream(),
            PolicyKind::CoPart,
            &opts,
            sink,
        );
        recorder.flush().unwrap();
        drop(recorder);
        let events = read_trace_file(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert!(result.unfairness.is_finite());
        // One event per profiling probe plus one per control period,
        // strictly monotone epoch numbers.
        assert_eq!(events.len(), specs.len() + opts.total_periods as usize);
        assert!(events.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert!(events
            .iter()
            .take(specs.len())
            .all(|e| e.decision == TraceDecision::Profiled));

        assert_eq!(snapshot.counter("epochs"), u64::from(opts.total_periods));
        assert_eq!(snapshot.counter("apps_profiled"), specs.len() as u64);
        let epoch_hist = snapshot.histogram("epoch_ns").expect("epoch_ns recorded");
        assert_eq!(epoch_hist.count(), u64::from(opts.total_periods));
        assert!(snapshot.histogram("explore_ns").is_some());
        assert!(snapshot.counter("transfers") > 0, "CoPart should transfer");
    }

    #[test]
    fn random_states_are_valid() {
        let budget = WaysBudget::full_machine(11);
        let mut rng = XorShift64Star::seed_from_u64(1);
        for _ in 0..100 {
            for n in 2..=6 {
                let s = random_state(n, &budget, &mut rng);
                assert!(s.is_valid(&budget), "invalid random state {s:?}");
                assert_eq!(s.total_ways(), 11);
            }
        }
    }

    #[test]
    fn static_search_never_loses_to_equal() {
        let cfg = machine_cfg();
        let mix = WorkloadMix::paper_default(MixKind::ModerateBw);
        let specs = mix.specs();
        let full = solo_full_ips(&cfg, &specs);
        let opts = quick_opts();
        let budget = WaysBudget::full_machine(cfg.llc_ways);
        let st = static_search(&cfg, &specs, &full, &budget, &opts);
        assert!(st.is_valid(&budget));
        // The search evaluated the equal split among its candidates, so
        // its pick can only be at least as good on the probe runs.
        let probe = EvalOptions {
            total_periods: opts.static_probe_periods,
            measure_periods: opts.static_probe_periods / 2,
            ..opts
        };
        let eq = run_static(
            &cfg,
            &specs,
            &full,
            &equal_state(specs.len(), &budget),
            false,
            PolicyKind::Equal,
            &probe,
        );
        let st_res = run_static(&cfg, &specs, &full, &st, false, PolicyKind::Static, &probe);
        assert!(st_res.unfairness <= eq.unfairness + 1e-9);
    }
}

#[cfg(test)]
mod utility_tests {
    use super::*;
    use copart_workloads::Benchmark;

    #[test]
    fn utility_feeds_the_cache_hungry_and_respects_floors() {
        let cfg = MachineConfig::xeon_gold_6130();
        let specs = vec![
            Benchmark::WaterNsquared.spec(), // Needs 4 ways.
            Benchmark::Swaptions.spec(),     // Needs nothing.
        ];
        let budget = WaysBudget::full_machine(cfg.llc_ways);
        let state = utility_state(&cfg, &specs, &budget);
        assert!(state.is_valid(&budget));
        assert_eq!(state.total_ways(), cfg.llc_ways);
        assert!(
            state.allocs[0].ways >= 4,
            "WN should win the greedy auction: {:?}",
            state
        );
        assert!(state.allocs[1].ways >= 1, "floor of one way each");
        assert!(state.allocs[0].ways > state.allocs[1].ways);
    }
}
