//! LFOC-style cache clustering: applications with the same dual-FSM
//! sensitivity classification share one CAT partition.
//!
//! The paper's exploration (Algorithm 1) gives every application its own
//! disjoint partition and walks the state space one transfer at a time.
//! LFOC ("Lightweight Fair Optimal Clustering", Selfa et al. — the Fig
//! 8/9 sensitivity-classification line of work) takes the opposite
//! bet: applications whose classifications agree do not need separate
//! partitions at all. Grouping them into a handful of *clusters*, each
//! backed by one shared CAT region, frees CLOS ids, shrinks the search
//! space to a closed-form apportionment, and converges in one step.
//!
//! This module is the pure half of that policy engine
//! ([`crate::policies::PolicyKind::LfocCluster`]): deterministic cluster
//! formation from the classifier verdicts the planner already produces,
//! plus the shared-mask layout the actuator writes. No RNG is consulted
//! anywhere — the plan is a pure function of the classifications, which
//! is exactly what the `cluster-assignment-deterministic` oracle in
//! `copart-check` pins.
//!
//! # Representation
//!
//! A cluster plan is a pair:
//!
//! * `clusters: Vec<u16>` — per-application cluster id, dense `0..k`;
//! * a member [`SystemState`] — per-application `(ways, mba)` where every
//!   member of a cluster carries its cluster's *shared* grant.
//!
//! The member state deliberately violates [`SystemState::is_valid`]'s
//! sum-of-ways invariant (two members of a 6-way cluster both record 6
//! ways); the layout therefore goes through [`cluster_masks_into`],
//! which sums ways *per cluster*, not per application. An empty
//! `clusters` vector means "no clustering" everywhere in the runtime —
//! the exploration planner's disjoint layout applies.

use copart_rdt::{CbmMask, MbaLevel};

use crate::fsm::AppState;
use crate::next_state::AppClassification;
use crate::state::{AllocationState, SystemState, WaysBudget};

/// Upper bound on clusters: one per `(LLC, MBA)` classification pair.
pub const MAX_CLUSTERS: usize = 9;

/// Canonical rank of a classifier state (Supply < Maintain < Demand).
fn rank(s: AppState) -> usize {
    match s {
        AppState::Supply => 0,
        AppState::Maintain => 1,
        AppState::Demand => 2,
    }
}

/// Canonical key of a classification pair: clusters are numbered in
/// ascending key order, so the assignment is independent of app order
/// permutations *within* a class and stable across epochs.
fn class_key(c: &AppClassification) -> usize {
    rank(c.llc) * 3 + rank(c.mba)
}

/// Per-member LLC way weight of a sensitivity class: a demanding member
/// pulls four shares, a maintaining one two, a supplier one. The
/// apportionment below hands out ways proportionally to the summed
/// weights, so clusters full of cache-hungry members get wide regions.
fn llc_weight(s: AppState) -> u64 {
    match s {
        AppState::Supply => 1,
        AppState::Maintain => 2,
        AppState::Demand => 4,
    }
}

/// The MBA grant of a sensitivity class, proportional to its bandwidth
/// demand and clipped to the budget cap: suppliers are throttled to
/// 30 %, maintainers to 60 %, demanders get the full cap.
fn mba_grant(s: AppState, cap: MbaLevel) -> MbaLevel {
    match s {
        AppState::Supply => MbaLevel::new(30).min(cap),
        AppState::Maintain => MbaLevel::new(60).min(cap),
        AppState::Demand => cap,
    }
}

/// Forms the cluster plan for one epoch: groups applications by their
/// `(LLC, MBA)` classification pair, apportions the budget ways across
/// the clusters by largest remainder (each cluster floored at one way;
/// ties break toward the lower cluster id), and grants each cluster the
/// MBA level of its bandwidth class. Writes the per-application cluster
/// ids into `clusters` and the shared member allocations into `state`
/// (buffers reused; no allocation in steady state).
///
/// The result is a pure function of `(apps, budget)` — no RNG, no
/// history — so re-running it on identical inputs is byte-identical.
///
/// # Panics
///
/// Panics when `apps` is empty or the distinct classes outnumber the
/// budget ways (every cluster needs at least one way).
pub fn form_clusters_into(
    apps: &[AppClassification],
    budget: &WaysBudget,
    clusters: &mut Vec<u16>,
    state: &mut SystemState,
) {
    assert!(!apps.is_empty(), "need at least one application");
    let mut members = [0u64; MAX_CLUSTERS];
    let mut weights = [0u64; MAX_CLUSTERS];
    for a in apps {
        let key = class_key(a);
        members[key] += 1;
        weights[key] += llc_weight(a.llc);
    }

    // Dense cluster ids in ascending class-key order.
    let mut id_of = [u16::MAX; MAX_CLUSTERS];
    let mut ways = [0u32; MAX_CLUSTERS];
    let mut mba = [MbaLevel::MAX; MAX_CLUSTERS];
    let mut weight = [0u64; MAX_CLUSTERS];
    let mut k = 0usize;
    for key in 0..MAX_CLUSTERS {
        if members[key] == 0 {
            continue;
        }
        id_of[key] = k as u16;
        weight[k] = weights[key];
        mba[k] = mba_grant(
            match key % 3 {
                0 => AppState::Supply,
                1 => AppState::Maintain,
                _ => AppState::Demand,
            },
            budget.mba_cap,
        );
        k += 1;
    }
    assert!(
        k as u32 <= budget.total_ways,
        "{k} clusters cannot each get a way out of {}",
        budget.total_ways
    );

    // Largest-remainder apportionment of the ways beyond the one-way
    // floor, weighted by summed member demand.
    let spare = budget.total_ways - k as u32;
    let total_weight: u64 = weight[..k].iter().sum();
    let mut fractions = [(0u64, 0usize); MAX_CLUSTERS];
    let mut handed = 0u32;
    for c in 0..k {
        let exact = u64::from(spare) * weight[c];
        let share = (exact / total_weight) as u32;
        ways[c] = 1 + share;
        handed += share;
        fractions[c] = (exact % total_weight, c);
    }
    let mut leftover = spare - handed;
    // Highest remainder first; equal remainders go to the lower id.
    fractions[..k].sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, c) in fractions[..k].iter() {
        if leftover == 0 {
            break;
        }
        ways[c] += 1;
        leftover -= 1;
    }

    clusters.clear();
    state.allocs.clear();
    for a in apps {
        let c = id_of[class_key(a)];
        clusters.push(c);
        state.allocs.push(AllocationState {
            ways: ways[usize::from(c)],
            mba: mba[usize::from(c)],
        });
    }
}

/// [`form_clusters_into`] returning owned buffers — the oracle-facing
/// convenience form.
pub fn form_clusters(apps: &[AppClassification], budget: &WaysBudget) -> (Vec<u16>, SystemState) {
    let mut clusters = Vec::new();
    let mut state = SystemState::default();
    form_clusters_into(apps, budget, &mut clusters, &mut state);
    (clusters, state)
}

/// Checks the cluster-plan invariants against a budget: the assignment
/// covers every application with dense ids `0..k` (`k ≤`
/// [`MAX_CLUSTERS`]), every member of a cluster carries the identical
/// shared allocation, every cluster holds at least one way, the
/// *per-cluster* way total fits the budget, and no grant exceeds the
/// MBA cap.
pub fn clusters_are_valid(clusters: &[u16], state: &SystemState, budget: &WaysBudget) -> bool {
    if clusters.is_empty() || clusters.len() != state.allocs.len() {
        return false;
    }
    let mut alloc_of: [Option<AllocationState>; MAX_CLUSTERS] = [None; MAX_CLUSTERS];
    let mut highest = 0usize;
    for (&c, a) in clusters.iter().zip(&state.allocs) {
        let c = usize::from(c);
        if c >= MAX_CLUSTERS {
            return false;
        }
        highest = highest.max(c);
        match alloc_of[c] {
            None => alloc_of[c] = Some(*a),
            Some(shared) if shared != *a => return false,
            Some(_) => {}
        }
    }
    let k = highest + 1;
    if alloc_of[..k].iter().any(Option::is_none) {
        return false; // Ids must be dense.
    }
    let mut total = 0u32;
    for a in alloc_of[..k].iter().flatten() {
        if a.ways < 1 || a.mba > budget.mba_cap {
            return false;
        }
        total += a.ways;
    }
    total <= budget.total_ways
}

/// Lays a cluster plan out as CAT masks, one per *application*: clusters
/// get contiguous, mutually disjoint regions packed from
/// `budget.first_way` upward in cluster-id order (spare budget ways are
/// appended to the last cluster so the cache is never wasted), and every
/// member of a cluster receives its cluster's identical mask. Members
/// sharing a mask is legal under CAT — allocation is restricted, lookup
/// is not — and is the whole point of the clustering policy.
///
/// The buffer is cleared first, mirroring [`SystemState::masks_into`].
///
/// # Panics
///
/// Panics when the plan violates [`clusters_are_valid`]; callers must
/// only lay out valid plans.
pub fn cluster_masks_into(
    clusters: &[u16],
    state: &SystemState,
    budget: &WaysBudget,
    machine_ways: u32,
    out: &mut Vec<CbmMask>,
) {
    assert!(
        clusters_are_valid(clusters, state, budget),
        "cannot lay out an invalid cluster plan"
    );
    out.clear();
    let k = usize::from(*clusters.iter().max().expect("non-empty")) + 1;
    let mut cluster_ways = [0u32; MAX_CLUSTERS];
    for (&c, a) in clusters.iter().zip(&state.allocs) {
        cluster_ways[usize::from(c)] = a.ways;
    }
    let spare = budget.total_ways - cluster_ways[..k].iter().sum::<u32>();
    let mut region = [(0u32, 0u32); MAX_CLUSTERS];
    let mut start = budget.first_way;
    for (c, slot) in region[..k].iter_mut().enumerate() {
        let count = cluster_ways[c] + if c == k - 1 { spare } else { 0 };
        *slot = (start, count);
        start += count;
    }
    out.extend(clusters.iter().map(|&c| {
        let (start, count) = region[usize::from(c)];
        CbmMask::contiguous(start, count, machine_ways).expect("valid plan fits the machine")
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget11() -> WaysBudget {
        WaysBudget::full_machine(11)
    }

    fn class(llc: AppState, mba: AppState) -> AppClassification {
        AppClassification {
            llc,
            mba,
            slowdown: 1.0,
        }
    }

    fn mixed() -> Vec<AppClassification> {
        vec![
            class(AppState::Demand, AppState::Supply),
            class(AppState::Supply, AppState::Supply),
            class(AppState::Demand, AppState::Supply),
            class(AppState::Maintain, AppState::Demand),
        ]
    }

    #[test]
    fn same_class_shares_a_cluster_and_allocation() {
        let (clusters, state) = form_clusters(&mixed(), &budget11());
        assert_eq!(clusters.len(), 4);
        assert_eq!(clusters[0], clusters[2], "same class ⇒ same cluster");
        assert_ne!(clusters[0], clusters[1]);
        assert_ne!(clusters[0], clusters[3]);
        assert_eq!(state.allocs[0], state.allocs[2]);
        assert!(clusters_are_valid(&clusters, &state, &budget11()));
    }

    #[test]
    fn formation_is_deterministic() {
        let apps = mixed();
        let a = form_clusters(&apps, &budget11());
        let b = form_clusters(&apps, &budget11());
        assert_eq!(a, b, "identical inputs must produce identical plans");
    }

    #[test]
    fn demand_heavy_clusters_get_more_ways() {
        let (clusters, state) = form_clusters(&mixed(), &budget11());
        let demand_ways = state.allocs[0].ways; // Two Demand members.
        let supply_ways = state.allocs[1].ways; // One Supply member.
        assert!(
            demand_ways > supply_ways,
            "demanders {demand_ways} vs supplier {supply_ways}"
        );
        // Per-cluster totals, not per-member totals, fit the budget.
        let mut seen = std::collections::BTreeSet::new();
        let total: u32 = clusters
            .iter()
            .zip(&state.allocs)
            .filter(|(c, _)| seen.insert(**c))
            .map(|(_, a)| a.ways)
            .sum();
        assert!(total <= 11);
        assert!(total >= 11 - 1, "apportionment should not strand ways");
    }

    #[test]
    fn mba_grants_follow_the_bandwidth_class_and_cap() {
        let capped = WaysBudget {
            first_way: 0,
            total_ways: 11,
            mba_cap: MbaLevel::new(50),
        };
        let (_, state) = form_clusters(&mixed(), &capped);
        assert_eq!(state.allocs[0].mba.percent(), 30, "bandwidth supplier");
        assert_eq!(state.allocs[3].mba.percent(), 50, "demander hits the cap");
    }

    #[test]
    fn masks_are_shared_within_and_disjoint_across_clusters() {
        let (clusters, state) = form_clusters(&mixed(), &budget11());
        let mut masks = Vec::new();
        cluster_masks_into(&clusters, &state, &budget11(), 11, &mut masks);
        assert_eq!(masks[0], masks[2], "cluster members share one mask");
        assert_eq!(masks[0].bits() & masks[1].bits(), 0);
        assert_eq!(masks[0].bits() & masks[3].bits(), 0);
        assert_eq!(masks[1].bits() & masks[3].bits(), 0);
        let union = masks.iter().fold(0u32, |u, m| u | m.bits());
        assert_eq!(union, 0x7ff, "cluster regions must cover the budget");
    }

    #[test]
    fn single_class_collapses_to_one_cluster_over_the_whole_budget() {
        let apps = vec![class(AppState::Supply, AppState::Supply); 3];
        let (clusters, state) = form_clusters(&apps, &budget11());
        assert!(clusters.iter().all(|&c| c == 0));
        let mut masks = Vec::new();
        cluster_masks_into(&clusters, &state, &budget11(), 11, &mut masks);
        assert!(masks.iter().all(|m| m.bits() == 0x7ff));
    }

    #[test]
    fn validity_rejects_ragged_and_oversized_plans() {
        let (clusters, mut state) = form_clusters(&mixed(), &budget11());
        assert!(clusters_are_valid(&clusters, &state, &budget11()));
        // A member diverging from its cluster's shared grant.
        state.allocs[2].ways += 1;
        assert!(!clusters_are_valid(&clusters, &state, &budget11()));
        state.allocs[2].ways -= 1;
        // Non-dense ids.
        let ragged = vec![0u16, 2, 0, 3];
        assert!(!clusters_are_valid(&ragged, &state, &budget11()));
        // Length mismatch and emptiness.
        assert!(!clusters_are_valid(&clusters[..3], &state, &budget11()));
        assert!(!clusters_are_valid(
            &[],
            &SystemState::default(),
            &budget11()
        ));
    }

    #[test]
    fn budget_offset_shifts_cluster_regions() {
        let budget = WaysBudget {
            first_way: 6,
            total_ways: 5,
            mba_cap: MbaLevel::new(40),
        };
        let apps = vec![
            class(AppState::Demand, AppState::Demand),
            class(AppState::Supply, AppState::Supply),
        ];
        let (clusters, state) = form_clusters(&apps, &budget);
        let mut masks = Vec::new();
        cluster_masks_into(&clusters, &state, &budget, 11, &mut masks);
        assert!(masks.iter().all(|m| m.ways().all(|w| w >= 6)));
        let union = masks.iter().fold(0u32, |u, m| u | m.bits());
        assert_eq!(union, 0b0111_1100_0000);
        assert!(state.allocs.iter().all(|a| a.mba <= budget.mba_cap));
    }
}
