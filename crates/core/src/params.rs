//! CoPart design parameters (§5.2, §5.3, §5.4 of the paper).

use std::time::Duration;

/// All tunables of the controller, with the paper's published defaults.
///
/// The values were chosen by the authors through design-space exploration
/// (§5.5.3); Figure 11 sweeps `delta_p`, `miss_ratio_demand`, and
/// `traffic_ratio_demand` around these defaults, which the `repro fig11`
/// harness reproduces.
#[derive(Debug, Clone, PartialEq)]
pub struct CoPartParams {
    /// α — LLC access-rate threshold (accesses/second) below which an
    /// application has no use for cache capacity. Paper: 1.5 × 10⁶.
    pub alpha_access_rate: f64,
    /// β — LLC miss-ratio floor below which the allocated LLC already
    /// captures the working set. Paper: 1 %.
    pub miss_ratio_supply: f64,
    /// Β — LLC miss-ratio ceiling above which the application wants more
    /// ways. Paper: 3 %.
    pub miss_ratio_demand: f64,
    /// δ_P — relative performance-change threshold for FSM transitions.
    /// Paper: 5 %.
    pub delta_p: f64,
    /// γ — memory-traffic-ratio floor below which bandwidth can be
    /// supplied. Paper: 10 %.
    pub traffic_ratio_supply: f64,
    /// Γ — memory-traffic-ratio ceiling above which more bandwidth is
    /// demanded. Paper: 30 %.
    pub traffic_ratio_demand: f64,
    /// θ — converged-state retries with random neighbor states before the
    /// manager transitions to the idle phase (Algorithm 1). Paper: 3.
    pub theta_retries: u32,
    /// Adaptation period between FSM updates (the `sleep(period)` of
    /// Algorithm 1).
    pub period: Duration,
    /// l_P — way count used by the LLC-sensitivity profiling probe
    /// (§5.4.1). Paper: 2.
    pub profile_ways: u32,
    /// M_P — MBA level (percent) used by the bandwidth-sensitivity
    /// profiling probe. Paper: 20 %.
    pub profile_mba_percent: u8,
    /// Performance-degradation threshold that sets an initial FSM state to
    /// Demand during profiling. Paper: 10 %.
    pub profile_demand_threshold: f64,
    /// Periods spent at each profiling allocation (the paper only says
    /// "briefly"; the first period is discarded as settling time).
    pub profile_periods: u32,
    /// Seed for the controller's own randomness (ANY-type preference
    /// shuffling and neighbor-state selection).
    pub seed: u64,
    /// Ablation switch: when false, the memory-bandwidth FSM loses the
    /// §5.3 cross-resource rule (a small gain after an *LLC* grant then
    /// demotes Demand → Maintain just like an MBA grant would).
    pub cross_resource_awareness: bool,
    /// Ablation switch: when false, Algorithm 2's Hospitals/Residents
    /// matching is replaced by a greedy single-transfer step
    /// (highest-slowdown consumer takes from the lowest-slowdown
    /// producer).
    pub use_hr_matching: bool,
}

impl Default for CoPartParams {
    fn default() -> Self {
        CoPartParams {
            alpha_access_rate: 1.5e6,
            miss_ratio_supply: 0.01,
            miss_ratio_demand: 0.03,
            delta_p: 0.05,
            traffic_ratio_supply: 0.10,
            traffic_ratio_demand: 0.30,
            theta_retries: 3,
            period: Duration::from_millis(200),
            profile_ways: 2,
            profile_mba_percent: 20,
            profile_demand_threshold: 0.10,
            profile_periods: 4,
            seed: 0x51C0_FA12,
            cross_resource_awareness: true,
            use_hr_matching: true,
        }
    }
}

impl CoPartParams {
    /// Validates threshold ordering invariants.
    ///
    /// # Panics
    ///
    /// Panics if `β > Β`, `γ > Γ`, or any threshold is outside `[0, 1]`;
    /// parameters are configuration, so this is a deployment error worth
    /// failing fast on.
    pub fn assert_valid(&self) {
        assert!(
            self.miss_ratio_supply <= self.miss_ratio_demand,
            "β must not exceed Β"
        );
        assert!(
            self.traffic_ratio_supply <= self.traffic_ratio_demand,
            "γ must not exceed Γ"
        );
        for (name, v) in [
            ("β", self.miss_ratio_supply),
            ("Β", self.miss_ratio_demand),
            ("δ_P", self.delta_p),
            ("γ", self.traffic_ratio_supply),
            ("Γ", self.traffic_ratio_demand),
            ("profile threshold", self.profile_demand_threshold),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} outside [0, 1]");
        }
        assert!(self.profile_ways >= 1, "profiling needs at least one way");
        assert!(self.profile_periods >= 2, "profiling needs a settle period");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = CoPartParams::default();
        p.assert_valid();
        assert_eq!(p.alpha_access_rate, 1.5e6);
        assert_eq!(p.miss_ratio_supply, 0.01);
        assert_eq!(p.miss_ratio_demand, 0.03);
        assert_eq!(p.delta_p, 0.05);
        assert_eq!(p.traffic_ratio_supply, 0.10);
        assert_eq!(p.traffic_ratio_demand, 0.30);
        assert_eq!(p.theta_retries, 3);
        assert_eq!(p.profile_ways, 2);
        assert_eq!(p.profile_mba_percent, 20);
        assert_eq!(p.profile_demand_threshold, 0.10);
    }

    #[test]
    #[should_panic(expected = "β must not exceed Β")]
    fn inverted_miss_thresholds_rejected() {
        let p = CoPartParams {
            miss_ratio_supply: 0.05,
            miss_ratio_demand: 0.01,
            ..CoPartParams::default()
        };
        p.assert_valid();
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_threshold_rejected() {
        let p = CoPartParams {
            delta_p: 1.5,
            ..CoPartParams::default()
        };
        p.assert_valid();
    }
}
