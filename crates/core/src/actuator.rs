//! The actuation layer: writing partitions to the backend with bounded
//! retry/backoff and transactional rollback.
//!
//! The fourth stage of the control-plane pipeline (DESIGN.md §12). The
//! [`Actuator`] trait owns every schemata write the runtime performs:
//! plain full-state applies (membership and budget changes) and the
//! per-epoch transactional switch, where either every group's CBM and MBA
//! level land or the already-written prefix is rolled back. The epoch
//! driver stays free of retry loops and rollback bookkeeping; it reads
//! the outcome from an [`ApplyReport`] and maps it onto metrics.

use std::time::Duration;

use copart_rdt::{CbmMask, ClosId, RdtBackend, RdtError};

use crate::state::{SystemState, WaysBudget};

/// Bounded retry-with-backoff policy for transient backend failures.
///
/// On a real server a schemata write can race another resctrl user and
/// come back `EBUSY` ([`RdtError::Busy`]); such failures are expected to
/// clear within a write or two. The actuator retries them up to
/// `max_write_attempts` total attempts, backing off exponentially from
/// `retry_backoff` between attempts. The backoff is spent through
/// [`RdtBackend::advance`], so it is virtual time on the simulator and a
/// real sleep on hardware.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Total attempts per backend write, including the first
    /// (1 disables retrying).
    pub max_write_attempts: u32,
    /// Backoff before the first retry; doubled on each further retry.
    pub retry_backoff: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_write_attempts: 4,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

/// Runs `op`, retrying transient ([`RdtError::is_transient`]) failures
/// with exponential backoff per `resilience`. Each retry is counted into
/// `retries`. Backoff-advance failures are ignored: the backoff is best
/// effort, the retried write is what matters.
///
/// # Errors
///
/// Returns the first non-transient error, or the last transient one once
/// the attempt budget is exhausted.
pub fn retry_transient<B: RdtBackend, T>(
    backend: &mut B,
    resilience: &ResilienceConfig,
    retries: &mut u32,
    mut op: impl FnMut(&mut B) -> Result<T, RdtError>,
) -> Result<T, RdtError> {
    let mut attempt = 1u32;
    loop {
        match op(backend) {
            Err(e) if e.is_transient() && attempt < resilience.max_write_attempts.max(1) => {
                *retries += 1;
                let backoff = resilience.retry_backoff * 2u32.saturating_pow(attempt - 1);
                let _ = backend.advance(backoff);
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// What one actuation did, beyond its return value: how many transient
/// retries were spent and what the rollback path hit. The epoch driver
/// folds these into its metrics registry and fault samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Transient write failures that were retried (successfully or not).
    pub write_retries: u32,
    /// Rollback writes that themselves failed persistently and were
    /// skipped.
    pub rollback_write_failures: u32,
    /// Whether a transactional apply failed and was rolled back.
    pub rolled_back: bool,
}

/// The actuation seam of the control-plane pipeline.
///
/// Implementations turn a [`SystemState`] into backend writes; the
/// runtime never calls [`RdtBackend::set_cbm`] / [`RdtBackend::set_mba`]
/// directly. The CAT mask layout is computed by the *caller*: the epoch
/// driver owns the layout policy — disjoint per-application packing
/// ([`SystemState::masks_into`]) or shared per-cluster regions
/// ([`crate::cluster::cluster_masks_into`]) — and the actuator writes
/// whatever masks it is handed, one per group, alongside each
/// allocation's (capped) MBA level.
///
/// # Examples
///
/// The retry machinery under the trait, demonstrated directly: a write
/// that comes back busy once is retried and lands, and the spent retry
/// is accounted.
///
/// ```
/// use copart_core::actuator::{retry_transient, ResilienceConfig};
/// use copart_rdt::{RdtError, SimBackend};
/// use copart_sim::{Machine, MachineConfig};
///
/// let mut backend = SimBackend::new(Machine::new(MachineConfig::xeon_gold_6130()));
/// let resilience = ResilienceConfig::default();
/// let mut retries = 0;
/// let mut first = true;
/// let outcome = retry_transient(&mut backend, &resilience, &mut retries, |_b| {
///     if std::mem::take(&mut first) {
///         Err(RdtError::Busy("schemata write"))
///     } else {
///         Ok(())
///     }
/// });
/// assert!(outcome.is_ok());
/// assert_eq!(retries, 1);
/// ```
pub trait Actuator<B: RdtBackend> {
    /// The retry/backoff policy in force.
    fn resilience(&self) -> &ResilienceConfig;

    /// Writes `state`'s MBA levels and the caller-laid-out `masks` for
    /// every group, retrying transient failures. The first persistent
    /// failure propagates — membership and budget changes use this and
    /// surface the error to their caller, who owns the recovery decision.
    ///
    /// # Errors
    ///
    /// Returns the first write failure that survives retrying.
    fn apply(
        &self,
        backend: &mut B,
        groups: &[ClosId],
        state: &SystemState,
        budget: &WaysBudget,
        masks: &[CbmMask],
        report: &mut ApplyReport,
    ) -> Result<(), RdtError>;

    /// Transactionally switches the partition from `old` (laid out as
    /// `old_masks`) to `new` (laid out as `new_masks`): either every
    /// group's CBM and MBA level land (returns `true`; the caller adopts
    /// `new`) or the already-written prefix is rolled back to `old`,
    /// which stays in force (returns `false`). Mid-transition the masks
    /// of prefix and suffix groups may overlap — CAT permits that (it
    /// restricts allocation, not lookup), so every intermediate picture
    /// the hardware sees is individually valid.
    #[allow(clippy::too_many_arguments)] // The transition's two layouts travel alongside their states.
    fn apply_txn(
        &self,
        backend: &mut B,
        groups: &[ClosId],
        old: &SystemState,
        new: &SystemState,
        budget: &WaysBudget,
        new_masks: &[CbmMask],
        old_masks: &[CbmMask],
        report: &mut ApplyReport,
    ) -> bool;
}

/// The default actuator: bounded-retry writes with prefix rollback, as
/// described on [`Actuator::apply_txn`].
#[derive(Debug, Clone, Default)]
pub struct TransactionalActuator {
    /// The retry/backoff policy applied to every write.
    pub resilience: ResilienceConfig,
}

impl TransactionalActuator {
    /// An actuator with the given retry/backoff policy.
    pub fn new(resilience: ResilienceConfig) -> TransactionalActuator {
        TransactionalActuator { resilience }
    }
}

impl<B: RdtBackend> Actuator<B> for TransactionalActuator {
    fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    fn apply(
        &self,
        backend: &mut B,
        groups: &[ClosId],
        state: &SystemState,
        budget: &WaysBudget,
        masks: &[CbmMask],
        report: &mut ApplyReport,
    ) -> Result<(), RdtError> {
        for ((group, alloc), mask) in groups.iter().zip(&state.allocs).zip(masks.iter()) {
            let group = *group;
            let mask = *mask;
            let level = alloc.mba.min(budget.mba_cap);
            retry_transient(backend, &self.resilience, &mut report.write_retries, |b| {
                b.set_cbm(group, mask)
            })?;
            retry_transient(backend, &self.resilience, &mut report.write_retries, |b| {
                b.set_mba(group, level)
            })?;
        }
        Ok(())
    }

    /// Transient write failures are retried with backoff first; only a
    /// write that stays broken triggers the rollback. Rollback writes get
    /// the same bounded retry, and one that *still* fails is counted
    /// (`rollback_write_failures`) and skipped — the group keeps the new
    /// mask until the next successful apply overwrites it, which is safe
    /// for the same reason overlap mid-transition is.
    fn apply_txn(
        &self,
        backend: &mut B,
        groups: &[ClosId],
        old: &SystemState,
        new: &SystemState,
        budget: &WaysBudget,
        new_masks: &[CbmMask],
        old_masks: &[CbmMask],
        report: &mut ApplyReport,
    ) -> bool {
        let mut failed_at = None;
        for (i, (alloc, mask)) in new.allocs.iter().zip(new_masks.iter()).enumerate() {
            let group = groups[i];
            let mask = *mask;
            let level = alloc.mba.min(budget.mba_cap);
            let wrote =
                retry_transient(backend, &self.resilience, &mut report.write_retries, |b| {
                    b.set_cbm(group, mask)
                })
                .and_then(|()| {
                    retry_transient(backend, &self.resilience, &mut report.write_retries, |b| {
                        b.set_mba(group, level)
                    })
                });
            if wrote.is_err() {
                failed_at = Some(i);
                break;
            }
        }
        if let Some(k) = failed_at {
            // Roll groups 0..=k back to the old partition (group k may
            // have taken the new CBM before its MBA write failed); the
            // untouched suffix still holds it.
            for i in 0..=k {
                let group = groups[i];
                let mask = old_masks[i];
                let level = old.allocs[i].mba.min(budget.mba_cap);
                if retry_transient(backend, &self.resilience, &mut report.write_retries, |b| {
                    b.set_cbm(group, mask)
                })
                .is_err()
                {
                    report.rollback_write_failures += 1;
                }
                if retry_transient(backend, &self.resilience, &mut report.write_retries, |b| {
                    b.set_mba(group, level)
                })
                .is_err()
                {
                    report.rollback_write_failures += 1;
                }
            }
            report.rolled_back = true;
            false
        } else {
            true
        }
    }
}
