//! Synthetic planner-scale harness: the exploration stepper at
//! thousands of applications, without a simulated machine underneath.
//!
//! The cache/timing simulator tops out at a handful of applications (one
//! per CLOS on an 11-way LLC), but the planner itself — role derivation,
//! the Hospitals/Residents matching, and the transactional bookkeeping —
//! must stay inside the paper's ~1 ms epoch budget at three to four
//! orders of magnitude more consumers. This module drives
//! [`Explorer::plan_into`] over a deterministic synthetic population:
//! classifier verdicts are drawn from a seeded RNG and churned every
//! epoch, the planner's decision is applied to the system state exactly
//! as the runtime would, and per-epoch plan latencies are recorded.
//!
//! Determinism: the whole run is a pure function of [`ScaleConfig`]. The
//! [`ScaleReport::digest`] folds every decision and the resulting
//! allocations into an FNV-1a hash (timings excluded), so two runs with
//! the same config — on different thread counts, machines, or builds —
//! must produce identical digests. `tests/parallel_determinism.rs` and
//! the bench gate both rely on this.

use std::time::Instant;

use copart_rdt::MbaLevel;
use copart_rng::XorShift64Star;
use copart_workloads::fleet::MixSampler;
use copart_workloads::stream::StreamReference;
use copart_workloads::Category;

use crate::actuator::ResilienceConfig;
use crate::fsm::AppState;
use crate::metrics::unfairness;
use crate::next_state::AppClassification;
use crate::planner::{Explorer, PlanDecision, PlanScratch};
use crate::runtime::RuntimeConfig;
use crate::state::{SystemState, WaysBudget};
use crate::CoPartParams;

/// How the synthetic population's classifier verdicts are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScalePopulation {
    /// Uniform random Supply/Maintain/Demand states — the original
    /// harness, and the population the bench gate's digests pin.
    #[default]
    Uniform,
    /// The fleet's tenant mix: each application is a benchmark drawn
    /// from the zipf-skewed [`MixSampler`] (the same sampler behind the
    /// fleet controller's churn tape), and its verdicts are biased by
    /// the benchmark's §3.3 sensitivity category — LLC-sensitive images
    /// mostly demand ways, insensitive ones mostly supply them.
    FleetMix,
}

/// Configuration of one synthetic planner-scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Synthetic application count (each gets `ways_per_app` LLC ways in
    /// the scaled budget, so any population fits).
    pub n_apps: usize,
    /// Adaptation epochs to drive.
    pub epochs: u32,
    /// Seed for the synthetic population and its churn.
    pub seed: u64,
    /// Fraction of applications whose classification is redrawn each
    /// epoch (steady state churns a few; 1.0 redraws everyone).
    pub churn: f64,
    /// Budget ways per application (the scaled machine's LLC).
    pub ways_per_app: u32,
    /// Where the classifier verdicts come from.
    pub population: ScalePopulation,
}

impl ScaleConfig {
    /// A standard run: 2 ways/app, 2 % churn per epoch, uniform verdicts.
    pub fn new(n_apps: usize, epochs: u32, seed: u64) -> ScaleConfig {
        ScaleConfig {
            n_apps,
            epochs,
            seed,
            churn: 0.02,
            ways_per_app: 2,
            population: ScalePopulation::Uniform,
        }
    }
}

/// The outcome of a planner-scale run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleReport {
    /// Application count driven.
    pub n_apps: usize,
    /// Epochs driven.
    pub epochs: u32,
    /// FNV-1a digest of every decision and resulting allocation
    /// (timings excluded); identical configs must produce identical
    /// digests regardless of machine or parallelism.
    pub digest: u64,
    /// Epochs that applied a matching transfer.
    pub transfers: u64,
    /// Epochs that restarted from a random neighbor (θ-retry).
    pub theta_retries: u64,
    /// Epochs that converged.
    pub converges: u64,
    /// Total instability-chaining iterations across all epochs.
    pub matching_rounds: u64,
    /// Median per-epoch planning latency, nanoseconds.
    pub plan_ns_p50: u64,
    /// 99th-percentile per-epoch planning latency, nanoseconds.
    pub plan_ns_p99: u64,
    /// Worst per-epoch planning latency, nanoseconds.
    pub plan_ns_max: u64,
    /// Role-cache hits across the run (see `ExploreScratch`).
    pub role_cache_hits: u64,
    /// Role-cache misses across the run.
    pub role_cache_misses: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fnv1a_u64(hash: &mut u64, v: u64) {
    fnv1a(hash, &v.to_le_bytes());
}

fn random_state(rng: &mut XorShift64Star) -> AppState {
    match rng.gen_range(0..3u8) {
        0 => AppState::Supply,
        1 => AppState::Maintain,
        _ => AppState::Demand,
    }
}

fn redraw(rng: &mut XorShift64Star) -> AppClassification {
    AppClassification {
        llc: random_state(rng),
        mba: random_state(rng),
        slowdown: 1.0 + rng.gen_range(0.0..3.0),
    }
}

/// A verdict biased toward Demand on a sensitive dimension and toward
/// Supply on an insensitive one (6:3:1), mirroring how the §4.2
/// classifier treats the §3.3 categories in the full simulation.
fn biased_state(rng: &mut XorShift64Star, sensitive: bool) -> AppState {
    match (rng.gen_range(0..10u8), sensitive) {
        (0..=5, true) | (9, false) => AppState::Demand,
        (6..=8, _) => AppState::Maintain,
        _ => AppState::Supply,
    }
}

fn redraw_fleet(rng: &mut XorShift64Star, category: Category) -> AppClassification {
    let llc = biased_state(rng, category.llc_sensitive());
    let mba = biased_state(rng, category.bw_sensitive());
    // Sensitive tenants can be badly slowed; insensitive ones hover
    // near their solo speed no matter what the allocator does.
    let span = if category.llc_sensitive() || category.bw_sensitive() {
        3.0
    } else {
        0.5
    };
    AppClassification {
        llc,
        mba,
        slowdown: 1.0 + rng.gen_range(0.0..span),
    }
}

/// The per-application verdict source, resolved once at startup.
enum Verdicts {
    Uniform,
    /// One §3.3 category per application, drawn from the fleet mix.
    Fleet(Vec<Category>),
}

impl Verdicts {
    fn build(cfg: &ScaleConfig, rng: &mut XorShift64Star) -> Verdicts {
        match cfg.population {
            ScalePopulation::Uniform => Verdicts::Uniform,
            ScalePopulation::FleetMix => {
                let sampler = MixSampler::new(cfg.seed);
                Verdicts::Fleet(
                    (0..cfg.n_apps)
                        .map(|_| sampler.sample(rng.next_f64()).category())
                        .collect(),
                )
            }
        }
    }

    fn redraw(&self, rng: &mut XorShift64Star, app: usize) -> AppClassification {
        match self {
            Verdicts::Uniform => redraw(rng),
            Verdicts::Fleet(cats) => redraw_fleet(rng, cats[app]),
        }
    }
}

/// Drives [`Explorer::plan_into`] for `cfg.epochs` epochs over a churned
/// synthetic population of `cfg.n_apps` applications, applying each
/// decision the way the consolidation runtime would.
///
/// # Panics
///
/// Panics on a zero application count or zero `ways_per_app`.
pub fn run_planner_scale(cfg: &ScaleConfig) -> ScaleReport {
    assert!(cfg.n_apps >= 1, "need at least one application");
    assert!(cfg.ways_per_app >= 1, "every application needs a way");

    let budget = WaysBudget {
        first_way: 0,
        total_ways: cfg.n_apps as u32 * cfg.ways_per_app,
        mba_cap: MbaLevel::MAX,
    };
    let rt_cfg = RuntimeConfig {
        params: CoPartParams::default(),
        manage_llc: true,
        manage_mba: true,
        budget,
        // The planner never consults the STREAM table; a flat placeholder
        // keeps the synthetic harness free of machine measurement.
        stream: StreamReference::from_table([1.0; 10]),
        resilience: ResilienceConfig::default(),
        planner: Default::default(),
    };

    let mut rng = XorShift64Star::seed_from_u64(cfg.seed ^ 0x5ca1_ab1e);
    let verdicts = Verdicts::build(cfg, &mut rng);
    let mut classes: Vec<AppClassification> = (0..cfg.n_apps)
        .map(|i| verdicts.redraw(&mut rng, i))
        .collect();
    let mut slowdowns: Vec<f64> = classes.iter().map(|c| c.slowdown).collect();

    let mut state = SystemState::equal_split(cfg.n_apps, &budget, MbaLevel::MAX);
    let mut explorer = Explorer::new(cfg.seed);
    let mut scratch = PlanScratch::default();

    let churned = ((cfg.churn * cfg.n_apps as f64).ceil() as usize).min(cfg.n_apps);
    let mut digest = FNV_OFFSET;
    fnv1a_u64(&mut digest, cfg.n_apps as u64);
    fnv1a_u64(&mut digest, u64::from(cfg.epochs));

    let mut transfers = 0u64;
    let mut theta_retries = 0u64;
    let mut converges = 0u64;
    let mut matching_rounds = 0u64;
    let mut plan_ns: Vec<u64> = Vec::with_capacity(cfg.epochs as usize);

    for epoch in 0..cfg.epochs {
        // Churn: redraw a deterministic handful of classifications.
        for _ in 0..churned {
            let i = rng.gen_range(0..cfg.n_apps);
            classes[i] = verdicts.redraw(&mut rng, i);
            slowdowns[i] = classes[i].slowdown;
        }
        let current_unfairness = unfairness(&slowdowns);
        explorer.record_best(current_unfairness, &state, epoch > 0);

        let t0 = Instant::now();
        let stats = explorer.plan_into(&rt_cfg, &state, &classes, current_unfairness, &mut scratch);
        plan_ns.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);

        matching_rounds += u64::from(stats.matching_rounds);
        let tag: u64 = match &stats.decision {
            PlanDecision::Transfer => {
                state.allocs.clone_from(&scratch.proposal.allocs);
                explorer.transfer_applied();
                transfers += 1;
                1
            }
            PlanDecision::ThetaRetry => {
                state.allocs.clone_from(&scratch.proposal.allocs);
                explorer.retry_applied();
                theta_retries += 1;
                2
            }
            PlanDecision::Converge(settle) => {
                if let Some((_, best)) = settle {
                    state.allocs.clone_from(&best.allocs);
                }
                explorer.settle(current_unfairness);
                explorer.restart();
                converges += 1;
                3
            }
        };
        fnv1a_u64(&mut digest, u64::from(epoch));
        fnv1a_u64(&mut digest, tag);
        fnv1a_u64(&mut digest, u64::from(stats.matching_rounds));
        for a in &state.allocs {
            fnv1a_u64(&mut digest, u64::from(a.ways));
            fnv1a_u64(&mut digest, u64::from(a.mba.percent()));
        }
    }

    plan_ns.sort_unstable();
    let pct = |p: f64| -> u64 {
        if plan_ns.is_empty() {
            return 0;
        }
        let idx = ((plan_ns.len() as f64 - 1.0) * p).round() as usize;
        plan_ns[idx]
    };
    ScaleReport {
        n_apps: cfg.n_apps,
        epochs: cfg.epochs,
        digest,
        transfers,
        theta_retries,
        converges,
        matching_rounds,
        plan_ns_p50: pct(0.50),
        plan_ns_p99: pct(0.99),
        plan_ns_max: plan_ns.last().copied().unwrap_or(0),
        role_cache_hits: scratch.explore.cache_hits(),
        role_cache_misses: scratch.explore.cache_misses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_configs_produce_identical_digests() {
        let cfg = ScaleConfig::new(64, 40, 0xD16E_5701);
        let a = run_planner_scale(&cfg);
        let b = run_planner_scale(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.theta_retries, b.theta_retries);
        assert_eq!(a.converges, b.converges);
        assert_eq!(a.matching_rounds, b.matching_rounds);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_planner_scale(&ScaleConfig::new(64, 40, 1));
        let b = run_planner_scale(&ScaleConfig::new(64, 40, 2));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn every_epoch_is_accounted_for() {
        let r = run_planner_scale(&ScaleConfig::new(32, 50, 7));
        assert_eq!(r.transfers + r.theta_retries + r.converges, 50);
        assert!(r.plan_ns_p50 <= r.plan_ns_p99);
        assert!(r.plan_ns_p99 <= r.plan_ns_max);
    }

    #[test]
    fn role_cache_sees_hits_under_low_churn() {
        let r = run_planner_scale(&ScaleConfig::new(256, 30, 11));
        assert!(
            r.role_cache_hits > r.role_cache_misses,
            "low churn should mostly reuse cached roles: {} hits vs {} misses",
            r.role_cache_hits,
            r.role_cache_misses
        );
    }

    #[test]
    fn fleet_mix_population_is_deterministic_and_diverges_from_uniform() {
        let mut fleet = ScaleConfig::new(128, 30, 0xF1EE7);
        fleet.population = ScalePopulation::FleetMix;
        let a = run_planner_scale(&fleet);
        let b = run_planner_scale(&fleet);
        assert_eq!(a.digest, b.digest, "fleet population is a pure function");
        let uniform = run_planner_scale(&ScaleConfig::new(128, 30, 0xF1EE7));
        assert_ne!(
            a.digest, uniform.digest,
            "the zipf-skewed mix must steer the planner differently"
        );
        assert_eq!(a.transfers + a.theta_retries + a.converges, 30);
    }

    #[test]
    fn thousand_apps_complete() {
        let r = run_planner_scale(&ScaleConfig::new(1000, 10, 3));
        assert_eq!(r.n_apps, 1000);
        assert_eq!(r.transfers + r.theta_retries + r.converges, 10);
    }
}
