//! The resource manager's execution flow (Figure 10, Algorithm 1).
//!
//! [`ConsolidationRuntime`] drives a set of application groups on an
//! [`RdtBackend`] through the paper's three phases:
//!
//! 1. **Application profiling** (§5.4.1) — each application briefly runs
//!    with full resources (establishing `IPS_full` for Eq 1), with
//!    `(l_P, 100 %)` to probe LLC sensitivity, and with `(L, M_P)` to
//!    probe bandwidth sensitivity; the probes pick the classifiers'
//!    initial states.
//! 2. **System state space exploration** (§5.4.2, Algorithm 1) — each
//!    period the FSMs are updated from counters and Algorithm 2 proposes a
//!    new state; when the state stops changing, up to θ random neighbor
//!    states are tried before the manager goes idle.
//! 3. **Idle** (§5.4.3) — monitoring only; membership or budget changes
//!    (and sustained unfairness drift) trigger re-adaptation.
//!
//! The runtime itself is a thin epoch driver over the four control-plane
//! layers (DESIGN.md §12): each period it feeds counter reads to the
//! per-application [`Sensor`]s, steps the [`Classifier`]s, asks the
//! [`Explorer`] for one Algorithm 1 step, and
//! hands the proposal to the [`Actuator`]. Cross-cutting concerns —
//! tracing, metrics, fault accounting — live here, at the seams.

use std::sync::Arc;
use std::time::Instant;

use copart_rdt::{ClosId, MbaLevel, RdtBackend, RdtError};
use copart_telemetry::{
    AllocSample, AppSample, FaultSample, MetricsRegistry, MetricsSnapshot, NullRecorder, Rates,
    Recorder, TraceClass, TraceDecision, TraceEvent, TracePhase,
};
use copart_workloads::stream::StreamReference;

pub use crate::actuator::ResilienceConfig;
use crate::actuator::{retry_transient, Actuator, ApplyReport, TransactionalActuator};
use crate::classifier::{
    initial_states, Classifier, DualFsmClassifier, Measurement, ProfileProbes,
};
use crate::cluster;
use crate::fsm::AppState;
use crate::metrics;
use crate::next_state::{AppClassification, AppliedEvents};
use crate::planner::{Explorer, ExplorerSnapshot, PlanDecision, PlanScratch};
use crate::sensor::{Sensor, SensorSnapshot, WindowedSensor};
use crate::state::{SystemState, WaysBudget};
use crate::CoPartParams;

/// Which phase the resource manager is in (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Measuring per-application profiles.
    Profiling,
    /// Exploring the system state space (Algorithm 1).
    Exploring,
    /// Converged; monitoring only.
    Idle,
}

/// Samples the sensor keeps per application (a little over the paper's
/// adaptation horizon; only the last two matter for period rates).
const SENSOR_WINDOW: usize = 8;

/// One consolidated application under management: its identity plus its
/// sensing and classification layers.
#[derive(Debug)]
pub struct ManagedApp {
    /// The application's resource group (CLOS).
    pub group: ClosId,
    /// Display name.
    pub name: String,
    /// `IPS_full` measured during profiling (Eq 1 numerator).
    pub ips_full: f64,
    /// Fairness weight (default 1): the controller equalizes
    /// `slowdown / weight`, so a weight-2 application is entitled to run
    /// twice as close to its solo speed (see
    /// [`crate::metrics::weighted_unfairness`]).
    pub weight: f64,
    sensor: WindowedSensor,
    classifier: DualFsmClassifier,
    prev_ips: f64,
    last_ips: f64,
    last_events: AppliedEvents,
}

impl ManagedApp {
    fn new(group: ClosId, name: String) -> ManagedApp {
        ManagedApp {
            group,
            name,
            ips_full: 0.0,
            weight: 1.0,
            sensor: WindowedSensor::new(SENSOR_WINDOW),
            classifier: DualFsmClassifier::new(),
            prev_ips: 0.0,
            last_ips: 0.0,
            last_events: AppliedEvents::default(),
        }
    }

    /// Current slowdown estimate (Eq 1).
    pub fn slowdown(&self) -> f64 {
        metrics::slowdown(self.ips_full, self.last_ips)
    }

    /// Weight-normalized slowdown — the quantity the controller equalizes.
    pub fn weighted_slowdown(&self) -> f64 {
        self.slowdown() * self.weight
    }

    /// Current classifier states `(LLC, MBA)`.
    pub fn classifier_states(&self) -> (AppState, AppState) {
        self.classifier.states()
    }
}

/// Per-application data recorded each period.
#[derive(Debug, Clone, PartialEq)]
pub struct AppPeriod {
    /// Application name.
    pub name: String,
    /// IPS over the period.
    pub ips: f64,
    /// Slowdown estimate (Eq 1).
    pub slowdown: f64,
    /// LLC classifier state after the update.
    pub llc_state: AppState,
    /// MBA classifier state after the update.
    pub mba_state: AppState,
}

/// The record of one adaptation period.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodRecord {
    /// Backend time at the end of the period, nanoseconds.
    pub time_ns: u64,
    /// Phase during the period.
    pub phase: Phase,
    /// System state in force during the period.
    pub state: SystemState,
    /// Per-application measurements.
    pub apps: Vec<AppPeriod>,
    /// Unfairness (Eq 2) of the current slowdown estimates.
    pub unfairness: f64,
}

/// Which planning algorithm drives the exploration phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// The paper's Algorithm 1: per-application disjoint partitions,
    /// Hospitals/Residents matching with θ-retry random restarts.
    #[default]
    Explore,
    /// LFOC-style clustering ([`crate::cluster`]): applications with the
    /// same dual-FSM classification share one CAT partition; the plan is
    /// a deterministic apportionment recomputed each exploring epoch
    /// (no RNG draws).
    LfocCluster,
}

/// Configuration of a consolidation run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Controller parameters.
    pub params: CoPartParams,
    /// Whether the controller may move LLC ways (false for MBA-only).
    pub manage_llc: bool,
    /// Whether the controller may move MBA levels (false for CAT-only).
    pub manage_mba: bool,
    /// The machine slice available to the controller.
    pub budget: WaysBudget,
    /// STREAM reference miss rates per MBA level (§5.3).
    pub stream: StreamReference,
    /// Retry/backoff policy for transient backend failures.
    pub resilience: ResilienceConfig,
    /// The planning algorithm of the exploration phase.
    pub planner: PlannerMode,
}

/// Frozen controller state of one managed application inside a
/// [`RuntimeSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct AppRuntimeSnapshot {
    /// Raw CLOS id of the application's group.
    pub group: u16,
    /// Display name.
    pub name: String,
    /// `IPS_full` from profiling.
    pub ips_full: f64,
    /// Fairness weight.
    pub weight: f64,
    /// Sensing state (window samples + degraded-mode smoothers).
    pub sensor: SensorSnapshot,
    /// LLC classifier FSM state.
    pub llc_state: AppState,
    /// MBA classifier FSM state.
    pub mba_state: AppState,
    /// IPS of the period before last.
    pub prev_ips: f64,
    /// IPS of the last period.
    pub last_ips: f64,
    /// Transfer events applied at the end of the last period.
    pub last_events: AppliedEvents,
}

/// Frozen controller state of a [`ConsolidationRuntime`], captured at an
/// epoch boundary. Together with a faithfully restored backend this
/// resumes the control loop bit-identically: same decisions, same RNG
/// draws, same trace events.
///
/// Deliberately *not* captured (recovery invariants, DESIGN.md §16):
/// planner/epoch scratch buffers (purely derived; rebuilt from defaults)
/// and the wall-clock latency histograms (`*_ns` metrics, which measure
/// the host, not the simulation).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSnapshot {
    /// The epoch counter (periods + profiling probes so far).
    pub epoch: u64,
    /// Controller phase.
    pub phase: Phase,
    /// System state currently in force.
    pub state: SystemState,
    /// Per-application cluster assignment when the cluster planner laid
    /// out the partition (empty = disjoint per-application layout).
    pub clusters: Vec<u16>,
    /// Exploration state (RNG position, retries, best seen).
    pub explorer: ExplorerSnapshot,
    /// Per-application controller state, in management order.
    pub apps: Vec<AppRuntimeSnapshot>,
}

/// Reusable per-epoch buffers, so the hot path does not reallocate the
/// same vectors every period.
#[derive(Debug, Default)]
struct EpochScratch {
    /// Classifier verdicts + slowdowns, rebuilt each period.
    classifications: Vec<AppClassification>,
    /// Weighted slowdowns for the unfairness computation.
    slowdowns: Vec<f64>,
    /// Mask layout of the state being applied.
    masks: Vec<copart_rdt::CbmMask>,
    /// Mask layout of the rollback target during a failed transaction.
    rollback_masks: Vec<copart_rdt::CbmMask>,
    /// Planner buffers: the incremental matching scratch plus the
    /// proposal/events of the epoch's plan.
    plan: PlanScratch,
    /// Cluster assignment of the epoch's plan (cluster planner only).
    plan_clusters: Vec<u16>,
}

/// The CoPart resource manager: a thin epoch driver over the sensing,
/// classification, planning, and actuation layers.
pub struct ConsolidationRuntime<B: RdtBackend> {
    backend: B,
    apps: Vec<ManagedApp>,
    /// The apps' group ids, cached in app order for the actuator.
    groups: Vec<ClosId>,
    cfg: RuntimeConfig,
    state: SystemState,
    /// Per-application cluster assignment currently in force (empty =
    /// the per-application disjoint layout of the exploration planner).
    clusters: Vec<u16>,
    phase: Phase,
    explorer: Explorer,
    actuator: TransactionalActuator,
    scratch: EpochScratch,
    /// Monotone event counter: one per control period plus one per
    /// profiling probe, advanced whether or not a recorder listens.
    epoch: u64,
    recorder: Box<dyn Recorder + Send>,
    metrics: Arc<MetricsRegistry>,
}

impl<B: RdtBackend> ConsolidationRuntime<B> {
    /// Creates a runtime managing the given groups, applies the equal
    /// split as the initial state, and leaves the manager in the
    /// profiling phase ([`ConsolidationRuntime::profile`] runs it).
    ///
    /// # Errors
    ///
    /// Fails when the initial state cannot be applied to the backend.
    ///
    /// # Panics
    ///
    /// Panics when `groups` is empty or the budget cannot give every
    /// application a way.
    pub fn new(
        backend: B,
        groups: Vec<(ClosId, String)>,
        cfg: RuntimeConfig,
    ) -> Result<Self, RdtError> {
        assert!(!groups.is_empty(), "need at least one application");
        cfg.params.assert_valid();
        let apps: Vec<ManagedApp> = groups
            .into_iter()
            .map(|(g, name)| ManagedApp::new(g, name))
            .collect();
        let group_ids: Vec<ClosId> = apps.iter().map(|a| a.group).collect();
        let state = SystemState::equal_split(apps.len(), &cfg.budget, cfg.budget.mba_cap);
        let explorer = Explorer::new(cfg.params.seed);
        let actuator = TransactionalActuator::new(cfg.resilience.clone());
        let mut runtime = ConsolidationRuntime {
            backend,
            apps,
            groups: group_ids,
            cfg,
            state,
            clusters: Vec::new(),
            phase: Phase::Profiling,
            explorer,
            actuator,
            scratch: EpochScratch::default(),
            epoch: 0,
            recorder: Box::new(NullRecorder),
            metrics: Arc::new(MetricsRegistry::new()),
        };
        // The retry-aware path, so a transiently busy backend does not
        // fail construction.
        let mut retries = 0u32;
        runtime.apply_current(&mut retries)?;
        if retries > 0 {
            runtime
                .metrics
                .add("fault_write_retries", u64::from(retries));
        }
        Ok(runtime)
    }

    /// The backend (e.g. to inspect simulator ground truth).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (e.g. for the case study's outer manager).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The managed applications.
    pub fn apps(&self) -> &[ManagedApp] {
        &self.apps
    }

    /// The current system state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// The cluster assignment currently in force — one cluster id per
    /// application, empty when the exploration planner's disjoint
    /// per-application layout applies.
    pub fn clusters(&self) -> &[u16] {
        &self.clusters
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The monotone epoch counter (one per control period plus one per
    /// profiling probe) — the chaining key for event-sourced recovery.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Installs a trace recorder (the default is the disabled
    /// [`NullRecorder`]) and returns the previous one, so callers can
    /// recover a buffering sink they handed in earlier.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder + Send>) -> Box<dyn Recorder + Send> {
        std::mem::replace(&mut self.recorder, recorder)
    }

    /// The active trace recorder (e.g. to flush a JSONL sink).
    pub fn recorder_mut(&mut self) -> &mut dyn Recorder {
        self.recorder.as_mut()
    }

    /// The runtime's metrics registry (counters, gauges, latency
    /// histograms fed by [`ConsolidationRuntime::run_period`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A shared handle to the metrics registry, for concurrent readers
    /// such as a `/metrics` listener thread. The registry is internally
    /// synchronized, so the handle can be cloned across threads while
    /// the runtime keeps writing.
    pub fn metrics_handle(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time copy of every metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Captures the controller's complete state for crash recovery.
    /// Meant to be taken at an epoch boundary (between `run_period`
    /// calls); pair with a backend snapshot taken at the same moment.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            epoch: self.epoch,
            phase: self.phase,
            state: self.state.clone(),
            clusters: self.clusters.clone(),
            explorer: self.explorer.snapshot(),
            apps: self
                .apps
                .iter()
                .map(|a| {
                    let (llc_state, mba_state) = a.classifier.states();
                    AppRuntimeSnapshot {
                        group: a.group.0,
                        name: a.name.clone(),
                        ips_full: a.ips_full,
                        weight: a.weight,
                        sensor: a.sensor.snapshot(),
                        llc_state,
                        mba_state,
                        prev_ips: a.prev_ips,
                        last_ips: a.last_ips,
                        last_events: a.last_events,
                    }
                })
                .collect(),
        }
    }

    /// Overwrites the controller's state from a snapshot. The backend
    /// must already hold the matching state (partition table, clock,
    /// application state) — this method touches only the controller side
    /// and performs no backend writes. Scratch buffers are reset to
    /// defaults; they are purely derived and rebuilt on the next period.
    pub fn restore_snapshot(&mut self, snap: &RuntimeSnapshot) {
        self.apps = snap
            .apps
            .iter()
            .map(|a| {
                let mut app = ManagedApp::new(ClosId(a.group), a.name.clone());
                app.ips_full = a.ips_full;
                app.weight = a.weight;
                app.sensor = WindowedSensor::from_snapshot(&a.sensor);
                app.classifier.reset(a.llc_state, a.mba_state);
                app.prev_ips = a.prev_ips;
                app.last_ips = a.last_ips;
                app.last_events = a.last_events;
                app
            })
            .collect();
        self.groups = self.apps.iter().map(|a| a.group).collect();
        self.state = snap.state.clone();
        self.clusters = snap.clusters.clone();
        self.phase = snap.phase;
        self.explorer = Explorer::from_snapshot(&snap.explorer);
        self.epoch = snap.epoch;
        self.scratch = EpochScratch::default();
    }

    /// Replaces the configuration without the [`reconfigure`] restart:
    /// no equal split, no backend writes, no re-profiling. This is the
    /// recovery path's companion to [`restore_snapshot`] — a live policy
    /// switch before the snapshot leaves the dead process running under a
    /// different configuration than the boot scenario describes, and the
    /// restored state must be interpreted under *that* configuration, not
    /// re-adapted from scratch.
    ///
    /// The explorer is untouched (restore it from the snapshot).
    ///
    /// [`reconfigure`]: ConsolidationRuntime::reconfigure
    /// [`restore_snapshot`]: ConsolidationRuntime::restore_snapshot
    ///
    /// # Panics
    ///
    /// Panics when the new parameters are invalid.
    pub fn restore_config(&mut self, cfg: RuntimeConfig) {
        cfg.params.assert_valid();
        self.cfg = cfg;
    }

    /// Sets an application's fairness weight (default 1.0). Takes effect
    /// from the next period.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive weight (configuration error).
    pub fn set_weight(&mut self, group: ClosId, weight: f64) -> Result<(), RdtError> {
        assert!(weight > 0.0, "weights must be positive");
        let app = self
            .apps
            .iter_mut()
            .find(|a| a.group == group)
            .ok_or(RdtError::UnknownGroup(group))?;
        app.weight = weight;
        // A weight change alters the fairness objective: re-explore.
        if self.phase == Phase::Idle {
            self.phase = Phase::Exploring;
            self.explorer.restart();
        }
        Ok(())
    }

    /// Measures average IPS (and access rate / miss ratio / miss rate) of
    /// one application over `periods` periods, discarding the first.
    /// Transient counter dropouts are retried (profiling has no previous
    /// estimate to fall back on); persistent failures propagate.
    fn probe(
        &mut self,
        idx: usize,
        periods: u32,
        retries: &mut u32,
    ) -> Result<(f64, f64, f64, f64), RdtError> {
        let period = self.cfg.params.period;
        let res = self.cfg.resilience.clone();
        let group = self.apps[idx].group;
        self.backend.advance(period)?; // Settle.
        let start = retry_transient(&mut self.backend, &res, retries, |b| b.read_counters(group))?;
        for _ in 0..periods.max(1) {
            self.backend.advance(period)?;
        }
        let end = retry_transient(&mut self.backend, &res, retries, |b| b.read_counters(group))?;
        let rates = end
            .delta_since(&start)
            .and_then(|d| d.rates())
            .unwrap_or_default();
        Ok((
            rates.ips,
            rates.llc_accesses_per_sec,
            rates.miss_ratio,
            rates.llc_misses_per_sec,
        ))
    }

    /// Runs the application profiling phase (§5.4.1): per application,
    /// measure `IPS_full`, the `(l_P, 100 %)` LLC probe, and the
    /// `(L, M_P)` bandwidth probe; derive initial classifier states; then
    /// enter the exploration phase from the equal-split state.
    ///
    /// # Errors
    ///
    /// Propagates backend failures (transient ones are first retried per
    /// the [`ResilienceConfig`]); the phase can be retried.
    pub fn profile(&mut self) -> Result<(), RdtError> {
        let p = self.cfg.params.clone();
        let res = self.cfg.resilience.clone();
        let mut retries = 0u32;
        let budget = self.cfg.budget;
        let machine_ways = self.backend.capabilities().llc_ways;
        let full_mask =
            copart_rdt::CbmMask::contiguous(budget.first_way, budget.total_ways, machine_ways)
                .expect("budget fits the machine");
        let probe_mask = copart_rdt::CbmMask::contiguous(
            budget.first_way,
            p.profile_ways.min(budget.total_ways),
            machine_ways,
        )
        .expect("budget fits the machine");

        for i in 0..self.apps.len() {
            let group = self.apps[i].group;

            // LLC probe first — (l_P, 100 %) — while the application's
            // footprint is still confined to its equal-split region.
            // Probing *after* a full-mask stint would let stale lines in
            // other CLOSes' ways keep serving hits (CAT restricts
            // allocation, not lookup), masking the app's LLC sensitivity.
            retry_transient(&mut self.backend, &res, &mut retries, |b| {
                b.set_cbm(group, probe_mask)
            })?;
            retry_transient(&mut self.backend, &res, &mut retries, |b| {
                b.set_mba(group, budget.mba_cap)
            })?;
            let (ips_llc, probe_access_rate, probe_miss_ratio, _) =
                self.probe(i, p.profile_periods, &mut retries)?;

            // Full resources: IPS_full (the app's mask may overlap the
            // others' during the probe, exactly as CAT allows).
            retry_transient(&mut self.backend, &res, &mut retries, |b| {
                b.set_cbm(group, full_mask)
            })?;
            let (ips_full, _, _, miss_rate) = self.probe(i, p.profile_periods, &mut retries)?;

            // Bandwidth probe: (L, M_P).
            let probe_level = MbaLevel::new(p.profile_mba_percent).min(budget.mba_cap);
            retry_transient(&mut self.backend, &res, &mut retries, |b| {
                b.set_mba(group, probe_level)
            })?;
            let (ips_mba, _, _, _) = self.probe(i, p.profile_periods, &mut retries)?;

            // Restore the shared equal-split allocation for this app.
            self.apply_current(&mut retries)?;

            let probes = ProfileProbes {
                ips_full,
                ips_llc_probe: ips_llc,
                ips_mba_probe: ips_mba,
                probe_access_rate,
                probe_miss_ratio,
                traffic_full: self.cfg.stream.traffic_ratio(miss_rate, budget.mba_cap),
            };
            let (llc_initial, mba_initial) = initial_states(&p, &probes);

            let app = &mut self.apps[i];
            app.ips_full = ips_full;
            app.prev_ips = ips_full;
            app.last_ips = ips_full;
            app.classifier.reset(llc_initial, mba_initial);
            app.last_events = AppliedEvents::default();
            // Seed the degraded-mode estimate so even a first-epoch
            // dropout has something to bridge with.
            app.sensor.reset();
            app.sensor.seed(&Rates {
                ips: ips_full,
                llc_accesses_per_sec: probe_access_rate,
                llc_misses_per_sec: miss_rate,
                miss_ratio: probe_miss_ratio,
            });

            self.metrics.inc("apps_profiled");
            if self.recorder.enabled() {
                // One event per profiled application: its probe
                // measurements and the initial classifier verdicts.
                let name = self.apps[i].name.clone();
                let rates = Rates {
                    ips: ips_full,
                    llc_accesses_per_sec: probe_access_rate,
                    llc_misses_per_sec: miss_rate,
                    miss_ratio: probe_miss_ratio,
                };
                let sample = AppSample::from_rates(
                    &name,
                    1.0, // Fresh IPS_full ⇒ slowdown is 1 by definition.
                    trace_class(llc_initial),
                    trace_class(mba_initial),
                    &rates,
                );
                self.emit(
                    Phase::Profiling,
                    TraceDecision::Profiled,
                    0,
                    0.0,
                    vec![sample],
                    Vec::new(),
                    None,
                );
            }
            self.epoch += 1;
        }

        if retries > 0 {
            self.metrics.add("fault_write_retries", u64::from(retries));
        }
        self.phase = Phase::Exploring;
        self.explorer.restart();
        Ok(())
    }

    /// Runs one adaptation period: advance the platform, sample counters,
    /// update classifiers and slowdowns, and (in the exploration phase)
    /// apply Algorithm 1's next step.
    ///
    /// Per-application counter failures are tolerated: the application is
    /// marked *degraded* for the period — its classifier FSMs and slowdown
    /// estimate hold their previous values and the trace shows its EWMA'd
    /// rates (a counter dropout must not crash the resource manager).
    /// Transient schemata write failures are retried with backoff; a
    /// persistently failing partition apply is rolled back to the previous
    /// partition (never left half-applied) and the exploration simply
    /// continues from the old state next period. Backend `advance`
    /// failures propagate.
    ///
    /// # Errors
    ///
    /// Fails only when the platform cannot advance.
    pub fn run_period(&mut self) -> Result<PeriodRecord, RdtError> {
        let mut record = PeriodRecord {
            time_ns: 0,
            phase: self.phase,
            state: SystemState::default(),
            apps: Vec::new(),
            unfairness: 0.0,
        };
        self.run_period_into(&mut record)?;
        Ok(record)
    }

    /// [`ConsolidationRuntime::run_period`] writing into a caller-held
    /// record whose buffers (per-app entries, their name strings, the
    /// state's allocation vector) are reused in place. With a disabled
    /// recorder, steady-state epochs through this path perform no heap
    /// allocation (gated by `benches/explore_overhead.rs`).
    ///
    /// # Errors
    ///
    /// Fails only when the platform cannot advance.
    pub fn run_period_into(&mut self, record: &mut PeriodRecord) -> Result<(), RdtError> {
        let t_epoch = Instant::now();
        let tracing = self.recorder.enabled();
        let mut fault = FaultSample::new();
        self.backend.advance(self.cfg.params.period)?;

        // Sense and classify.
        self.scratch.classifications.clear();
        record.apps.truncate(self.apps.len());
        let mut trace_apps: Vec<AppSample> = Vec::new();
        for (i, app) in self.apps.iter_mut().enumerate() {
            let mba_level = self.state.allocs[i].mba;
            let reading = app.sensor.ingest(self.backend.read_counters(app.group));
            if reading.dropped {
                self.metrics.inc("fault_counter_dropouts");
                fault.degraded.push(app.name.clone());
            }
            if let Some(r) = reading.rates {
                let perf_delta = if app.prev_ips > 0.0 {
                    (r.ips - app.prev_ips) / app.prev_ips
                } else {
                    0.0
                };
                let m = Measurement {
                    perf_delta,
                    access_rate: r.llc_accesses_per_sec,
                    miss_ratio: r.miss_ratio,
                    traffic_ratio: self
                        .cfg
                        .stream
                        .traffic_ratio(r.llc_misses_per_sec, mba_level),
                };
                app.classifier
                    .observe(&self.cfg.params, &m, app.last_events);
                app.prev_ips = app.last_ips;
                app.last_ips = r.ips;
            }
            app.last_events = AppliedEvents::default();
            let (llc_state, mba_state) = app.classifier.states();
            self.scratch.classifications.push(AppClassification {
                llc: llc_state,
                mba: mba_state,
                // Weight-normalized: a high-priority application competes
                // as if it were more slowed than it is.
                slowdown: app.weighted_slowdown(),
            });
            if let Some(slot) = record.apps.get_mut(i) {
                slot.name.clear();
                slot.name.push_str(&app.name);
                slot.ips = app.last_ips;
                slot.slowdown = app.slowdown();
                slot.llc_state = llc_state;
                slot.mba_state = mba_state;
            } else {
                record.apps.push(AppPeriod {
                    name: app.name.clone(),
                    ips: app.last_ips,
                    slowdown: app.slowdown(),
                    llc_state,
                    mba_state,
                });
            }
            if tracing {
                // A degraded app is traced with its smoothed estimate; an
                // app that merely lacks two samples (startup, clock stall)
                // is traced as zero-rates, exactly as before.
                let shown = app.sensor.display_rates(&reading);
                trace_apps.push(AppSample::from_rates(
                    &app.name,
                    app.slowdown(),
                    trace_class(llc_state),
                    trace_class(mba_state),
                    &shown,
                ));
            }
        }
        if !fault.degraded.is_empty() {
            self.metrics.inc("degraded_epochs");
        }

        self.scratch.slowdowns.clear();
        self.scratch
            .slowdowns
            .extend(self.scratch.classifications.iter().map(|c| c.slowdown));
        let current_unfairness = metrics::unfairness(&self.scratch.slowdowns);

        // What the trace event for this epoch will say.
        let mut decision = TraceDecision::Monitor;
        let mut matching_rounds = 0u32;
        let mut proposed: Vec<AllocSample> = Vec::new();

        match self.phase {
            Phase::Exploring if self.cfg.planner == PlannerMode::LfocCluster => {
                // The LFOC-style cluster planner: recompute the cluster
                // plan from this epoch's classifications — a pure
                // function, no RNG draws. An unchanged plan means the
                // classifications have settled; go idle. A changed plan
                // is switched to transactionally, exactly like an
                // Algorithm 1 transfer.
                let t_explore = Instant::now();
                cluster::form_clusters_into(
                    &self.scratch.classifications,
                    &self.cfg.budget,
                    &mut self.scratch.plan_clusters,
                    &mut self.scratch.plan.proposal,
                );
                self.metrics
                    .observe_ns("explore_ns", t_explore.elapsed().as_nanos() as u64);
                if tracing {
                    proposed = alloc_samples(&self.scratch.plan.proposal);
                }
                if self.scratch.plan_clusters == self.clusters
                    && self.scratch.plan.proposal == self.state
                {
                    self.explorer.settle(current_unfairness);
                    self.phase = Phase::Idle;
                    self.metrics.inc("convergences");
                    decision = TraceDecision::Converged;
                } else {
                    diff_events_into(
                        &self.state,
                        &self.scratch.plan.proposal,
                        &mut self.scratch.plan.events,
                    );
                    // On rollback the old partition stays in force and
                    // the plan is simply recomputed next period.
                    if self.apply_planned_txn(&mut fault, true) {
                        for (app, ev) in self.apps.iter_mut().zip(&self.scratch.plan.events) {
                            app.last_events = *ev;
                        }
                        self.explorer.transfer_applied();
                        self.metrics.inc("transfers");
                        self.metrics.inc("cluster_replans");
                        self.metrics
                            .set_gauge("clusters", cluster_count(&self.clusters) as f64);
                    }
                    decision = TraceDecision::Transfer;
                }
            }
            Phase::Exploring => {
                // The unfairness just measured belongs to the state that
                // was in force during this period; remember the best.
                let measured = self.apps.iter().all(|a| a.sensor.samples() >= 2);
                self.explorer
                    .record_best(current_unfairness, &self.state, measured);
                let t_explore = Instant::now();
                let stats = self.explorer.plan_into(
                    &self.cfg,
                    &self.state,
                    &self.scratch.classifications,
                    current_unfairness,
                    &mut self.scratch.plan,
                );
                self.metrics
                    .observe_ns("explore_ns", t_explore.elapsed().as_nanos() as u64);
                matching_rounds = stats.matching_rounds;
                self.metrics
                    .add("matching_rounds", u64::from(stats.matching_rounds));
                if tracing {
                    proposed = alloc_samples(&self.scratch.plan.proposal);
                }
                match stats.decision {
                    PlanDecision::Transfer => {
                        // A rolled-back apply leaves the old state in
                        // force; classifiers simply propose again next
                        // period.
                        if self.apply_planned_txn(&mut fault, false) {
                            for (app, ev) in self.apps.iter_mut().zip(&self.scratch.plan.events) {
                                app.last_events = *ev;
                            }
                            self.explorer.transfer_applied();
                            self.metrics.inc("transfers");
                        }
                        decision = TraceDecision::Transfer;
                    }
                    PlanDecision::ThetaRetry => {
                        diff_events_into(
                            &self.state,
                            &self.scratch.plan.proposal,
                            &mut self.scratch.plan.events,
                        );
                        // A rolled-back restart does not consume a
                        // θ-retry: nothing new was tried.
                        if self.apply_planned_txn(&mut fault, false) {
                            for (app, ev) in self.apps.iter_mut().zip(&self.scratch.plan.events) {
                                app.last_events = *ev;
                            }
                            self.explorer.retry_applied();
                            self.metrics.inc("theta_retries");
                        }
                        decision = TraceDecision::ThetaRetry;
                    }
                    PlanDecision::Converge(settle) => {
                        let mut settled = current_unfairness;
                        if let Some((best_u, best_state)) = settle {
                            diff_events_into(
                                &self.state,
                                &best_state,
                                &mut self.scratch.plan.events,
                            );
                            self.scratch
                                .plan
                                .proposal
                                .allocs
                                .clone_from(&best_state.allocs);
                            // On rollback the manager idles where it is.
                            if self.apply_planned_txn(&mut fault, false) {
                                for (app, ev) in self.apps.iter_mut().zip(&self.scratch.plan.events)
                                {
                                    app.last_events = *ev;
                                }
                                settled = best_u;
                            }
                        }
                        self.explorer.settle(settled);
                        self.phase = Phase::Idle;
                        self.metrics.inc("convergences");
                        decision = TraceDecision::Converged;
                    }
                }
            }
            Phase::Idle => {
                // §5.4.3: monitor only, but resume adaptation when the
                // fairness picture drifts substantially.
                if self.explorer.should_reexplore(current_unfairness) {
                    self.phase = Phase::Exploring;
                    self.explorer.restart();
                    self.metrics.inc("re_explorations");
                    decision = TraceDecision::ReExplore;
                }
            }
            Phase::Profiling => {
                // run_period before profile(): measure only.
            }
        }

        self.metrics.inc("epochs");
        self.metrics.set_gauge("unfairness", current_unfairness);
        if tracing {
            // Report the phase the controller ends the epoch in, matching
            // the PeriodRecord below.
            let fault = if fault.is_empty() { None } else { Some(fault) };
            self.emit(
                self.phase,
                decision,
                matching_rounds,
                current_unfairness,
                trace_apps,
                proposed,
                fault,
            );
        }
        self.epoch += 1;
        self.metrics
            .observe_ns("epoch_ns", t_epoch.elapsed().as_nanos() as u64);

        record.time_ns = self.backend.now_ns();
        record.phase = self.phase;
        record.state.allocs.clone_from(&self.state.allocs);
        record.unfairness = current_unfairness;
        Ok(())
    }

    /// Runs `n` periods, collecting the records.
    ///
    /// # Errors
    ///
    /// Stops at the first backend failure.
    pub fn run_periods(&mut self, n: u32) -> Result<Vec<PeriodRecord>, RdtError> {
        (0..n).map(|_| self.run_period()).collect()
    }

    /// Installs a new resource budget (the §6.3 outer server manager
    /// shrinking or growing the batch partition) and triggers
    /// re-adaptation from the equal split within the new budget.
    ///
    /// # Errors
    ///
    /// Fails when the new state cannot be applied.
    pub fn set_budget(&mut self, budget: WaysBudget) -> Result<(), RdtError> {
        self.cfg.budget = budget;
        self.state = SystemState::equal_split(self.apps.len(), &budget, budget.mba_cap);
        self.clusters.clear();
        self.apply_state()?;
        for app in &mut self.apps {
            app.last_events = AppliedEvents::default();
            app.sensor.clear_window();
        }
        self.phase = Phase::Exploring;
        self.explorer.restart();
        Ok(())
    }

    /// Removes a terminated application and re-adapts the remainder (the
    /// idle phase's change detection, §5.4.3).
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or when the shrunken state cannot be
    /// applied.
    pub fn remove_app(&mut self, group: ClosId) -> Result<(), RdtError> {
        let idx = self
            .apps
            .iter()
            .position(|a| a.group == group)
            .ok_or(RdtError::UnknownGroup(group))?;
        self.apps.remove(idx);
        self.groups.remove(idx);
        if self.apps.is_empty() {
            return Ok(());
        }
        // Hand the departed application's resources back via equal split
        // and re-explore.
        self.state =
            SystemState::equal_split(self.apps.len(), &self.cfg.budget, self.cfg.budget.mba_cap);
        self.clusters.clear();
        self.apply_state()?;
        self.phase = Phase::Exploring;
        self.explorer.restart();
        Ok(())
    }

    /// Adds a newly launched application. The whole consolidation is
    /// re-profiled (§5.4.3: a launch triggers the adaptation process).
    ///
    /// # Errors
    ///
    /// Fails when the re-profiled initial state cannot be applied.
    pub fn add_app(&mut self, group: ClosId, name: String) -> Result<(), RdtError> {
        self.apps.push(ManagedApp::new(group, name));
        self.groups.push(group);
        self.state =
            SystemState::equal_split(self.apps.len(), &self.cfg.budget, self.cfg.budget.mba_cap);
        self.clusters.clear();
        self.apply_state()?;
        self.phase = Phase::Profiling;
        self.explorer.restart();
        self.profile()
    }

    /// Replaces the whole runtime configuration and restarts adaptation
    /// from scratch: the equal split is re-applied under the new budget
    /// and every application is re-profiled, exactly as if the
    /// consolidation had just been launched. This is the live
    /// policy-switch path (`POST /policy` on the serve daemon).
    ///
    /// # Errors
    ///
    /// Fails when the re-profiled initial state cannot be applied.
    ///
    /// # Panics
    ///
    /// Panics when the new parameters are invalid or the new budget
    /// cannot give every application a way.
    pub fn reconfigure(&mut self, cfg: RuntimeConfig) -> Result<(), RdtError> {
        cfg.params.assert_valid();
        self.cfg = cfg;
        self.explorer = Explorer::new(self.cfg.params.seed);
        self.state =
            SystemState::equal_split(self.apps.len(), &self.cfg.budget, self.cfg.budget.mba_cap);
        self.clusters.clear();
        self.apply_state()?;
        self.phase = Phase::Profiling;
        self.profile()
    }

    /// Writes `self.state`'s allocation for every group through the
    /// actuator, accumulating transient-retry counts into `retries`. The
    /// first persistent failure propagates — membership and budget
    /// changes use this and surface the error to their caller, who owns
    /// the recovery decision.
    ///
    /// The mask layout is chosen here, not in the actuator: a live
    /// cluster assignment lays out shared per-cluster regions, otherwise
    /// the state's disjoint per-application packing applies.
    fn apply_current(&mut self, retries: &mut u32) -> Result<(), RdtError> {
        let mut report = ApplyReport::default();
        let machine_ways = self.backend.capabilities().llc_ways;
        let ConsolidationRuntime {
            backend,
            groups,
            cfg,
            state,
            clusters,
            actuator,
            scratch,
            ..
        } = self;
        if clusters.is_empty() {
            state.masks_into(&cfg.budget, machine_ways, &mut scratch.masks);
        } else {
            cluster::cluster_masks_into(
                clusters,
                state,
                &cfg.budget,
                machine_ways,
                &mut scratch.masks,
            );
        }
        let result = actuator.apply(
            backend,
            groups,
            state,
            &cfg.budget,
            &scratch.masks,
            &mut report,
        );
        *retries += report.write_retries;
        result
    }

    fn apply_state(&mut self) -> Result<(), RdtError> {
        let t0 = Instant::now();
        let mut retries = 0u32;
        let result = self.apply_current(&mut retries);
        self.metrics
            .observe_ns("apply_ns", t0.elapsed().as_nanos() as u64);
        self.metrics.inc("backend_applies");
        if retries > 0 {
            self.metrics.add("fault_write_retries", u64::from(retries));
        }
        result
    }

    /// Transactionally switches the partition to the planned proposal in
    /// `scratch.plan` through the actuator (see [`Actuator::apply_txn`]);
    /// on success the state (and, in cluster mode, the planned cluster
    /// assignment in `scratch.plan_clusters`) is adopted (buffers reused,
    /// no allocation), on rollback the old state stays in force. Folds
    /// the actuator's [`ApplyReport`] into the metrics registry and the
    /// epoch's fault sample.
    ///
    /// Both the new and the rollback mask layouts are computed up front:
    /// the transition may cross layout kinds (the first cluster plan
    /// replaces a disjoint equal split), so the rollback target must be
    /// laid out under the assignment *currently* in force while the
    /// proposal is laid out under the planned one.
    fn apply_planned_txn(&mut self, fault: &mut FaultSample, cluster_mode: bool) -> bool {
        let t0 = Instant::now();
        let mut report = ApplyReport::default();
        let machine_ways = self.backend.capabilities().llc_ways;
        let ConsolidationRuntime {
            backend,
            groups,
            cfg,
            state,
            clusters,
            actuator,
            scratch,
            metrics,
            ..
        } = self;
        let new = &scratch.plan.proposal;
        if cluster_mode {
            cluster::cluster_masks_into(
                &scratch.plan_clusters,
                new,
                &cfg.budget,
                machine_ways,
                &mut scratch.masks,
            );
        } else {
            new.masks_into(&cfg.budget, machine_ways, &mut scratch.masks);
        }
        if clusters.is_empty() {
            state.masks_into(&cfg.budget, machine_ways, &mut scratch.rollback_masks);
        } else {
            cluster::cluster_masks_into(
                clusters,
                state,
                &cfg.budget,
                machine_ways,
                &mut scratch.rollback_masks,
            );
        }
        let landed = actuator.apply_txn(
            backend,
            groups,
            state,
            new,
            &cfg.budget,
            &scratch.masks,
            &scratch.rollback_masks,
            &mut report,
        );
        if landed {
            state.allocs.clone_from(&new.allocs);
            if cluster_mode {
                clusters.clone_from(&scratch.plan_clusters);
            }
        } else {
            metrics.add(
                "rollback_write_failures",
                u64::from(report.rollback_write_failures),
            );
            metrics.inc("partition_apply_failures");
            metrics.inc("partition_rollbacks");
            fault.rolled_back = true;
        }
        metrics.observe_ns("apply_ns", t0.elapsed().as_nanos() as u64);
        metrics.inc("backend_applies");
        if report.write_retries > 0 {
            metrics.add("fault_write_retries", u64::from(report.write_retries));
        }
        fault.write_retries += report.write_retries;
        landed
    }

    /// Builds one trace event and hands it to the recorder. Callers gate
    /// on `self.recorder.enabled()` so the disabled path never gets here.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        phase: Phase,
        decision: TraceDecision,
        matching_rounds: u32,
        unfairness: f64,
        apps: Vec<AppSample>,
        proposed: Vec<AllocSample>,
        fault: Option<FaultSample>,
    ) {
        let event = TraceEvent {
            epoch: self.epoch,
            time_ns: self.backend.now_ns(),
            phase: trace_phase(phase),
            decision,
            retry_count: self.explorer.retry_count(),
            matching_rounds,
            unfairness,
            apps,
            proposed,
            applied: alloc_samples(&self.state),
            fault,
        };
        self.recorder.record(&event);
    }
}

/// Maps the runtime phase onto its wire representation.
fn trace_phase(phase: Phase) -> TracePhase {
    match phase {
        Phase::Profiling => TracePhase::Profiling,
        Phase::Exploring => TracePhase::Exploring,
        Phase::Idle => TracePhase::Idle,
    }
}

/// Maps a classifier state onto its wire representation.
fn trace_class(state: AppState) -> TraceClass {
    match state {
        AppState::Supply => TraceClass::Supply,
        AppState::Maintain => TraceClass::Maintain,
        AppState::Demand => TraceClass::Demand,
    }
}

/// Number of distinct clusters in a (dense) assignment.
fn cluster_count(clusters: &[u16]) -> usize {
    clusters
        .iter()
        .max()
        .map_or(0, |&highest| usize::from(highest) + 1)
}

/// Snapshots a system state as per-group allocation samples.
fn alloc_samples(state: &SystemState) -> Vec<AllocSample> {
    state
        .allocs
        .iter()
        .map(|a| AllocSample {
            ways: a.ways,
            mba_percent: a.mba.percent(),
        })
        .collect()
}

/// Derives per-application events from the difference between two states
/// (used when a random neighbor or settle state is applied), into a
/// reusable buffer.
fn diff_events_into(from: &SystemState, to: &SystemState, out: &mut Vec<AppliedEvents>) {
    out.clear();
    out.extend(
        from.allocs
            .iter()
            .zip(&to.allocs)
            .map(|(a, b)| AppliedEvents {
                granted_llc: b.ways > a.ways,
                reclaimed_llc: b.ways < a.ways,
                granted_mba: b.mba > a.mba,
                reclaimed_mba: b.mba < a.mba,
            }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_rdt::SimBackend;
    use copart_sim::{Machine, MachineConfig};
    use copart_workloads::{mixes::MixKind, mixes::WorkloadMix, stream::StreamReference};

    fn make_runtime(kind: MixKind) -> ConsolidationRuntime<SimBackend> {
        let machine_cfg = MachineConfig::xeon_gold_6130();
        let stream = StreamReference::compute(&machine_cfg, 4);
        let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
        let mix = WorkloadMix::paper_default(kind);
        let mut groups = Vec::new();
        for spec in mix.specs() {
            let name = spec.name.clone();
            let g = backend.add_workload(spec).unwrap();
            groups.push((g, name));
        }
        let cfg = RuntimeConfig {
            params: CoPartParams::default(),
            manage_llc: true,
            manage_mba: true,
            budget: WaysBudget::full_machine(machine_cfg.llc_ways),
            stream,
            resilience: Default::default(),
            planner: PlannerMode::default(),
        };
        ConsolidationRuntime::new(backend, groups, cfg).unwrap()
    }

    #[test]
    fn profiling_fills_ips_full_and_initial_states() {
        let mut rt = make_runtime(MixKind::HighLlc);
        assert_eq!(rt.phase(), Phase::Profiling);
        rt.profile().unwrap();
        assert_eq!(rt.phase(), Phase::Exploring);
        for app in rt.apps() {
            assert!(app.ips_full > 0.0, "{} has no IPS_full", app.name);
        }
        // The insensitive member (swaptions) must come out Supply/Supply.
        let sw = rt.apps().iter().find(|a| a.name == "swaptions").unwrap();
        assert_eq!(
            sw.classifier_states(),
            (AppState::Supply, AppState::Supply),
            "an insensitive app should supply both resources"
        );
    }

    #[test]
    fn exploration_converges_to_idle() {
        let mut rt = make_runtime(MixKind::HighLlc);
        rt.profile().unwrap();
        let records = rt.run_periods(60).unwrap();
        assert_eq!(
            records.last().unwrap().phase,
            Phase::Idle,
            "exploration should converge within 60 periods"
        );
        // The state in force is always valid.
        for r in &records {
            assert!(r.state.is_valid(&WaysBudget::full_machine(11)));
        }
    }

    #[test]
    fn exploration_finds_a_sensitivity_proportional_split() {
        // Ground-truth fairness comparisons live in `policies::tests`;
        // here we assert the *structure* the paper predicts for the
        // H-LLC mix (§4.2): water_nsquared needs 4 ways for 90 % of its
        // performance, while the insensitive member can live on the
        // minimum.
        let mut rt = make_runtime(MixKind::HighLlc);
        rt.profile().unwrap();
        let records = rt.run_periods(60).unwrap();
        let last = records.last().unwrap();
        let idx = |name: &str| last.apps.iter().position(|a| a.name == name).unwrap();
        let wn = last.state.allocs[idx("water_nsquared")];
        let sw = last.state.allocs[idx("swaptions")];
        assert!(wn.ways >= 4, "water_nsquared needs ≥4 ways, got {:?}", wn);
        assert!(
            sw.ways <= 2,
            "the insensitive member should donate its ways, got {:?}",
            sw
        );
        assert!(wn.ways > sw.ways);
    }

    #[test]
    fn budget_change_triggers_readaptation() {
        let mut rt = make_runtime(MixKind::ModerateBoth);
        rt.profile().unwrap();
        rt.run_periods(50).unwrap();
        let shrunk = WaysBudget {
            first_way: 6,
            total_ways: 5,
            mba_cap: MbaLevel::new(40),
        };
        rt.set_budget(shrunk).unwrap();
        assert_eq!(rt.phase(), Phase::Exploring);
        let records = rt.run_periods(30).unwrap();
        for r in &records {
            assert!(r.state.is_valid(&shrunk), "state exceeds shrunk budget");
            assert!(r.state.allocs.iter().all(|a| a.mba <= shrunk.mba_cap));
        }
    }

    #[test]
    fn app_removal_redistributes_resources() {
        let mut rt = make_runtime(MixKind::HighBw);
        rt.profile().unwrap();
        rt.run_periods(20).unwrap();
        let victim = rt.apps()[0].group;
        let n_before = rt.apps().len();
        rt.remove_app(victim).unwrap();
        assert_eq!(rt.apps().len(), n_before - 1);
        assert_eq!(rt.phase(), Phase::Exploring);
        let r = rt.run_period().unwrap();
        assert_eq!(r.apps.len(), n_before - 1);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let mut original = make_runtime(MixKind::ModerateBoth);
        original.profile().unwrap();
        original.run_periods(9).unwrap();
        let rt_snap = original.snapshot();
        let machine_snap = original.backend().machine().snapshot();
        let (groups, next_clos) = original.backend().export_groups();

        // Recovery path: construct a fresh runtime (which applies the
        // equal split), then overwrite the backend and controller state
        // from the snapshots.
        let mut resumed = make_runtime(MixKind::ModerateBoth);
        resumed
            .backend_mut()
            .machine_mut()
            .restore(&machine_snap)
            .unwrap();
        resumed.backend_mut().import_groups(&groups, next_clos);
        resumed.restore_snapshot(&rt_snap);
        assert_eq!(resumed.epoch(), original.epoch());
        assert_eq!(resumed.phase(), original.phase());
        for _ in 0..15 {
            let a = original.run_period().unwrap();
            let b = resumed.run_period().unwrap();
            assert_eq!(a, b, "period records diverge after restore");
        }
        assert_eq!(original.snapshot(), resumed.snapshot());
    }

    #[test]
    fn remove_unknown_group_fails() {
        let mut rt = make_runtime(MixKind::Insensitive);
        assert!(matches!(
            rt.remove_app(ClosId(999)),
            Err(RdtError::UnknownGroup(_))
        ));
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;
    use copart_rdt::SimBackend;
    use copart_sim::{Machine, MachineConfig};
    use copart_workloads::stream::StreamReference;
    use copart_workloads::Benchmark;

    #[test]
    fn weighted_app_wins_contested_resources() {
        let machine_cfg = MachineConfig::xeon_gold_6130();
        let stream = StreamReference::compute(&machine_cfg, 4);
        let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
        // Two identical LLC-hungry apps plus two insensitive donors.
        let mut groups = Vec::new();
        for (i, b) in [
            Benchmark::WaterNsquared,
            Benchmark::WaterNsquared,
            Benchmark::Swaptions,
            Benchmark::Ep,
        ]
        .iter()
        .enumerate()
        {
            let mut spec = b.spec();
            spec.name = format!("{}#{i}", spec.name);
            let name = spec.name.clone();
            groups.push((backend.add_workload(spec).unwrap(), name));
        }
        let favored = groups[0].0;
        let rival = groups[1].0;
        let cfg = RuntimeConfig {
            params: CoPartParams::default(),
            manage_llc: true,
            manage_mba: true,
            budget: WaysBudget::full_machine(machine_cfg.llc_ways),
            stream,
            resilience: Default::default(),
            planner: PlannerMode::default(),
        };
        let mut rt = ConsolidationRuntime::new(backend, groups, cfg).unwrap();
        rt.set_weight(favored, 3.0).unwrap();
        rt.profile().unwrap();
        let records = rt.run_periods(60).unwrap();
        let last = records.last().unwrap();
        let idx = |g: ClosId| rt.apps().iter().position(|a| a.group == g).unwrap();
        let favored_ways = last.state.allocs[idx(favored)].ways;
        let rival_ways = last.state.allocs[idx(rival)].ways;
        assert!(
            favored_ways >= rival_ways,
            "weight-3 app holds {favored_ways} ways vs identical rival's {rival_ways}"
        );
        assert!(favored_ways >= 4, "the favored app should reach its knee");
    }

    #[test]
    fn weight_change_reopens_exploration() {
        let machine_cfg = MachineConfig::xeon_gold_6130();
        let stream = StreamReference::compute(&machine_cfg, 4);
        let mut backend = SimBackend::new(Machine::new(machine_cfg.clone()));
        let mut groups = Vec::new();
        for b in [Benchmark::WaterNsquared, Benchmark::Swaptions] {
            let spec = b.spec();
            let name = spec.name.clone();
            groups.push((backend.add_workload(spec).unwrap(), name));
        }
        let g = groups[0].0;
        let cfg = RuntimeConfig {
            params: CoPartParams::default(),
            manage_llc: true,
            manage_mba: true,
            budget: WaysBudget::full_machine(machine_cfg.llc_ways),
            stream,
            resilience: Default::default(),
            planner: PlannerMode::default(),
        };
        let mut rt = ConsolidationRuntime::new(backend, groups, cfg).unwrap();
        rt.profile().unwrap();
        rt.run_periods(40).unwrap();
        assert_eq!(rt.phase(), Phase::Idle);
        rt.set_weight(g, 2.0).unwrap();
        assert_eq!(rt.phase(), Phase::Exploring);
        assert!(matches!(
            rt.set_weight(ClosId(999), 1.0),
            Err(RdtError::UnknownGroup(_))
        ));
    }
}
